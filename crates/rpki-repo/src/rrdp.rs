//! The RRDP transport (RFC 8182-shaped): publication logs, delta
//! documents, and the polling client state machine.
//!
//! Production relying parties prefer the RPKI Repository Delta Protocol
//! over rsync: the repository maintains a *publication log* — a session
//! id, a monotone serial, and a bounded history of per-write delta
//! records — and the client polls a tiny *notification*, then fetches
//! only the deltas it is missing. Every reference in the notification
//! carries a SHA-256 hash, so a client can detect tampering or a torn
//! log and fall back to the full snapshot.
//!
//! The model here is sans-IO and deterministic, like the rsync driver
//! in [`client`](crate::client):
//!
//! - the **server side** lives in the store: every
//!   [`Repository`](crate::Repository) mutation appends a
//!   [`DeltaChange`] record to the
//!   directory's publication log and refreshes the snapshot hash,
//!   so notification/snapshot/delta documents are served from state
//!   maintained at write time;
//! - the **wire** is three request frames and four response frames in
//!   the workspace's canonical codec, with a tag space disjoint from
//!   the rsync protocol so a stray frame can never cross-decode;
//! - the **client** ([`rrdp_sync_dir`]) keeps per-directory
//!   `(session, serial, files)` state in an [`RrdpClientState`],
//!   verifies every document hash against the notification, applies
//!   contiguous delta chains, falls back to the snapshot on gaps,
//!   session resets, or hash mismatches, and reports hard failures as
//!   [`RrdpError`] so the caller can downgrade to rsync.
//!
//! Session ids are *derived* (SHA-256 of the host, path, and reset
//! count), never random: the fault RNG stays reserved for probabilistic
//! faults and byte-identical replay is preserved.
//!
//! The downgrade-attack surface (Stalloris): a misbehaving publication
//! point can pin its RRDP feed at a stale serial
//! ([`rrdp_pin`](crate::Repository::rrdp_pin)), withhold deltas
//! ([`set_rrdp_withhold_deltas`](crate::Repository::set_rrdp_withhold_deltas)),
//! reset its session
//! ([`rrdp_reset_session`](crate::Repository::rrdp_reset_session)), or
//! refuse RRDP entirely
//! ([`set_rrdp_offline`](crate::Repository::set_rrdp_offline)) to
//! force clients onto rsync.
//! The knobs live here; the planner lives in `attacks::downgrade`.

use std::collections::{BTreeMap, VecDeque};

use netsim::{Network, NodeId, Occurrence};
use rpki_objects::{Decode, DecodeError, Encode, Reader, RepoUri, Writer};
use rpkisim_crypto::{sha256, Digest};
use serde::Serialize;

use crate::client::{dir_content_digest, RepoRegistry, SyncOutcome};
use crate::pubd::{self, PubdEvent, PubdWork, SnapshotDoc};

/// Timer token for per-exchange RRDP deadlines (distinct from the
/// rsync driver's tokens so concurrent timers never collide).
const RRDP_DEADLINE_TOKEN: u64 = 0x5252_4450_dead_0001;

// ---------------------------------------------------------------------
// Publication log (server side, maintained at write time)
// ---------------------------------------------------------------------

/// One element of a delta document: a file published (or overwritten)
/// with its new bytes, or withdrawn with the hash of the bytes it had —
/// the RFC 8182 publish/withdraw pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaChange {
    /// `name` now has these bytes.
    Publish {
        /// File name within the directory.
        name: String,
        /// The new content.
        bytes: Vec<u8>,
    },
    /// `name` was removed; `hash` is the digest of the removed bytes,
    /// so a client can detect that its copy diverged.
    Withdraw {
        /// File name within the directory.
        name: String,
        /// Digest of the withdrawn content.
        hash: Digest,
    },
}

const CHANGE_PUBLISH: u8 = 1;
const CHANGE_WITHDRAW: u8 = 2;

impl Encode for DeltaChange {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DeltaChange::Publish { name, bytes } => {
                out.push(CHANGE_PUBLISH);
                Writer::string(out, name);
                Writer::bytes(out, bytes);
            }
            DeltaChange::Withdraw { name, hash } => {
                out.push(CHANGE_WITHDRAW);
                Writer::string(out, name);
                hash.encode(out);
            }
        }
    }
}

impl Decode for DeltaChange {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            CHANGE_PUBLISH => {
                Ok(DeltaChange::Publish { name: r.string()?, bytes: r.bytes()?.to_vec() })
            }
            CHANGE_WITHDRAW => {
                Ok(DeltaChange::Withdraw { name: r.string()?, hash: Digest::decode(r)? })
            }
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

/// One recorded delta: the serial it advances the directory to, the
/// changes, the hash of the canonical delta document (what the
/// notification advertises), and that document's size (what the
/// byte-budgeted retention policy meters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DeltaRecord {
    pub(crate) serial: u64,
    pub(crate) hash: Digest,
    pub(crate) doc_bytes: u64,
    pub(crate) changes: Vec<DeltaChange>,
}

/// The per-publication-point publication log: session id, monotone
/// serial, the materialised snapshot document (rebuilt when the
/// compaction policy says so, not per write), policy-bounded delta
/// history, and the cumulative [`PubdWork`] ledger.
#[derive(Debug, Clone)]
pub(crate) struct PublicationLog {
    /// Deterministic seed (hash of host + path) session ids derive from.
    seed: u64,
    /// How many times the session has been reset.
    resets: u64,
    pub(crate) session: u64,
    pub(crate) serial: u64,
    /// The cached serialized snapshot document — what snapshot requests
    /// are served from and what notifications advertise. Its serial
    /// trails `serial` by up to `compaction_interval - 1`.
    pub(crate) snapshot: SnapshotDoc,
    pub(crate) deltas: VecDeque<DeltaRecord>,
    /// Running total of retained canonical delta-document bytes.
    pub(crate) delta_bytes: u64,
    /// Cumulative build-side work counters.
    pub(crate) work: PubdWork,
}

impl PublicationLog {
    /// A fresh log at serial 0 with an empty materialised snapshot.
    pub(crate) fn new(seed: u64) -> Self {
        let session = derive_session(seed, 0);
        PublicationLog {
            seed,
            resets: 0,
            session,
            serial: 0,
            snapshot: SnapshotDoc::build(session, 0, std::iter::empty()),
            deltas: VecDeque::new(),
            delta_bytes: 0,
            work: PubdWork::default(),
        }
    }

    /// Appends one delta record: bumps the serial and hashes the
    /// canonical delta document. Compaction and eviction happen in the
    /// store's [`record`](crate::Repository) path, which can see the
    /// file set and the host policy.
    pub(crate) fn record(&mut self, changes: Vec<DeltaChange>) {
        self.serial += 1;
        let doc = delta_document(self.session, self.serial, &changes);
        let doc_bytes = doc.len() as u64;
        let hash = sha256(&doc);
        self.deltas.push_back(DeltaRecord { serial: self.serial, hash, doc_bytes, changes });
        self.delta_bytes += doc_bytes;
        self.work.serials += 1;
    }

    /// Installs a freshly materialised snapshot document, counting the
    /// build.
    pub(crate) fn install_snapshot(
        &mut self,
        doc: SnapshotDoc,
        forced: bool,
        events: &mut Vec<PubdEvent>,
    ) {
        self.work.snapshot_builds += 1;
        if forced {
            self.work.forced_builds += 1;
        }
        self.work.snapshot_bytes_built += doc.len();
        events.push(PubdEvent::Materialised { serial: doc.serial(), bytes: doc.len(), forced });
        self.snapshot = doc;
    }

    /// Evicts the oldest retained delta, counting the eviction. The
    /// caller has already ensured it is not a bridge delta.
    pub(crate) fn evict_front(&mut self, events: &mut Vec<PubdEvent>) {
        let rec = self.deltas.pop_front().expect("eviction requires a retained delta");
        self.delta_bytes -= rec.doc_bytes;
        self.work.deltas_evicted += 1;
        self.work.delta_bytes_evicted += rec.doc_bytes;
        events.push(PubdEvent::Evicted { serial: rec.serial, bytes: rec.doc_bytes });
    }

    /// Starts a new session: fresh (derived) session id, serial restart
    /// at 1, delta history cleared — clients must refetch the snapshot.
    /// The caller rematerialises the snapshot document right after.
    pub(crate) fn reset(&mut self) {
        self.resets += 1;
        self.session = derive_session(self.seed, self.resets);
        self.serial = 1;
        self.deltas.clear();
        self.delta_bytes = 0;
    }
}

/// First eight bytes of a SHA-256, as the deterministic id material for
/// sessions and session seeds.
fn digest_to_u64(d: &Digest) -> u64 {
    let bytes = d.as_bytes();
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[..8]);
    u64::from_be_bytes(buf)
}

/// The session-seed of a publication point: a hash of its host and
/// path, so every directory gets a distinct, replayable session id.
pub(crate) fn session_seed(host: &str, path: &[String]) -> u64 {
    let mut buf = Vec::new();
    buf.extend_from_slice(host.as_bytes());
    for part in path {
        buf.push(0);
        buf.extend_from_slice(part.as_bytes());
    }
    digest_to_u64(&sha256(&buf))
}

/// Derives the session id for a given reset count. No RNG: replays are
/// byte-identical, and each reset yields a fresh, unpredictable-enough
/// id for the protocol's purposes.
fn derive_session(seed: u64, resets: u64) -> u64 {
    let mut buf = Vec::with_capacity(16);
    buf.extend_from_slice(&seed.to_be_bytes());
    buf.extend_from_slice(&resets.to_be_bytes());
    digest_to_u64(&sha256(&buf))
}

/// The canonical snapshot-document digest: session, serial, then every
/// `(name, bytes)` pair length-prefixed, hashed. Server and client
/// compute it identically, so the notification's snapshot hash pins the
/// exact document. The server only ever computes it at materialisation
/// time (see [`SnapshotDoc`]); the client recomputes it per fetched
/// snapshot.
pub(crate) fn snapshot_digest<'a, I>(session: u64, serial: u64, files: I) -> Digest
where
    I: Iterator<Item = (&'a str, &'a [u8])>,
{
    sha256(&pubd::snapshot_document(session, serial, files))
}

/// The canonical serialized delta document: session, serial, then the
/// encoded change list. Its length is what byte-budgeted retention
/// meters, its hash is what notifications advertise.
pub(crate) fn delta_document(session: u64, serial: u64, changes: &[DeltaChange]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&session.to_be_bytes());
    buf.extend_from_slice(&serial.to_be_bytes());
    changes.to_vec().encode(&mut buf);
    buf
}

/// The canonical delta-document digest.
pub(crate) fn delta_digest(session: u64, serial: u64, changes: &[DeltaChange]) -> Digest {
    sha256(&delta_document(session, serial, changes))
}

// ---------------------------------------------------------------------
// Wire frames
// ---------------------------------------------------------------------

/// A reference to one delta document in a notification: the serial it
/// reaches and the hash of its canonical encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaRef {
    /// The serial this delta advances the directory to.
    pub serial: u64,
    /// SHA-256 of the canonical delta document.
    pub hash: Digest,
}

impl Encode for DeltaRef {
    fn encode(&self, out: &mut Vec<u8>) {
        self.serial.encode(out);
        self.hash.encode(out);
    }
}

impl Decode for DeltaRef {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(DeltaRef { serial: u64::decode(r)?, hash: Digest::decode(r)? })
    }
}

/// An RRDP client request. Tags are disjoint from the rsync protocol's
/// so a frame from one protocol can never decode as the other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RrdpRequest {
    /// Poll the notification document of a publication point.
    Notification {
        /// The publication-point directory.
        dir: RepoUri,
    },
    /// Fetch the snapshot document at `serial`.
    Snapshot {
        /// The publication-point directory.
        dir: RepoUri,
        /// The serial the notification advertised.
        serial: u64,
    },
    /// Fetch the delta document reaching `serial`.
    Delta {
        /// The publication-point directory.
        dir: RepoUri,
        /// The serial the delta advances to.
        serial: u64,
    },
}

const RREQ_NOTIFICATION: u8 = 0x21;
const RREQ_SNAPSHOT: u8 = 0x22;
const RREQ_DELTA: u8 = 0x23;

impl Encode for RrdpRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RrdpRequest::Notification { dir } => {
                out.push(RREQ_NOTIFICATION);
                dir.encode(out);
            }
            RrdpRequest::Snapshot { dir, serial } => {
                out.push(RREQ_SNAPSHOT);
                dir.encode(out);
                serial.encode(out);
            }
            RrdpRequest::Delta { dir, serial } => {
                out.push(RREQ_DELTA);
                dir.encode(out);
                serial.encode(out);
            }
        }
    }
}

impl Decode for RrdpRequest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            RREQ_NOTIFICATION => Ok(RrdpRequest::Notification { dir: RepoUri::decode(r)? }),
            RREQ_SNAPSHOT => {
                Ok(RrdpRequest::Snapshot { dir: RepoUri::decode(r)?, serial: u64::decode(r)? })
            }
            RREQ_DELTA => {
                Ok(RrdpRequest::Delta { dir: RepoUri::decode(r)?, serial: u64::decode(r)? })
            }
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

/// A `(name, bytes)` snapshot entry — codec helper.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FileEntry(String, Vec<u8>);

impl Encode for FileEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        Writer::string(out, &self.0);
        Writer::bytes(out, &self.1);
    }
}

impl Decode for FileEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(FileEntry(r.string()?, r.bytes()?.to_vec()))
    }
}

/// An RRDP server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RrdpResponse {
    /// The notification document: where the log stands and how to get
    /// there, with a hash on every reference.
    Notification {
        /// The directory (echoed for correlation).
        dir: RepoUri,
        /// Current session id.
        session: u64,
        /// Current (monotone within a session) serial.
        serial: u64,
        /// The canonical complete-sync content digest of the directory
        /// at `serial` — the same digest an rsync digest probe reports,
        /// so RRDP composes with the incremental validator's cache.
        content: Digest,
        /// The serial the advertised snapshot document was materialised
        /// at. Trails `serial` by up to `compaction_interval - 1`; a
        /// fallback client fetches the snapshot here and bridges forward
        /// over the advertised deltas.
        snapshot_serial: u64,
        /// SHA-256 of the snapshot document at `snapshot_serial`.
        snapshot_hash: Digest,
        /// Available delta documents, oldest first.
        deltas: Vec<DeltaRef>,
    },
    /// The snapshot document: the complete file set at `serial`.
    Snapshot {
        /// The directory (echoed).
        dir: RepoUri,
        /// Session id the snapshot belongs to.
        session: u64,
        /// The serial it represents.
        serial: u64,
        /// Every file, in name order.
        files: Vec<(String, Vec<u8>)>,
    },
    /// One delta document.
    Delta {
        /// The directory (echoed).
        dir: RepoUri,
        /// Session id the delta belongs to.
        session: u64,
        /// The serial it advances to.
        serial: u64,
        /// The publish/withdraw list.
        changes: Vec<DeltaChange>,
    },
    /// The requested document does not exist (unknown directory, RRDP
    /// disabled, or a serial outside the retained history).
    NotFound {
        /// The directory requested.
        dir: RepoUri,
        /// The serial requested, if the request named one.
        serial: Option<u64>,
    },
}

const RRESP_NOTIFICATION: u8 = 0x31;
const RRESP_SNAPSHOT: u8 = 0x32;
const RRESP_DELTA: u8 = 0x33;
const RRESP_NOT_FOUND: u8 = 0x34;

impl Encode for RrdpResponse {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RrdpResponse::Notification {
                dir,
                session,
                serial,
                content,
                snapshot_serial,
                snapshot_hash,
                deltas,
            } => {
                out.push(RRESP_NOTIFICATION);
                dir.encode(out);
                session.encode(out);
                serial.encode(out);
                content.encode(out);
                snapshot_serial.encode(out);
                snapshot_hash.encode(out);
                deltas.encode(out);
            }
            RrdpResponse::Snapshot { dir, session, serial, files } => {
                out.push(RRESP_SNAPSHOT);
                dir.encode(out);
                session.encode(out);
                serial.encode(out);
                let files: Vec<FileEntry> =
                    files.iter().map(|(n, b)| FileEntry(n.clone(), b.clone())).collect();
                files.encode(out);
            }
            RrdpResponse::Delta { dir, session, serial, changes } => {
                out.push(RRESP_DELTA);
                dir.encode(out);
                session.encode(out);
                serial.encode(out);
                changes.encode(out);
            }
            RrdpResponse::NotFound { dir, serial } => {
                out.push(RRESP_NOT_FOUND);
                dir.encode(out);
                serial.encode(out);
            }
        }
    }
}

impl Decode for RrdpResponse {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            RRESP_NOTIFICATION => Ok(RrdpResponse::Notification {
                dir: RepoUri::decode(r)?,
                session: u64::decode(r)?,
                serial: u64::decode(r)?,
                content: Digest::decode(r)?,
                snapshot_serial: u64::decode(r)?,
                snapshot_hash: Digest::decode(r)?,
                deltas: Vec::<DeltaRef>::decode(r)?,
            }),
            RRESP_SNAPSHOT => Ok(RrdpResponse::Snapshot {
                dir: RepoUri::decode(r)?,
                session: u64::decode(r)?,
                serial: u64::decode(r)?,
                files: Vec::<FileEntry>::decode(r)?
                    .into_iter()
                    .map(|FileEntry(n, b)| (n, b))
                    .collect(),
            }),
            RRESP_DELTA => Ok(RrdpResponse::Delta {
                dir: RepoUri::decode(r)?,
                session: u64::decode(r)?,
                serial: u64::decode(r)?,
                changes: Vec::<DeltaChange>::decode(r)?,
            }),
            RRESP_NOT_FOUND => Ok(RrdpResponse::NotFound {
                dir: RepoUri::decode(r)?,
                serial: Option::<u64>::decode(r)?,
            }),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

// ---------------------------------------------------------------------
// Server answering
// ---------------------------------------------------------------------

/// Answers one decoded RRDP request against the stored publication
/// logs, honouring the misbehaviour knobs (offline, withheld deltas,
/// pinned views), and books the served wire bytes into the per-kind
/// [`PubdServed`](crate::PubdServed) ledger.
pub(crate) fn answer_rrdp(repos: &RepoRegistry, node: NodeId, req: &RrdpRequest) -> RrdpResponse {
    let resp = answer_rrdp_inner(repos, node, req);
    if let Some(repo) = repos.get(node) {
        let (RrdpRequest::Notification { dir }
        | RrdpRequest::Snapshot { dir, .. }
        | RrdpRequest::Delta { dir, .. }) = req;
        let bytes = resp.to_bytes().len();
        repo.note_served(dir, bytes);
        repo.note_served_rrdp(dir, &resp, bytes as u64);
    }
    resp
}

fn answer_rrdp_inner(repos: &RepoRegistry, node: NodeId, req: &RrdpRequest) -> RrdpResponse {
    let (dir, req_serial) = match req {
        RrdpRequest::Notification { dir } => (dir, None),
        RrdpRequest::Snapshot { dir, serial } | RrdpRequest::Delta { dir, serial } => {
            (dir, Some(*serial))
        }
    };
    let not_found = RrdpResponse::NotFound { dir: dir.clone(), serial: req_serial };
    let Some(repo) = repos.get(node) else { return not_found };
    if repo.host() != dir.host() || repo.rrdp_offline() {
        return not_found;
    }
    match req {
        RrdpRequest::Notification { .. } => match repo.rrdp_notification(dir) {
            Some(info) => RrdpResponse::Notification {
                dir: dir.clone(),
                session: info.session,
                serial: info.serial,
                content: info.content,
                snapshot_serial: info.snapshot_serial,
                snapshot_hash: info.snapshot_hash,
                deltas: info.deltas,
            },
            None => not_found,
        },
        RrdpRequest::Snapshot { serial, .. } => match repo.rrdp_snapshot(dir, *serial) {
            Some((session, files)) => {
                RrdpResponse::Snapshot { dir: dir.clone(), session, serial: *serial, files }
            }
            None => not_found,
        },
        RrdpRequest::Delta { serial, .. } => {
            if repo.rrdp_withhold_deltas() {
                return not_found;
            }
            match repo.rrdp_delta(dir, *serial) {
                Some((session, changes)) => {
                    RrdpResponse::Delta { dir: dir.clone(), session, serial: *serial, changes }
                }
                None => not_found,
            }
        }
    }
}

/// What one notification document says, as assembled by the store
/// (from the live log or a pinned, frozen copy of it).
#[derive(Debug, Clone)]
pub(crate) struct NotifInfo {
    pub(crate) session: u64,
    pub(crate) serial: u64,
    pub(crate) content: Digest,
    pub(crate) snapshot_serial: u64,
    pub(crate) snapshot_hash: Digest,
    pub(crate) deltas: Vec<DeltaRef>,
}

// ---------------------------------------------------------------------
// Client state machine
// ---------------------------------------------------------------------

/// Counters an [`RrdpClientState`] accumulates across syncs. All plain
/// integers, so campaign metrics built from them replay byte-identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RrdpStats {
    /// Notification polls attempted.
    pub polls: u64,
    /// Syncs resolved by the serial fast path (nothing to transfer).
    pub unchanged: u64,
    /// Syncs resolved by applying a delta chain.
    pub delta_syncs: u64,
    /// Individual delta documents applied.
    pub deltas_applied: u64,
    /// Syncs resolved by fetching the full snapshot.
    pub snapshot_syncs: u64,
    /// Snapshot syncs because this client had no local state yet (the
    /// unavoidable cold-start fetch).
    pub fallback_initial: u64,
    /// Snapshot syncs because the deltas this client needed were no
    /// longer retained — the history-eviction side of RFC 8182 §3.3.2,
    /// and the starvation lever a Stalloris-style authority pulls.
    pub fallback_evicted: u64,
    /// Snapshot syncs because the upstream session id changed.
    pub fallback_session_reset: u64,
    /// Snapshot syncs for every other reason: a hole inside the
    /// advertised chain, a serial that went backwards, content
    /// divergence at the same serial, or a delta fetch that failed
    /// (withheld, torn, hash mismatch, inconsistent chain).
    pub fallback_chain_gap: u64,
    /// Bridge deltas applied on top of fetched snapshots (the snapshot
    /// was materialised behind the head serial; see compaction).
    pub bridge_deltas_applied: u64,
    /// Session resets observed (the upstream feed restarted).
    pub session_resets: u64,
    /// Syncs that failed outright (caller decides the fallback).
    pub failures: u64,
    /// Times the caller fell back to the rsync path.
    pub downgrades: u64,
    /// Times a freshness cross-check caught a stale pinned feed.
    pub pinned_detected: u64,
    /// Failed syncs held back from rsync because the notification had
    /// not yet been unreachable past the fallback window.
    pub fallback_deferrals: u64,
    /// Times the timed fallback window expired and the caller switched
    /// a directory to rsync.
    pub fallback_switches: u64,
}

/// Per-directory client state.
#[derive(Debug)]
struct DirState {
    session: u64,
    serial: u64,
    /// `name → (digest, bytes)`; digests are kept so the content digest
    /// recomputes without re-hashing unchanged files.
    files: BTreeMap<String, (Digest, Vec<u8>)>,
}

impl DirState {
    fn content(&self) -> Digest {
        let entries: Vec<(&str, Digest)> =
            self.files.iter().map(|(n, (d, _))| (n.as_str(), *d)).collect();
        dir_content_digest(&entries, &[], &[])
    }

    fn outcome(&self, dir: &RepoUri) -> SyncOutcome {
        let files = self.files.iter().map(|(n, (_, b))| (n.clone(), b.clone())).collect();
        let mut out = SyncOutcome::fresh(dir.clone(), files);
        out.content = Some(self.content());
        out
    }
}

/// Persistent RRDP client state: per-directory session/serial/files,
/// plus cumulative [`RrdpStats`]. Survives across validation runs the
/// way the resilient snapshot cache does — that persistence is what
/// makes delta sync cheap.
#[derive(Debug, Default)]
pub struct RrdpClientState {
    dirs: BTreeMap<String, DirState>,
    stats: RrdpStats,
    /// Bumps every time a session reset is observed on any directory.
    /// An RTR cache keyed on this epoch starts a new RTR session
    /// (CacheReset at the routers) instead of silently bumping serials.
    epoch: u64,
    /// `dir → sim time of the first notification failure in the current
    /// unreachable streak`. Cleared on any successful sync. Drives the
    /// routinator-style timed RRDP→rsync fallback (`--rrdp-fallback-time`):
    /// the caller downgrades only once a streak outlives the window.
    unreachable_since: BTreeMap<String, u64>,
}

impl RrdpClientState {
    /// Fresh state: first sync of every directory goes via snapshot.
    pub fn new() -> Self {
        RrdpClientState::default()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> RrdpStats {
        self.stats
    }

    /// The session-reset epoch: increments whenever an upstream
    /// publication point restarts its RRDP session.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The `(session, serial)` this client holds for `dir`, if synced.
    pub fn position(&self, dir: &RepoUri) -> Option<(u64, u64)> {
        self.dirs.get(&dir.to_string()).map(|d| (d.session, d.serial))
    }

    /// Records that the caller fell back to rsync for a directory.
    pub fn note_downgrade(&mut self) {
        self.stats.downgrades += 1;
    }

    /// Records that a freshness cross-check caught a pinned feed.
    pub fn note_pinned(&mut self) {
        self.stats.pinned_detected += 1;
    }

    /// Records a notification failure at `now` and returns when the
    /// current unreachable streak began (i.e. `now` on the first
    /// failure, the original timestamp on later ones).
    pub fn note_unreachable(&mut self, dir: &RepoUri, now: u64) -> u64 {
        *self.unreachable_since.entry(dir.to_string()).or_insert(now)
    }

    /// When the current unreachable streak of `dir` began, if one is
    /// active.
    pub fn unreachable_since(&self, dir: &RepoUri) -> Option<u64> {
        self.unreachable_since.get(&dir.to_string()).copied()
    }

    /// Clears the unreachable streak of `dir` (a sync succeeded).
    pub fn note_reachable(&mut self, dir: &RepoUri) {
        self.unreachable_since.remove(&dir.to_string());
    }

    /// Records a failed sync held back from rsync by the timed-fallback
    /// window.
    pub fn note_fallback_deferral(&mut self) {
        self.stats.fallback_deferrals += 1;
    }

    /// Records a timed-fallback window expiring into an rsync switch.
    pub fn note_fallback_switch(&mut self) {
        self.stats.fallback_switches += 1;
    }
}

/// Why one RRDP sync failed hard (the caller's cue to downgrade to the
/// rsync path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrdpError {
    /// No (parseable) notification arrived: host absent, partitioned,
    /// down, stalled past the deadline, or the frame was torn.
    Unreachable,
    /// The server answered NotFound: RRDP disabled or the needed
    /// document withheld.
    Withheld,
    /// A document arrived but failed its hash, session, or consistency
    /// check — the feed is corrupt or lying.
    Corrupt,
}

impl RrdpError {
    /// Stable label for traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            RrdpError::Unreachable => "unreachable",
            RrdpError::Withheld => "withheld",
            RrdpError::Corrupt => "corrupt",
        }
    }
}

/// How one successful RRDP sync got its data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrdpSyncKind {
    /// Serial unchanged: the two-frame fast path, nothing transferred.
    Unchanged,
    /// This many delta documents were fetched and applied.
    Deltas(usize),
    /// Full snapshot fetched (first sync, or a gap in the delta chain).
    Snapshot,
    /// Full snapshot fetched because the session id changed.
    SessionReset,
}

impl RrdpSyncKind {
    /// Stable label for traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            RrdpSyncKind::Unchanged => "unchanged",
            RrdpSyncKind::Deltas(_) => "deltas",
            RrdpSyncKind::Snapshot => "snapshot",
            RrdpSyncKind::SessionReset => "session_reset",
        }
    }
}

/// Why a sync went to the snapshot instead of the delta chain. Decided
/// at plan time, counted (one of the `fallback_*` [`RrdpStats`]
/// counters) only when the snapshot sync succeeds — so the cause
/// counters always sum to `snapshot_syncs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackCause {
    /// No local state: the unavoidable first fetch.
    Initial,
    /// The deltas this client needed were evicted from the retained
    /// history (the client fell behind the retention budget).
    Evicted,
    /// The upstream session id changed.
    SessionReset,
    /// A hole inside the advertised chain, a serial moving backwards,
    /// content divergence at the same serial, or a failed delta fetch.
    ChainGap,
}

impl FallbackCause {
    /// Stable label for traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            FallbackCause::Initial => "initial",
            FallbackCause::Evicted => "history_evicted",
            FallbackCause::SessionReset => "session_reset",
            FallbackCause::ChainGap => "chain_gap",
        }
    }
}

/// Runs one batch of RRDP request/response exchanges against `server`,
/// pumping the event loop with the same outstanding-exchange accounting
/// as the rsync driver: the batch ends when every request resolved
/// (response delivered, either direction dropped, or request arrived
/// unparseable) or the deadline tears the session down.
fn rrdp_exchange(
    net: &mut Network,
    repos: &RepoRegistry,
    client: NodeId,
    server: NodeId,
    reqs: &[RrdpRequest],
    deadline: Option<u64>,
) -> Vec<RrdpResponse> {
    let mut responses = Vec::new();
    let mut outstanding = reqs.len() as u64;
    let mut deadline_hit = false;
    if let Some(d) = deadline {
        net.set_timer(client, d, RRDP_DEADLINE_TOKEN);
    }
    for req in reqs {
        net.send(client, server, req.to_bytes());
    }
    while outstanding > 0 {
        let Some(occ) = net.step() else { break };
        match occ {
            Occurrence::Timer { node, token }
                if deadline.is_some() && node == client && token == RRDP_DEADLINE_TOKEN =>
            {
                deadline_hit = true;
                net.flush_pair(client, server);
                break;
            }
            Occurrence::Timer { .. } => continue,
            Occurrence::Dropped { from, to, .. } => {
                if (from == client && to == server) || (from == server && to == client) {
                    outstanding = outstanding.saturating_sub(1);
                }
            }
            Occurrence::Delivered(delivery) => {
                if delivery.to == client {
                    if delivery.from != server {
                        continue;
                    }
                    outstanding = outstanding.saturating_sub(1);
                    if let Ok(resp) = RrdpResponse::from_bytes(&delivery.payload) {
                        responses.push(resp);
                    }
                    // A torn frame resolves its exchange with nothing.
                } else if let Some(repo) = repos.get(delivery.to) {
                    let hold = repo.serve_delay();
                    if let Ok(req) = RrdpRequest::from_bytes(&delivery.payload) {
                        let resp = answer_rrdp(repos, delivery.to, &req);
                        net.send_after(delivery.to, delivery.from, resp.to_bytes(), hold);
                    } else if delivery.from == client && delivery.to == server {
                        // Request corrupted in flight: server stays
                        // silent, the exchange is dead.
                        outstanding = outstanding.saturating_sub(1);
                    }
                }
            }
        }
    }
    if deadline.is_some() && !deadline_hit {
        net.cancel_timer(client, RRDP_DEADLINE_TOKEN);
    }
    responses
}

/// Polls only the notification of `dir` — the RRDP analogue of an rsync
/// digest probe (two tiny frames). The reported digest is whatever the
/// *server claims* its content is; a pinned server claims its frozen
/// view, which is exactly what makes the trusting relying party
/// attackable.
pub fn rrdp_probe_dir(
    net: &mut Network,
    repos: &RepoRegistry,
    client: NodeId,
    dir: &RepoUri,
    deadline: Option<u64>,
) -> crate::client::DirProbe {
    let mut probe = crate::client::DirProbe::unreachable(dir.clone());
    let Some(server) = repos.node_of(dir.host()) else { return probe };
    let resps = rrdp_exchange(
        net,
        repos,
        client,
        server,
        &[RrdpRequest::Notification { dir: dir.clone() }],
        deadline,
    );
    if let Some(RrdpResponse::Notification { content, .. }) = resps.into_iter().next() {
        probe.listed = true;
        probe.digest = Some(content);
    }
    probe
}

/// What the notification said, reduced to what the sync plan needs.
struct Notification {
    session: u64,
    serial: u64,
    content: Digest,
    snapshot_serial: u64,
    snapshot_hash: Digest,
    deltas: Vec<DeltaRef>,
}

/// Runs one RRDP sync of `dir` from `client`, updating `state`.
///
/// The state machine: poll the notification; if the local serial
/// matches, confirm and stop (two frames total). If the local state is
/// behind and the notification lists a contiguous, fully-hashed delta
/// chain from it, fetch and apply the deltas. On a session reset, a
/// serial gap, or any hash or consistency failure, fall back to the
/// full snapshot (verified against the notification's snapshot hash).
/// Hard failures come back as [`RrdpError`]; the relying-party layer
/// downgrades those to the rsync path.
///
/// A successful sync's [`SyncOutcome`] is byte-identical to what a
/// complete rsync session of the same directory state produces — same
/// files, same canonical content digest — which is what lets RRDP slot
/// under the resilient source, the incremental validator, and the
/// campaign harness unchanged.
pub fn rrdp_sync_dir(
    net: &mut Network,
    repos: &RepoRegistry,
    client: NodeId,
    dir: &RepoUri,
    state: &mut RrdpClientState,
    deadline: Option<u64>,
) -> Result<(SyncOutcome, RrdpSyncKind), RrdpError> {
    let rec = net.recorder();
    let fail = |net: &mut Network, state: &mut RrdpClientState, err: RrdpError| {
        state.stats.failures += 1;
        let rec = net.recorder();
        if rec.is_enabled() {
            rec.count("repo.rrdp_failures", 1);
            rec.event(net.now(), "repo", "rrdp_fail")
                .str("host", dir.host())
                .str("reason", err.label())
                .emit();
        }
        Err(err)
    };
    let Some(server) = repos.node_of(dir.host()) else {
        return fail(net, state, RrdpError::Unreachable);
    };
    state.stats.polls += 1;
    if rec.is_enabled() {
        rec.count("repo.rrdp_polls", 1);
    }
    let resps = rrdp_exchange(
        net,
        repos,
        client,
        server,
        &[RrdpRequest::Notification { dir: dir.clone() }],
        deadline,
    );
    let notif = match resps.into_iter().next() {
        Some(RrdpResponse::Notification {
            session,
            serial,
            content,
            snapshot_serial,
            snapshot_hash,
            deltas,
            ..
        }) => Notification { session, serial, content, snapshot_serial, snapshot_hash, deltas },
        Some(RrdpResponse::NotFound { .. }) => return fail(net, state, RrdpError::Withheld),
        Some(_) => return fail(net, state, RrdpError::Corrupt),
        None => return fail(net, state, RrdpError::Unreachable),
    };

    let key = dir.to_string();
    let mut session_reset = false;
    // Decide the cheapest safe path to the notification's serial.
    enum Plan {
        Unchanged,
        Deltas(Vec<DeltaRef>),
        Snapshot(FallbackCause),
    }
    let plan = match state.dirs.get(&key) {
        Some(local) if local.session == notif.session => {
            if local.serial == notif.serial {
                if local.content() == notif.content {
                    Plan::Unchanged
                } else {
                    // Our copy diverged from what the server claims for
                    // this serial: self-heal via snapshot.
                    Plan::Snapshot(FallbackCause::ChainGap)
                }
            } else if local.serial < notif.serial {
                let needed: Vec<DeltaRef> = ((local.serial + 1)..=notif.serial)
                    .filter_map(|s| notif.deltas.iter().find(|d| d.serial == s).copied())
                    .collect();
                if needed.len() as u64 == notif.serial - local.serial {
                    Plan::Deltas(needed)
                } else {
                    // Distinguish the §3.3.2 starvation case (our resume
                    // point aged out of the retained history) from a
                    // hole inside the advertised chain.
                    let oldest = notif.deltas.iter().map(|d| d.serial).min();
                    let cause = match oldest {
                        Some(o) if o <= local.serial + 1 => FallbackCause::ChainGap,
                        _ => FallbackCause::Evicted,
                    };
                    Plan::Snapshot(cause)
                }
            } else {
                // The server's serial went backwards within a session —
                // a replayed or broken feed. Resync from its snapshot.
                Plan::Snapshot(FallbackCause::ChainGap)
            }
        }
        Some(_) => {
            session_reset = true;
            Plan::Snapshot(FallbackCause::SessionReset)
        }
        None => Plan::Snapshot(FallbackCause::Initial),
    };
    if session_reset {
        state.stats.session_resets += 1;
        state.epoch += 1;
        if rec.is_enabled() {
            rec.count("repo.rrdp_session_resets", 1);
        }
    }

    let emit_sync =
        |net: &Network, kind: RrdpSyncKind, serial: u64, cause: Option<FallbackCause>| {
            let rec = net.recorder();
            if rec.is_enabled() {
                let mut ev = rec
                    .event(net.now(), "repo", "rrdp_sync")
                    .str("host", dir.host())
                    .str("kind", kind.label())
                    .u64("serial", serial);
                if let Some(cause) = cause {
                    ev = ev.str("cause", cause.label());
                }
                ev.emit();
            }
        };

    if let Plan::Unchanged = plan {
        state.stats.unchanged += 1;
        if rec.is_enabled() {
            rec.count("repo.rrdp_unchanged", 1);
        }
        emit_sync(net, RrdpSyncKind::Unchanged, notif.serial, None);
        let local = &state.dirs[&key];
        return Ok((local.outcome(dir), RrdpSyncKind::Unchanged));
    }

    if let Plan::Deltas(refs) = &plan {
        let reqs: Vec<RrdpRequest> = refs
            .iter()
            .map(|d| RrdpRequest::Delta { dir: dir.clone(), serial: d.serial })
            .collect();
        let resps = rrdp_exchange(net, repos, client, server, &reqs, deadline);
        let mut by_serial: BTreeMap<u64, Vec<DeltaChange>> = BTreeMap::new();
        for resp in resps {
            if let RrdpResponse::Delta { session, serial, changes, .. } = resp {
                let expected = refs.iter().find(|d| d.serial == serial);
                if session == notif.session
                    && expected.is_some_and(|d| d.hash == delta_digest(session, serial, &changes))
                {
                    by_serial.insert(serial, changes);
                }
            }
        }
        if by_serial.len() == refs.len() {
            // Apply the chain to a scratch copy; commit only if the
            // result reproduces the notification's content digest.
            let local = state.dirs.get(&key).expect("delta plan requires local state");
            let mut files = local.files.clone();
            let mut consistent = true;
            'apply: for changes in by_serial.values() {
                for change in changes {
                    match change {
                        DeltaChange::Publish { name, bytes } => {
                            files.insert(name.clone(), (sha256(bytes), bytes.clone()));
                        }
                        DeltaChange::Withdraw { name, hash } => match files.get(name) {
                            Some((d, _)) if d == hash => {
                                files.remove(name);
                            }
                            _ => {
                                consistent = false;
                                break 'apply;
                            }
                        },
                    }
                }
            }
            if consistent {
                let next = DirState { session: notif.session, serial: notif.serial, files };
                if next.content() == notif.content {
                    let n = refs.len();
                    state.stats.delta_syncs += 1;
                    state.stats.deltas_applied += n as u64;
                    if rec.is_enabled() {
                        rec.count("repo.rrdp_delta_syncs", 1);
                        rec.count("repo.rrdp_deltas_applied", n as u64);
                    }
                    emit_sync(net, RrdpSyncKind::Deltas(n), notif.serial, None);
                    let outcome = next.outcome(dir);
                    state.dirs.insert(key, next);
                    return Ok((outcome, RrdpSyncKind::Deltas(n)));
                }
            }
        }
        // Delta path failed (withheld, torn, hash mismatch, or an
        // inconsistent chain): fall through to the snapshot.
    }

    let cause = match plan {
        Plan::Snapshot(cause) => cause,
        // The delta path fell through mid-flight.
        _ => FallbackCause::ChainGap,
    };

    // The snapshot document lives at the serial it was *materialised*
    // at, which under a compacting server trails the head. Fetch it
    // there, then bridge forward over the advertised deltas.
    let resps = rrdp_exchange(
        net,
        repos,
        client,
        server,
        &[RrdpRequest::Snapshot { dir: dir.clone(), serial: notif.snapshot_serial }],
        deadline,
    );
    match resps.into_iter().next() {
        Some(RrdpResponse::Snapshot { session, serial, files, .. }) => {
            let ok = session == notif.session
                && serial == notif.snapshot_serial
                && serial <= notif.serial
                && snapshot_digest(
                    session,
                    serial,
                    files.iter().map(|(n, b)| (n.as_str(), b.as_slice())),
                ) == notif.snapshot_hash;
            if !ok {
                return fail(net, state, RrdpError::Corrupt);
            }
            let mut files: BTreeMap<String, (Digest, Vec<u8>)> =
                files.into_iter().map(|(n, b)| (n, (sha256(&b), b))).collect();

            // Bridge deltas: carry the materialised snapshot forward to
            // the notification's head serial. Every bridge serial must
            // be advertised (the server's invariant is that bridge
            // deltas are never evicted), so a missing reference means a
            // lying or torn feed.
            let mut bridge: Vec<DeltaRef> = Vec::new();
            for s in (notif.snapshot_serial + 1)..=notif.serial {
                match notif.deltas.iter().find(|d| d.serial == s) {
                    Some(d) => bridge.push(*d),
                    None => return fail(net, state, RrdpError::Corrupt),
                }
            }
            let bridged = bridge.len();
            if !bridge.is_empty() {
                let reqs: Vec<RrdpRequest> = bridge
                    .iter()
                    .map(|d| RrdpRequest::Delta { dir: dir.clone(), serial: d.serial })
                    .collect();
                let dresps = rrdp_exchange(net, repos, client, server, &reqs, deadline);
                let mut by_serial: BTreeMap<u64, Vec<DeltaChange>> = BTreeMap::new();
                let mut withheld = false;
                for resp in dresps {
                    match resp {
                        RrdpResponse::Delta { session: ds, serial: s, changes, .. } => {
                            let expected = bridge.iter().find(|d| d.serial == s);
                            if ds == notif.session
                                && expected.is_some_and(|d| d.hash == delta_digest(ds, s, &changes))
                            {
                                by_serial.insert(s, changes);
                            }
                        }
                        RrdpResponse::NotFound { .. } => withheld = true,
                        _ => {}
                    }
                }
                if by_serial.len() != bridged {
                    let err = if withheld { RrdpError::Withheld } else { RrdpError::Unreachable };
                    return fail(net, state, err);
                }
                for changes in by_serial.values() {
                    for change in changes {
                        match change {
                            DeltaChange::Publish { name, bytes } => {
                                files.insert(name.clone(), (sha256(bytes), bytes.clone()));
                            }
                            DeltaChange::Withdraw { name, hash } => match files.get(name) {
                                Some((d, _)) if d == hash => {
                                    files.remove(name);
                                }
                                _ => return fail(net, state, RrdpError::Corrupt),
                            },
                        }
                    }
                }
            }

            let next = DirState { session, serial: notif.serial, files };
            if next.content() != notif.content {
                return fail(net, state, RrdpError::Corrupt);
            }
            let kind =
                if session_reset { RrdpSyncKind::SessionReset } else { RrdpSyncKind::Snapshot };
            state.stats.snapshot_syncs += 1;
            state.stats.bridge_deltas_applied += bridged as u64;
            match cause {
                FallbackCause::Initial => state.stats.fallback_initial += 1,
                FallbackCause::Evicted => state.stats.fallback_evicted += 1,
                FallbackCause::SessionReset => state.stats.fallback_session_reset += 1,
                FallbackCause::ChainGap => state.stats.fallback_chain_gap += 1,
            }
            if rec.is_enabled() {
                rec.count("repo.rrdp_snapshot_syncs", 1);
                match cause {
                    FallbackCause::Initial => rec.count("repo.rrdp_fallback_initial", 1),
                    FallbackCause::Evicted => rec.count("repo.rrdp_fallback_history_evicted", 1),
                    FallbackCause::SessionReset => {
                        rec.count("repo.rrdp_fallback_session_reset", 1);
                    }
                    FallbackCause::ChainGap => rec.count("repo.rrdp_fallback_chain_gap", 1),
                }
                if bridged > 0 {
                    rec.count("repo.rrdp_bridge_deltas_applied", bridged as u64);
                }
            }
            emit_sync(net, kind, notif.serial, Some(cause));
            let outcome = next.outcome(dir);
            state.dirs.insert(key, next);
            Ok((outcome, kind))
        }
        Some(RrdpResponse::NotFound { .. }) => fail(net, state, RrdpError::Withheld),
        Some(_) => fail(net, state, RrdpError::Corrupt),
        None => fail(net, state, RrdpError::Unreachable),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::sync_dir;
    use crate::pubd::{PubdPolicy, RetentionPolicy, MAX_DELTAS};
    use netsim::Network;

    fn world() -> (Network, RepoRegistry, NodeId, NodeId, RepoUri) {
        let mut net = Network::new(1);
        let client = net.add_node("relying-party");
        let mut repos = RepoRegistry::new();
        let server = repos.create(&mut net, "rpki.sprint.example");
        let dir = RepoUri::new("rpki.sprint.example", &["repo"]);
        let repo = repos.get_mut(server).unwrap();
        repo.publish_raw(&dir, "a.roa", vec![1, 2, 3]);
        repo.publish_raw(&dir, "b.cer", vec![4, 5]);
        (net, repos, client, server, dir)
    }

    #[test]
    fn frames_round_trip() {
        let dir = RepoUri::new("h", &["repo"]);
        for req in [
            RrdpRequest::Notification { dir: dir.clone() },
            RrdpRequest::Snapshot { dir: dir.clone(), serial: 7 },
            RrdpRequest::Delta { dir: dir.clone(), serial: 8 },
        ] {
            assert_eq!(RrdpRequest::from_bytes(&req.to_bytes()).unwrap(), req);
        }
        for resp in [
            RrdpResponse::Notification {
                dir: dir.clone(),
                session: 9,
                serial: 3,
                content: sha256(b"c"),
                snapshot_serial: 2,
                snapshot_hash: sha256(b"s"),
                deltas: vec![DeltaRef { serial: 3, hash: sha256(b"d") }],
            },
            RrdpResponse::Snapshot {
                dir: dir.clone(),
                session: 9,
                serial: 3,
                files: vec![("a".to_owned(), vec![1])],
            },
            RrdpResponse::Delta {
                dir: dir.clone(),
                session: 9,
                serial: 3,
                changes: vec![
                    DeltaChange::Publish { name: "a".to_owned(), bytes: vec![1] },
                    DeltaChange::Withdraw { name: "b".to_owned(), hash: sha256(b"x") },
                ],
            },
            RrdpResponse::NotFound { dir: dir.clone(), serial: Some(4) },
            RrdpResponse::NotFound { dir, serial: None },
        ] {
            assert_eq!(RrdpResponse::from_bytes(&resp.to_bytes()).unwrap(), resp);
        }
    }

    #[test]
    fn rrdp_and_rsync_tags_are_disjoint() {
        use crate::proto::RsyncRequest;
        let dir = RepoUri::new("h", &["repo"]);
        let rrdp = RrdpRequest::Notification { dir: dir.clone() }.to_bytes();
        assert!(RsyncRequest::from_bytes(&rrdp).is_err(), "rsync must reject rrdp frames");
        let rsync = RsyncRequest::List { dir }.to_bytes();
        assert!(RrdpRequest::from_bytes(&rsync).is_err(), "rrdp must reject rsync frames");
    }

    #[test]
    fn first_sync_fetches_snapshot_and_matches_rsync() {
        let (mut net, repos, client, _, dir) = world();
        let mut state = RrdpClientState::new();
        let (out, kind) = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        assert_eq!(kind, RrdpSyncKind::Snapshot);
        assert!(out.is_complete());
        let rsync = sync_dir(&mut net, &repos, client, &dir);
        assert_eq!(out, rsync, "RRDP outcome must be byte-identical to a complete rsync sync");
        assert_eq!(state.stats().snapshot_syncs, 1);
        assert_eq!(state.stats().fallback_initial, 1, "cold start is the 'initial' cause");
    }

    #[test]
    fn unchanged_serial_is_a_two_frame_fast_path() {
        let (mut net, repos, client, _, dir) = world();
        let mut state = RrdpClientState::new();
        rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        let sent_before = net.stats().sent;
        let (out, kind) = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        assert_eq!(kind, RrdpSyncKind::Unchanged);
        assert_eq!(net.stats().sent - sent_before, 2, "notification poll only");
        assert!(out.is_complete());
        assert_eq!(state.stats().unchanged, 1);
    }

    #[test]
    fn delta_chain_applies_incrementally() {
        let (mut net, mut repos, client, server, dir) = world();
        let mut state = RrdpClientState::new();
        rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        let repo = repos.get_mut(server).unwrap();
        repo.publish_raw(&dir, "c.mft", vec![9, 9]);
        repo.delete(&dir, "a.roa");
        let (out, kind) = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        assert_eq!(kind, RrdpSyncKind::Deltas(2));
        assert_eq!(out.files.len(), 2);
        assert!(out.files.contains_key("c.mft"));
        assert!(!out.files.contains_key("a.roa"));
        let rsync = sync_dir(&mut net, &repos, client, &dir);
        assert_eq!(out, rsync);
        assert_eq!(state.stats().delta_syncs, 1);
        assert_eq!(state.stats().deltas_applied, 2);
    }

    #[test]
    fn overwrite_and_corruption_travel_as_deltas() {
        let (mut net, mut repos, client, server, dir) = world();
        let mut state = RrdpClientState::new();
        rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        let repo = repos.get_mut(server).unwrap();
        repo.publish_raw(&dir, "a.roa", vec![7, 7, 7]);
        assert!(repo.corrupt_at_rest(&dir, "b.cer"));
        let (out, kind) = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        assert!(matches!(kind, RrdpSyncKind::Deltas(2)));
        assert_eq!(out.files["a.roa"], vec![7, 7, 7]);
        assert_eq!(out.files["b.cer"], vec![4 ^ 0xff, 5], "at-rest rot must travel to the client");
        assert_eq!(out, sync_dir(&mut net, &repos, client, &dir));
    }

    #[test]
    fn deep_history_gap_falls_back_to_snapshot() {
        let (mut net, mut repos, client, server, dir) = world();
        let mut state = RrdpClientState::new();
        rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        let repo = repos.get_mut(server).unwrap();
        for i in 0..(MAX_DELTAS + 4) {
            repo.publish_raw(&dir, "a.roa", vec![i as u8, 1]);
        }
        let (out, kind) = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        assert_eq!(kind, RrdpSyncKind::Snapshot, "history gap must force a snapshot");
        assert_eq!(
            state.stats().fallback_evicted,
            1,
            "falling behind the retained history is the 'history_evicted' cause"
        );
        assert_eq!(state.stats().fallback_chain_gap, 0);
        assert_eq!(out, sync_dir(&mut net, &repos, client, &dir));
    }

    #[test]
    fn session_reset_forces_snapshot_and_bumps_epoch() {
        let (mut net, mut repos, client, server, dir) = world();
        let mut state = RrdpClientState::new();
        rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        let (old_session, _) = state.position(&dir).unwrap();
        assert_eq!(state.epoch(), 0);
        assert!(repos.get_mut(server).unwrap().rrdp_reset_session(&dir));
        let (out, kind) = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        assert_eq!(kind, RrdpSyncKind::SessionReset);
        assert_eq!(state.epoch(), 1);
        assert_eq!(state.stats().session_resets, 1);
        assert_eq!(state.stats().fallback_session_reset, 1);
        let (new_session, new_serial) = state.position(&dir).unwrap();
        assert_ne!(new_session, old_session);
        assert_eq!(new_serial, 1);
        assert_eq!(out, sync_dir(&mut net, &repos, client, &dir));
    }

    #[test]
    fn withheld_deltas_fall_back_to_snapshot() {
        let (mut net, mut repos, client, server, dir) = world();
        let mut state = RrdpClientState::new();
        rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        let repo = repos.get_mut(server).unwrap();
        repo.publish_raw(&dir, "c.mft", vec![1]);
        repo.set_rrdp_withhold_deltas(true);
        let (out, kind) = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        assert_eq!(kind, RrdpSyncKind::Snapshot, "withheld deltas must not stall the client");
        assert!(out.files.contains_key("c.mft"));
    }

    #[test]
    fn offline_rrdp_is_withheld() {
        let (mut net, mut repos, client, server, dir) = world();
        repos.get_mut(server).unwrap().set_rrdp_offline(true);
        let mut state = RrdpClientState::new();
        let err = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap_err();
        assert_eq!(err, RrdpError::Withheld);
        assert_eq!(state.stats().failures, 1);
        // rsync is unaffected: that is the downgrade path.
        assert!(sync_dir(&mut net, &repos, client, &dir).is_complete());
    }

    #[test]
    fn pinned_feed_serves_the_frozen_view() {
        let (mut net, mut repos, client, server, dir) = world();
        let mut state = RrdpClientState::new();
        rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        let repo = repos.get_mut(server).unwrap();
        repo.rrdp_pin();
        repo.publish_raw(&dir, "a.roa", vec![8, 8]);
        // RRDP still confirms the stale serial; rsync sees the truth.
        let (out, kind) = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        assert_eq!(kind, RrdpSyncKind::Unchanged);
        assert_eq!(out.files["a.roa"], vec![1, 2, 3], "pinned view must hide the write");
        let rsync = sync_dir(&mut net, &repos, client, &dir);
        assert_eq!(rsync.files["a.roa"], vec![8, 8]);
        assert_ne!(out.content, rsync.content, "the lie is visible to a cross-check");
        // A fresh client is also served the frozen snapshot.
        let mut fresh = RrdpClientState::new();
        let (out2, _) = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut fresh, None).unwrap();
        assert_eq!(out2.files["a.roa"], vec![1, 2, 3]);
        // Unpinning heals the feed.
        repos.get_mut(server).unwrap().rrdp_unpin();
        let (out3, _) = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        assert_eq!(out3.files["a.roa"], vec![8, 8]);
    }

    #[test]
    fn partition_is_unreachable() {
        let (mut net, repos, client, server, dir) = world();
        net.faults.partition(client, server);
        let mut state = RrdpClientState::new();
        let err = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap_err();
        assert_eq!(err, RrdpError::Unreachable);
    }

    #[test]
    fn stalled_notification_hits_the_deadline() {
        let (mut net, repos, client, server, dir) = world();
        net.faults.set_stall(server, client, 3600);
        let mut state = RrdpClientState::new();
        let start = net.now();
        let err = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, Some(300)).unwrap_err();
        assert_eq!(err, RrdpError::Unreachable);
        assert_eq!(net.now() - start, 300, "the client must walk away at the deadline");
        assert!(net.is_idle());
    }

    #[test]
    fn torn_snapshot_frame_fails_cleanly() {
        let (mut net, repos, client, server, dir) = world();
        // Frame 2 server→client is the snapshot response (frame 1 is
        // the notification).
        net.faults.corrupt_nth(server, client, 2);
        let mut state = RrdpClientState::new();
        let err = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap_err();
        assert_eq!(err, RrdpError::Unreachable);
    }

    #[test]
    fn probe_reports_the_servers_claimed_content() {
        let (mut net, mut repos, client, server, dir) = world();
        let probe = rrdp_probe_dir(&mut net, &repos, client, &dir, None);
        assert!(probe.listed);
        let live = sync_dir(&mut net, &repos, client, &dir);
        assert_eq!(probe.digest, live.content);
        // Under a pin the probe repeats the lie — by design.
        let repo = repos.get_mut(server).unwrap();
        repo.rrdp_pin();
        repo.publish_raw(&dir, "a.roa", vec![9]);
        let pinned = rrdp_probe_dir(&mut net, &repos, client, &dir, None);
        assert_eq!(pinned.digest, probe.digest);
        assert_ne!(pinned.digest, sync_dir(&mut net, &repos, client, &dir).content);
    }

    #[test]
    fn session_ids_are_deterministic_and_distinct() {
        let build = || {
            let mut net = Network::new(1);
            let mut repos = RepoRegistry::new();
            let server = repos.create(&mut net, "h");
            let repo = repos.get_mut(server).unwrap();
            let a = RepoUri::new("h", &["repo"]);
            let b = RepoUri::new("h", &["other"]);
            repo.publish_raw(&a, "x", vec![1]);
            repo.publish_raw(&b, "x", vec![1]);
            (repo.rrdp_position(&a).unwrap(), repo.rrdp_position(&b).unwrap())
        };
        let (a1, b1) = build();
        let (a2, b2) = build();
        assert_eq!(a1, a2, "sessions must replay identically");
        assert_eq!(b1, b2);
        assert_ne!(a1.0, b1.0, "distinct publication points get distinct sessions");
    }

    #[test]
    fn compacted_server_serves_snapshot_plus_bridge_deltas() {
        let (mut net, mut repos, client, server, dir) = world();
        let repo = repos.get_mut(server).unwrap();
        repo.set_pubd_policy(PubdPolicy::compacted(4));
        // world() materialised at serial 2 under the default policy;
        // two more writes leave the head at 4 with the snapshot at 2.
        repo.publish_raw(&dir, "c.mft", vec![6]);
        repo.publish_raw(&dir, "d.crl", vec![7]);
        assert_eq!(repo.rrdp_position(&dir).unwrap().1, 4);
        assert_eq!(repo.pubd_work(&dir).unwrap().snapshot_builds, 2, "no build since compaction");
        let mut state = RrdpClientState::new();
        let (out, kind) = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        assert_eq!(kind, RrdpSyncKind::Snapshot);
        assert_eq!(
            state.stats().bridge_deltas_applied,
            2,
            "snapshot at 2 plus bridge deltas 3 and 4"
        );
        assert_eq!(out, sync_dir(&mut net, &repos, client, &dir), "bridged state matches rsync");
    }

    #[test]
    fn compaction_materialises_on_the_interval() {
        let (mut net, mut repos, client, server, dir) = world();
        let repo = repos.get_mut(server).unwrap();
        repo.set_pubd_policy(PubdPolicy::compacted(3));
        for i in 0..7u8 {
            repo.publish_raw(&dir, "a.roa", vec![i, i, 1]);
        }
        // Serial 9: materialisations at 2 (pre-policy), 5, and 8.
        let work = repo.pubd_work(&dir).unwrap();
        assert_eq!(work.serials, 9);
        assert_eq!(work.snapshot_builds, 4, "serials 1, 2, then 5 and 8");
        assert_eq!(work.forced_builds, 0);
        let mut state = RrdpClientState::new();
        let (out, _) = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        assert_eq!(state.stats().bridge_deltas_applied, 1, "snapshot at 8, bridge to 9");
        assert_eq!(out, sync_dir(&mut net, &repos, client, &dir));
    }

    #[test]
    fn retention_budget_never_evicts_bridge_deltas() {
        let (mut net, mut repos, client, server, dir) = world();
        let repo = repos.get_mut(server).unwrap();
        // A budget of one delta under an interval of 8: every second
        // write would have to evict a bridge delta, forcing a
        // re-materialisation at the head first.
        repo.set_pubd_policy(
            PubdPolicy::compacted(8).with_retention(RetentionPolicy::Count { max_deltas: 1 }),
        );
        for i in 0..6u8 {
            repo.publish_raw(&dir, "a.roa", vec![i, 9]);
        }
        let work = repo.pubd_work(&dir).unwrap();
        assert!(work.forced_builds > 0, "undersized budget must force builds");
        assert!(work.retained_deltas <= 1, "the budget itself still holds");
        let info = repo.rrdp_notification(&dir).unwrap();
        for s in (info.snapshot_serial + 1)..=info.serial {
            assert!(
                info.deltas.iter().any(|d| d.serial == s),
                "bridge delta {s} missing from the advertised history"
            );
        }
        let mut state = RrdpClientState::new();
        let (out, _) = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        assert_eq!(out, sync_dir(&mut net, &repos, client, &dir));
    }

    #[test]
    fn byte_budget_starves_a_lagging_client_onto_the_snapshot() {
        let (mut net, mut repos, client, server, dir) = world();
        let mut state = RrdpClientState::new();
        rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        let repo = repos.get_mut(server).unwrap();
        // Budget of one delta document's worth of bytes: history depth 1.
        repo.set_pubd_policy(
            PubdPolicy::default().with_retention(RetentionPolicy::Bytes { max_bytes: 64 }),
        );
        for i in 0..3u8 {
            repo.publish_raw(&dir, "a.roa", vec![i, 2, 2]);
        }
        let work = repo.pubd_work(&dir).unwrap();
        assert!(work.deltas_evicted > 0, "the byte budget must evict");
        assert!(work.retained_delta_bytes <= 64);
        let (out, kind) = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        assert_eq!(kind, RrdpSyncKind::Snapshot);
        assert_eq!(state.stats().fallback_evicted, 1);
        assert_eq!(out, sync_dir(&mut net, &repos, client, &dir));
    }

    #[test]
    fn default_policy_reproduces_the_count_bound() {
        let (_, mut repos, _, server, dir) = world();
        let repo = repos.get_mut(server).unwrap();
        for i in 0..(MAX_DELTAS as u16 + 9) {
            repo.publish_raw(&dir, "a.roa", vec![(i >> 8) as u8, i as u8, 3]);
        }
        let info = repo.rrdp_notification(&dir).unwrap();
        assert_eq!(info.deltas.len(), MAX_DELTAS, "default retention keeps MAX_DELTAS");
        assert_eq!(info.snapshot_serial, info.serial, "default compaction tracks the head");
        let work = repo.pubd_work(&dir).unwrap();
        assert_eq!(work.snapshot_builds, work.serials, "interval 1 builds per write");
        assert_eq!(work.forced_builds, 0);
    }

    #[test]
    fn noop_writes_do_not_advance_the_serial() {
        let (mut net, mut repos, client, server, dir) = world();
        let mut state = RrdpClientState::new();
        rrdp_sync_dir(&mut net, &repos, client, &dir, &mut state, None).unwrap();
        let (_, serial) = state.position(&dir).unwrap();
        let repo = repos.get_mut(server).unwrap();
        repo.publish_raw(&dir, "a.roa", vec![1, 2, 3]); // identical bytes
        assert_eq!(repo.rrdp_position(&dir).unwrap().1, serial, "no-op write, no new serial");
    }
}
