//! Wire messages of the rsync-like retrieval protocol.
//!
//! Real rsync does delta transfer; what the paper cares about is only
//! *which bytes reach the relying party*, so the protocol here is the
//! minimal list/get pair. Messages use the same canonical codec as the
//! objects themselves, so in-flight corruption by the fault layer can
//! hit protocol frames too (a corrupted frame decodes as garbage and the
//! client records a failed fetch — exactly like a torn rsync session).

use rpki_objects::{Decode, DecodeError, Encode, Reader, RepoUri, Writer};
use rpkisim_crypto::Digest;

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsyncRequest {
    /// List a directory's `(name, digest)` entries.
    List {
        /// The publication-point directory.
        dir: RepoUri,
    },
    /// Fetch one file's bytes.
    Get {
        /// The publication-point directory.
        dir: RepoUri,
        /// File name within the directory.
        name: String,
    },
    /// Fetch a directory's canonical content digest — the digest a
    /// complete sync of the directory would produce. One tiny frame
    /// each way, so an incremental validator can confirm a cached
    /// subtree without transferring the listing (the moral equivalent
    /// of polling an RRDP notification file).
    Digest {
        /// The publication-point directory.
        dir: RepoUri,
    },
}

const REQ_LIST: u8 = 1;
const REQ_GET: u8 = 2;
const REQ_DIGEST: u8 = 3;

impl Encode for RsyncRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RsyncRequest::List { dir } => {
                out.push(REQ_LIST);
                dir.encode(out);
            }
            RsyncRequest::Get { dir, name } => {
                out.push(REQ_GET);
                dir.encode(out);
                Writer::string(out, name);
            }
            RsyncRequest::Digest { dir } => {
                out.push(REQ_DIGEST);
                dir.encode(out);
            }
        }
    }
}

impl Decode for RsyncRequest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            REQ_LIST => Ok(RsyncRequest::List { dir: RepoUri::decode(r)? }),
            REQ_GET => Ok(RsyncRequest::Get { dir: RepoUri::decode(r)?, name: r.string()? }),
            REQ_DIGEST => Ok(RsyncRequest::Digest { dir: RepoUri::decode(r)? }),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsyncResponse {
    /// Directory listing.
    Listing {
        /// The directory listed (echoed so the client can correlate).
        dir: RepoUri,
        /// `(file name, digest)` pairs.
        entries: Vec<(String, Digest)>,
    },
    /// File contents.
    File {
        /// The file's directory.
        dir: RepoUri,
        /// The file's name.
        name: String,
        /// The bytes as stored (possibly corrupted at rest).
        bytes: Vec<u8>,
    },
    /// The requested directory or file does not exist.
    NotFound {
        /// The directory requested.
        dir: RepoUri,
        /// The file requested, if the request was a `Get`.
        name: Option<String>,
    },
    /// A directory's canonical content digest (answers
    /// [`RsyncRequest::Digest`]). An empty or unknown directory
    /// reports the canonical empty digest, matching what a complete
    /// sync of it would key to.
    DirDigest {
        /// The directory digested (echoed for correlation).
        dir: RepoUri,
        /// The canonical complete-sync content digest.
        digest: Digest,
    },
}

const RESP_LISTING: u8 = 1;
const RESP_FILE: u8 = 2;
const RESP_NOT_FOUND: u8 = 3;
const RESP_DIR_DIGEST: u8 = 4;

/// A `(name, digest)` listing entry — helper for the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry(String, Digest);

impl Encode for Entry {
    fn encode(&self, out: &mut Vec<u8>) {
        Writer::string(out, &self.0);
        self.1.encode(out);
    }
}

impl Decode for Entry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Entry(r.string()?, Digest::decode(r)?))
    }
}

impl Encode for RsyncResponse {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RsyncResponse::Listing { dir, entries } => {
                out.push(RESP_LISTING);
                dir.encode(out);
                let entries: Vec<Entry> =
                    entries.iter().map(|(n, d)| Entry(n.clone(), *d)).collect();
                entries.encode(out);
            }
            RsyncResponse::File { dir, name, bytes } => {
                out.push(RESP_FILE);
                dir.encode(out);
                Writer::string(out, name);
                Writer::bytes(out, bytes);
            }
            RsyncResponse::NotFound { dir, name } => {
                out.push(RESP_NOT_FOUND);
                dir.encode(out);
                name.clone().encode(out);
            }
            RsyncResponse::DirDigest { dir, digest } => {
                out.push(RESP_DIR_DIGEST);
                dir.encode(out);
                digest.encode(out);
            }
        }
    }
}

impl Decode for RsyncResponse {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            RESP_LISTING => {
                let dir = RepoUri::decode(r)?;
                let entries =
                    Vec::<Entry>::decode(r)?.into_iter().map(|Entry(n, d)| (n, d)).collect();
                Ok(RsyncResponse::Listing { dir, entries })
            }
            RESP_FILE => Ok(RsyncResponse::File {
                dir: RepoUri::decode(r)?,
                name: r.string()?,
                bytes: r.bytes()?.to_vec(),
            }),
            RESP_NOT_FOUND => Ok(RsyncResponse::NotFound {
                dir: RepoUri::decode(r)?,
                name: Option::<String>::decode(r)?,
            }),
            RESP_DIR_DIGEST => Ok(RsyncResponse::DirDigest {
                dir: RepoUri::decode(r)?,
                digest: Digest::decode(r)?,
            }),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpkisim_crypto::sha256;

    fn dir() -> RepoUri {
        RepoUri::new("rpki.sprint.example", &["repo"])
    }

    #[test]
    fn request_round_trips() {
        for req in [
            RsyncRequest::List { dir: dir() },
            RsyncRequest::Get { dir: dir(), name: "a.roa".to_owned() },
            RsyncRequest::Digest { dir: dir() },
        ] {
            assert_eq!(RsyncRequest::from_bytes(&req.to_bytes()).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trips() {
        for resp in [
            RsyncResponse::Listing {
                dir: dir(),
                entries: vec![("a.roa".to_owned(), sha256(b"x"))],
            },
            RsyncResponse::File { dir: dir(), name: "a.roa".to_owned(), bytes: vec![1, 2, 3] },
            RsyncResponse::NotFound { dir: dir(), name: Some("b.cer".to_owned()) },
            RsyncResponse::NotFound { dir: dir(), name: None },
            RsyncResponse::DirDigest { dir: dir(), digest: sha256(b"dir") },
        ] {
            assert_eq!(RsyncResponse::from_bytes(&resp.to_bytes()).unwrap(), resp);
        }
    }

    #[test]
    fn corrupted_frame_fails_decode() {
        let resp = RsyncResponse::Listing { dir: dir(), entries: vec![] };
        let mut bytes = resp.to_bytes();
        bytes[0] = 0x77; // smash the tag
        assert!(RsyncResponse::from_bytes(&bytes).is_err());
    }
}
