//! The at-rest object store of one repository host.

use std::cell::RefCell;
use std::collections::BTreeMap;

use ipres::{Asn, Prefix};
use netsim::NodeId;
use rpki_ca::PublicationSnapshot;
use rpki_objects::{Encode, RepoUri};
use rpkisim_crypto::{sha256, Digest};
use serde::Serialize;

use rpki_obs::Recorder;

use crate::client::dir_content_digest;
use crate::pubd::{PubdEvent, PubdPolicy, PubdServed, PubdWork, SnapshotDoc};
use crate::rrdp::{
    session_seed, DeltaChange, DeltaRecord, DeltaRef, NotifInfo, PublicationLog, RrdpResponse,
};

/// One stored file: its bytes plus the digest computed when the bytes
/// last changed, so listings never re-hash unchanged content.
#[derive(Debug)]
struct StoredFile {
    bytes: Vec<u8>,
    digest: Digest,
}

impl StoredFile {
    fn new(bytes: Vec<u8>) -> Self {
        let digest = sha256(&bytes);
        StoredFile { bytes, digest }
    }
}

/// A frozen copy of everything one directory's RRDP endpoint serves,
/// captured at pin time: the notification fields, the materialised
/// snapshot document, and the retained delta history. While a pin is
/// active the server replays this verbatim — stale-data pinning, the
/// Stalloris replay.
#[derive(Debug, Clone)]
struct PinnedFeed {
    session: u64,
    serial: u64,
    content: Digest,
    snapshot: SnapshotDoc,
    deltas: Vec<DeltaRecord>,
}

/// One publication-point directory: its files, the canonical
/// complete-sync content digest (recomputed once per mutation so digest
/// probes are a pure lookup), and the RRDP publication log maintained
/// alongside every write. `pinned` holds a frozen copy of the served
/// feed while a misbehaving host replays stale data.
#[derive(Debug)]
struct Directory {
    files: BTreeMap<String, StoredFile>,
    digest: Digest,
    log: PublicationLog,
    pinned: Option<PinnedFeed>,
}

impl Directory {
    fn new(session_seed: u64) -> Self {
        Directory {
            files: BTreeMap::new(),
            digest: empty_dir_digest(),
            log: PublicationLog::new(session_seed),
            pinned: None,
        }
    }

    /// Recomputes the cached content digest from the current files.
    /// Called after every mutation; a snapshot publication batches its
    /// inserts and calls this once.
    fn refresh_digest(&mut self) {
        let entries: Vec<(&str, Digest)> =
            self.files.iter().map(|(n, f)| (n.as_str(), f.digest)).collect();
        self.digest = dir_content_digest(&entries, &[], &[]);
    }

    /// Materialises the snapshot document at the log's head serial from
    /// the current file set.
    fn materialise_at_head(&self) -> SnapshotDoc {
        SnapshotDoc::build(
            self.log.session,
            self.log.serial,
            self.files.iter().map(|(n, f)| (n.as_str(), f.bytes.as_slice())),
        )
    }

    /// Appends one delta record to the publication log (no-op for an
    /// empty change list), then runs the host's pubd policy: compact
    /// (rematerialise the snapshot document) when the interval is due,
    /// and evict history the retention budget no longer covers. The
    /// returned events are what the caller surfaces through obs.
    ///
    /// Ordering matters for the degenerate default: with interval 1 the
    /// snapshot is materialised *before* retention runs, so
    /// `Count { max_deltas: MAX_DELTAS }` reproduces the old
    /// record-then-evict server byte for byte.
    fn record_rrdp(&mut self, changes: Vec<DeltaChange>, policy: &PubdPolicy) -> Vec<PubdEvent> {
        let mut events = Vec::new();
        if changes.is_empty() {
            return events;
        }
        self.log.record(changes);
        if self.log.serial - self.log.snapshot.serial() >= policy.compaction_interval {
            let doc = self.materialise_at_head();
            self.log.install_snapshot(doc, false, &mut events);
        }
        self.enforce_retention(policy, &mut events);
        events
    }

    /// Evicts from the front of the delta history until the retention
    /// budget is met, forcing a re-materialisation at the head first
    /// whenever the budget would otherwise claim a *bridge* delta (one
    /// younger than the materialised snapshot) — the invariant the
    /// snapshot-fallback client relies on. Terminates because an empty
    /// history is never over budget.
    fn enforce_retention(&mut self, policy: &PubdPolicy, events: &mut Vec<PubdEvent>) {
        while policy.retention.over_budget(self.log.deltas.len(), self.log.delta_bytes) {
            let front = self.log.deltas.front().expect("over budget implies history").serial;
            if front > self.log.snapshot.serial() {
                let doc = self.materialise_at_head();
                self.log.install_snapshot(doc, true, events);
            }
            self.log.evict_front(events);
        }
    }
}

/// The canonical content digest of an empty (or absent) directory —
/// what a complete sync of it would key to.
fn empty_dir_digest() -> Digest {
    dir_content_digest(&[], &[], &[])
}

/// Wire-level load one publication point has served: every answered
/// request counts one frame plus its encoded response bytes. Shared
/// worlds use this to show what many relying parties cost one server —
/// the fan-in the paper's Stalloris successor measured in the wild.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct DirLoad {
    /// Response frames served (one per answered request).
    pub frames: u64,
    /// Encoded response bytes served.
    pub bytes: u64,
}

impl DirLoad {
    /// Component-wise sum.
    pub fn plus(self, other: DirLoad) -> DirLoad {
        DirLoad { frames: self.frames + other.frames, bytes: self.bytes + other.bytes }
    }
}

/// One repository host: a named server carrying any number of
/// publication-point directories, each holding named files.
///
/// The store is byte-oriented: objects are serialised at publication,
/// and anything — including corrupted garbage — can sit at rest. That
/// mirrors production rsync servers, which know nothing about RPKI.
/// Digests are computed once per write, not per listing, so frequent
/// listers (retry drivers, incremental-validation probes) pay only a
/// copy.
#[derive(Debug)]
pub struct Repository {
    /// Host name; equals the `netsim` node name.
    host: String,
    /// The simulated network node serving this repository.
    node: NodeId,
    /// `directory path (joined) → directory contents + cached digest`.
    dirs: BTreeMap<Vec<String>, Directory>,
    /// Where this repository host lives in IP space, if the scenario
    /// cares (Side Effect 7 does: reaching the repo requires a
    /// non-invalid route to this prefix).
    hosted_at: Option<(Prefix, Asn)>,
    /// Misbehaviour knob: answer every RRDP request with NotFound,
    /// forcing clients onto the rsync path (the Stalloris downgrade).
    rrdp_offline: bool,
    /// Misbehaviour knob: answer delta requests with NotFound while the
    /// notification still advertises them, forcing snapshot churn.
    rrdp_withhold_deltas: bool,
    /// Misbehaviour knob: hold every answer frame (rsync and RRDP) this
    /// many seconds before it enters the link — the slow-serve half of
    /// Stalloris, which games deadline-bounded clients and poll budgets.
    serve_delay: u64,
    /// Served-load ledger, keyed per requested directory. Interior
    /// mutability because the answer paths only hold `&Repository`;
    /// the ledger never crosses threads (all simulated I/O runs on the
    /// coordinating thread, even under the sharded validator).
    load: RefCell<BTreeMap<Vec<String>, DirLoad>>,
    /// The publication-server policy every directory on this host runs
    /// under: snapshot compaction interval and delta retention budget.
    policy: PubdPolicy,
    /// Recorder for `pubd/*` events; disabled unless a scenario wires
    /// one in with [`set_recorder`](Repository::set_recorder).
    recorder: Recorder,
    /// The simulated time stamped onto pubd events. Stores sit outside
    /// the network event loop, so scenarios that want timestamped
    /// traces advance this via [`set_clock`](Repository::set_clock).
    clock: u64,
    /// Per-directory serve ledger split by RRDP document kind.
    pubd_served: RefCell<BTreeMap<Vec<String>, PubdServed>>,
}

/// A served snapshot document: the session it belongs to plus its
/// `(name, bytes)` file records.
pub(crate) type SessionSnapshot = (u64, Vec<(String, Vec<u8>)>);

impl Repository {
    /// A repository served by `node` (already registered in the network
    /// under `host`), running the default (rebuild-on-demand) policy.
    pub fn new(host: &str, node: NodeId) -> Self {
        Repository {
            host: host.to_owned(),
            node,
            dirs: BTreeMap::new(),
            hosted_at: None,
            rrdp_offline: false,
            rrdp_withhold_deltas: false,
            serve_delay: 0,
            load: RefCell::new(BTreeMap::new()),
            policy: PubdPolicy::default(),
            recorder: Recorder::disabled(),
            clock: 0,
            pubd_served: RefCell::new(BTreeMap::new()),
        }
    }

    /// Records one served response frame of `bytes` encoded bytes for
    /// `dir`. Misdirected requests (another host's directory) are not
    /// attributed.
    pub fn note_served(&self, dir: &RepoUri, bytes: usize) {
        if dir.host() != self.host {
            return;
        }
        let mut load = self.load.borrow_mut();
        let entry = load.entry(dir.path().to_vec()).or_default();
        entry.frames += 1;
        entry.bytes += bytes as u64;
    }

    /// Wire load served per publication point since the last reset,
    /// in directory order.
    pub fn served_load(&self) -> Vec<(RepoUri, DirLoad)> {
        self.load
            .borrow()
            .iter()
            .map(|(path, l)| {
                let parts: Vec<&str> = path.iter().map(String::as_str).collect();
                (RepoUri::new(&self.host, &parts), *l)
            })
            .collect()
    }

    /// Total wire load this host has served since the last reset.
    pub fn served_total(&self) -> DirLoad {
        self.load.borrow().values().fold(DirLoad::default(), |acc, l| acc.plus(*l))
    }

    /// Clears the served-load ledger (e.g. between campaign rounds).
    pub fn reset_served_load(&self) {
        self.load.borrow_mut().clear();
    }

    /// The host name.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The serving network node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Declares where this host lives in IP space.
    pub fn set_hosted_at(&mut self, prefix: Prefix, origin: Asn) {
        self.hosted_at = Some((prefix, origin));
    }

    /// Where this host lives in IP space, if declared.
    pub fn hosted_at(&self) -> Option<(Prefix, Asn)> {
        self.hosted_at
    }

    fn dir_key(&self, dir: &RepoUri) -> Vec<String> {
        assert_eq!(dir.host(), self.host, "directory {dir} is not on host {}", self.host);
        dir.path().to_vec()
    }

    fn dir_entry(&mut self, dir: &RepoUri) -> &mut Directory {
        let key = self.dir_key(dir);
        let seed = session_seed(&self.host, &key);
        self.dirs.entry(key).or_insert_with(|| Directory::new(seed))
    }

    /// Publishes raw bytes under `dir/name`, overwriting any previous
    /// file of that name — the RPKI's "objects can be overwritten"
    /// design decision, verbatim. A byte-identical overwrite is a no-op
    /// (no new serial in the publication log).
    pub fn publish_raw(&mut self, dir: &RepoUri, name: &str, bytes: Vec<u8>) {
        let policy = self.policy;
        let entry = self.dir_entry(dir);
        if entry.files.get(name).is_some_and(|f| f.bytes == bytes) {
            return;
        }
        entry.files.insert(name.to_owned(), StoredFile::new(bytes.clone()));
        entry.refresh_digest();
        let events =
            entry.record_rrdp(vec![DeltaChange::Publish { name: name.to_owned(), bytes }], &policy);
        self.emit_pubd(dir, &events);
    }

    /// Publishes a CA's complete snapshot into `dir`, replacing the
    /// directory's previous contents (rsync `--delete` semantics: files
    /// the CA no longer issues disappear). The publication log records
    /// the whole replacement as one delta — publishes for new or
    /// changed files, withdraws for the ones that disappeared.
    pub fn publish_snapshot(&mut self, dir: &RepoUri, snapshot: &PublicationSnapshot) {
        let policy = self.policy;
        let entry = self.dir_entry(dir);
        let next: BTreeMap<String, StoredFile> = snapshot
            .files
            .iter()
            .map(|(name, obj)| (name.clone(), StoredFile::new(obj.to_bytes())))
            .collect();
        let mut changes = Vec::new();
        for (name, file) in &entry.files {
            if !next.contains_key(name) {
                changes.push(DeltaChange::Withdraw { name: name.clone(), hash: file.digest });
            }
        }
        for (name, file) in &next {
            if entry.files.get(name).is_none_or(|old| old.digest != file.digest) {
                changes
                    .push(DeltaChange::Publish { name: name.clone(), bytes: file.bytes.clone() });
            }
        }
        entry.files = next;
        entry.refresh_digest();
        let events = entry.record_rrdp(changes, &policy);
        self.emit_pubd(dir, &events);
    }

    /// Deletes `dir/name`. Returns the removed bytes, or `None`.
    pub fn delete(&mut self, dir: &RepoUri, name: &str) -> Option<Vec<u8>> {
        let policy = self.policy;
        let key = self.dir_key(dir);
        let entry = self.dirs.get_mut(&key)?;
        let removed = entry.files.remove(name)?;
        entry.refresh_digest();
        let events = entry.record_rrdp(
            vec![DeltaChange::Withdraw { name: name.to_owned(), hash: removed.digest }],
            &policy,
        );
        self.emit_pubd(dir, &events);
        Some(removed.bytes)
    }

    /// Corrupts a stored file in place (filesystem rot, the at-rest
    /// variant of Side Effect 6's fault list). Returns false if absent.
    /// The rot travels through the publication log too — RRDP serves
    /// whatever sits at rest, corrupted or not, just like rsync.
    pub fn corrupt_at_rest(&mut self, dir: &RepoUri, name: &str) -> bool {
        let policy = self.policy;
        let key = self.dir_key(dir);
        let Some(entry) = self.dirs.get_mut(&key) else { return false };
        match entry.files.get_mut(name) {
            Some(file) if !file.bytes.is_empty() => {
                file.bytes[0] ^= 0xff;
                file.digest = sha256(&file.bytes);
                let bytes = file.bytes.clone();
                entry.refresh_digest();
                let events = entry.record_rrdp(
                    vec![DeltaChange::Publish { name: name.to_owned(), bytes }],
                    &policy,
                );
                self.emit_pubd(dir, &events);
                true
            }
            _ => false,
        }
    }

    // -- pubd: policy, instrumentation, and work/serve ledgers -------

    /// Replaces the publication-server policy of this host and enforces
    /// the new retention budget on every directory immediately (the new
    /// compaction interval takes effect from the next write).
    pub fn set_pubd_policy(&mut self, policy: PubdPolicy) {
        self.policy = policy;
        let keys: Vec<Vec<String>> = self.dirs.keys().cloned().collect();
        for key in keys {
            let mut events = Vec::new();
            let entry = self.dirs.get_mut(&key).expect("key just listed");
            entry.enforce_retention(&policy, &mut events);
            let parts: Vec<&str> = key.iter().map(String::as_str).collect();
            let dir = RepoUri::new(&self.host, &parts);
            self.emit_pubd(&dir, &events);
        }
    }

    /// The publication-server policy this host runs under.
    pub fn pubd_policy(&self) -> PubdPolicy {
        self.policy
    }

    /// Wires in a recorder for `pubd/*` events and counters.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Sets the simulated time stamped onto subsequent pubd events.
    pub fn set_clock(&mut self, now: u64) {
        self.clock = now;
    }

    /// Surfaces the server-side decisions of one write (or policy
    /// change) as obs events and counters.
    fn emit_pubd(&self, dir: &RepoUri, events: &[PubdEvent]) {
        if events.is_empty() || !self.recorder.is_enabled() {
            return;
        }
        let dir_label = dir.to_string();
        for event in events {
            match event {
                PubdEvent::Materialised { serial, bytes, forced } => {
                    self.recorder.count("pubd.snapshot_builds", 1);
                    if *forced {
                        self.recorder.count("pubd.forced_builds", 1);
                    }
                    self.recorder
                        .event(self.clock, "pubd", "materialise")
                        .str("host", &self.host)
                        .str("dir", &dir_label)
                        .u64("serial", *serial)
                        .u64("bytes", *bytes)
                        .bool("forced", *forced)
                        .emit();
                }
                PubdEvent::Evicted { serial, bytes } => {
                    self.recorder.count("pubd.deltas_evicted", 1);
                    self.recorder
                        .event(self.clock, "pubd", "evict")
                        .str("host", &self.host)
                        .str("dir", &dir_label)
                        .u64("serial", *serial)
                        .u64("bytes", *bytes)
                        .emit();
                }
            }
        }
    }

    /// Books one served RRDP response into the per-kind serve ledger.
    pub(crate) fn note_served_rrdp(&self, dir: &RepoUri, resp: &RrdpResponse, bytes: u64) {
        if dir.host() != self.host {
            return;
        }
        let mut ledger = self.pubd_served.borrow_mut();
        let entry = ledger.entry(dir.path().to_vec()).or_default();
        match resp {
            RrdpResponse::Notification { .. } => {
                entry.notifications += 1;
                entry.notification_bytes += bytes;
            }
            RrdpResponse::Snapshot { .. } => {
                entry.snapshots += 1;
                entry.snapshot_bytes += bytes;
            }
            RrdpResponse::Delta { .. } => {
                entry.deltas += 1;
                entry.delta_bytes += bytes;
            }
            RrdpResponse::NotFound { .. } => entry.not_found += 1,
        }
    }

    /// The cumulative build-side work of `dir`, with the retained-
    /// history gauges filled from the live log. `None` for an unknown
    /// directory.
    pub fn pubd_work(&self, dir: &RepoUri) -> Option<PubdWork> {
        let key = self.dir_key(dir);
        self.dirs.get(&key).map(|d| {
            let mut work = d.log.work;
            work.retained_deltas = d.log.deltas.len() as u64;
            work.retained_delta_bytes = d.log.delta_bytes;
            work
        })
    }

    /// Build-side work summed over every directory on this host.
    pub fn pubd_work_total(&self) -> PubdWork {
        self.dirs.values().fold(PubdWork::default(), |acc, d| {
            let mut work = d.log.work;
            work.retained_deltas = d.log.deltas.len() as u64;
            work.retained_delta_bytes = d.log.delta_bytes;
            acc.plus(work)
        })
    }

    /// The per-kind RRDP serve ledger of `dir` since the last reset.
    pub fn pubd_served(&self, dir: &RepoUri) -> PubdServed {
        let key = self.dir_key(dir);
        self.pubd_served.borrow().get(&key).copied().unwrap_or_default()
    }

    /// The per-kind RRDP serve ledger summed over this host.
    pub fn pubd_served_total(&self) -> PubdServed {
        self.pubd_served.borrow().values().fold(PubdServed::default(), |acc, s| acc.plus(*s))
    }

    /// Clears the per-kind RRDP serve ledger (e.g. between rounds).
    pub fn reset_pubd_served(&self) {
        self.pubd_served.borrow_mut().clear();
    }

    // -- RRDP serving state and misbehaviour knobs -------------------

    /// What this host's notification document says for `dir` right now:
    /// the pinned (frozen, stale) feed while a pin is active, the live
    /// log otherwise. `None` for unknown directories or a foreign host.
    pub(crate) fn rrdp_notification(&self, dir: &RepoUri) -> Option<NotifInfo> {
        if dir.host() != self.host {
            return None;
        }
        let entry = self.dirs.get(dir.path())?;
        Some(match &entry.pinned {
            Some(pin) => NotifInfo {
                session: pin.session,
                serial: pin.serial,
                content: pin.content,
                snapshot_serial: pin.snapshot.serial(),
                snapshot_hash: pin.snapshot.hash(),
                deltas: pin
                    .deltas
                    .iter()
                    .map(|d| DeltaRef { serial: d.serial, hash: d.hash })
                    .collect(),
            },
            None => NotifInfo {
                session: entry.log.session,
                serial: entry.log.serial,
                content: entry.digest,
                snapshot_serial: entry.log.snapshot.serial(),
                snapshot_hash: entry.log.snapshot.hash(),
                deltas: entry
                    .log
                    .deltas
                    .iter()
                    .map(|d| DeltaRef { serial: d.serial, hash: d.hash })
                    .collect(),
            },
        })
    }

    /// The snapshot document files of `dir` at `serial` — served from
    /// the cached materialised document, never re-derived from the
    /// at-rest files. `None` unless `serial` is exactly the serial the
    /// (pinned or live) document was materialised at.
    pub(crate) fn rrdp_snapshot(&self, dir: &RepoUri, serial: u64) -> Option<SessionSnapshot> {
        if dir.host() != self.host {
            return None;
        }
        let entry = self.dirs.get(dir.path())?;
        match &entry.pinned {
            Some(pin) if pin.snapshot.serial() == serial => {
                Some((pin.session, pin.snapshot.files()))
            }
            Some(_) => None,
            None if entry.log.snapshot.serial() == serial => {
                Some((entry.log.session, entry.log.snapshot.files()))
            }
            None => None,
        }
    }

    /// The delta document of `dir` reaching `serial`, if retained.
    pub(crate) fn rrdp_delta(&self, dir: &RepoUri, serial: u64) -> Option<(u64, Vec<DeltaChange>)> {
        if dir.host() != self.host {
            return None;
        }
        let entry = self.dirs.get(dir.path())?;
        match &entry.pinned {
            Some(pin) => pin
                .deltas
                .iter()
                .find(|d| d.serial == serial)
                .map(|d| (pin.session, d.changes.clone())),
            None => entry
                .log
                .deltas
                .iter()
                .find(|d| d.serial == serial)
                .map(|d| (entry.log.session, d.changes.clone())),
        }
    }

    pub(crate) fn rrdp_offline(&self) -> bool {
        self.rrdp_offline
    }

    pub(crate) fn rrdp_withhold_deltas(&self) -> bool {
        self.rrdp_withhold_deltas
    }

    /// The live publication-log `(session, serial)` of `dir`, ignoring
    /// any pin. `None` for an unknown directory.
    pub fn rrdp_position(&self, dir: &RepoUri) -> Option<(u64, u64)> {
        let key = self.dir_key(dir);
        self.dirs.get(&key).map(|d| (d.log.session, d.log.serial))
    }

    /// Misbehaviour knob: take the RRDP endpoint offline (every request
    /// answered NotFound) while rsync keeps serving — the crude form of
    /// the Stalloris downgrade.
    pub fn set_rrdp_offline(&mut self, offline: bool) {
        self.rrdp_offline = offline;
    }

    /// Misbehaviour knob: withhold delta documents the notification
    /// still advertises, forcing every behind client onto full
    /// snapshots (or, with a deadline, into walking away).
    pub fn set_rrdp_withhold_deltas(&mut self, withhold: bool) {
        self.rrdp_withhold_deltas = withhold;
    }

    /// Misbehaviour knob: hold every answer frame `delay` seconds
    /// before it enters the link. With a client-side deadline this
    /// starves the session; with a scheduler time budget it starves
    /// every *later* publication point in the walk — the slow-serve
    /// schedule-gaming attack. Zero restores honest serving.
    pub fn set_serve_delay(&mut self, delay: u64) {
        self.serve_delay = delay;
    }

    /// The currently configured serve delay, in simulated seconds.
    pub fn serve_delay(&self) -> u64 {
        self.serve_delay
    }

    /// Misbehaviour knob: freeze the RRDP feed of every directory at
    /// its current state. Later writes keep landing in the store (and
    /// rsync serves them), but RRDP replays the frozen notification,
    /// snapshot, and deltas — stale-data pinning, the Stalloris replay.
    pub fn rrdp_pin(&mut self) {
        for entry in self.dirs.values_mut() {
            entry.pinned = Some(PinnedFeed {
                session: entry.log.session,
                serial: entry.log.serial,
                content: entry.digest,
                snapshot: entry.log.snapshot.clone(),
                deltas: entry.log.deltas.iter().cloned().collect(),
            });
        }
    }

    /// Lifts [`rrdp_pin`](Repository::rrdp_pin): RRDP serves the live
    /// log again.
    pub fn rrdp_unpin(&mut self) {
        for entry in self.dirs.values_mut() {
            entry.pinned = None;
        }
    }

    /// Resets the RRDP session of `dir`: fresh session id, serial
    /// restarts at 1, delta history cleared. Clients must resync from
    /// the snapshot and downstream RTR caches must signal a cache
    /// reset. Returns false for an unknown directory.
    pub fn rrdp_reset_session(&mut self, dir: &RepoUri) -> bool {
        let key = self.dir_key(dir);
        if !self.dirs.contains_key(&key) {
            return false;
        }
        self.reset_session_entry(&key);
        true
    }

    /// Resets the RRDP session of every directory on this host.
    pub fn rrdp_reset_sessions(&mut self) {
        let keys: Vec<Vec<String>> = self.dirs.keys().cloned().collect();
        for key in keys {
            self.reset_session_entry(&key);
        }
    }

    /// Resets one directory's session and rematerialises its snapshot
    /// document at the restarted serial (a counted build: a session
    /// reset makes the server redo its snapshot work).
    fn reset_session_entry(&mut self, key: &[String]) {
        let entry = self.dirs.get_mut(key).expect("caller checked the key");
        entry.log.reset();
        let doc = entry.materialise_at_head();
        let mut events = Vec::new();
        entry.log.install_snapshot(doc, false, &mut events);
        let parts: Vec<&str> = key.iter().map(String::as_str).collect();
        let dir = RepoUri::new(&self.host, &parts);
        self.emit_pubd(&dir, &events);
    }

    /// Lists `(name, digest)` for every file in `dir`. Digests are the
    /// ones cached at write time — no bytes are re-hashed here.
    pub fn list(&self, dir: &RepoUri) -> Vec<(String, Digest)> {
        let key = self.dir_key(dir);
        self.dirs
            .get(&key)
            .map(|d| d.files.iter().map(|(n, f)| (n.clone(), f.digest)).collect())
            .unwrap_or_default()
    }

    /// The canonical complete-sync content digest of `dir`, served
    /// from the cache maintained at write time. An unknown directory
    /// reports the empty digest — the same key a complete sync of a
    /// reachable-but-absent publication point produces.
    pub fn content_digest(&self, dir: &RepoUri) -> Digest {
        let key = self.dir_key(dir);
        self.dirs.get(&key).map_or_else(empty_dir_digest, |d| d.digest)
    }

    /// Fetches the bytes of `dir/name`.
    pub fn fetch(&self, dir: &RepoUri, name: &str) -> Option<&[u8]> {
        let key = self.dir_key(dir);
        self.dirs.get(&key).and_then(|d| d.files.get(name)).map(|f| f.bytes.as_slice())
    }

    /// All directories on this host.
    pub fn directories(&self) -> impl Iterator<Item = RepoUri> + '_ {
        self.dirs.keys().map(|path| {
            let parts: Vec<&str> = path.iter().map(String::as_str).collect();
            RepoUri::new(&self.host, &parts)
        })
    }

    /// Total number of stored files.
    pub fn file_count(&self) -> usize {
        self.dirs.values().map(|d| d.files.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo() -> (Repository, RepoUri) {
        let repo = Repository::new("rpki.sprint.example", NodeId(0));
        let dir = RepoUri::new("rpki.sprint.example", &["repo"]);
        (repo, dir)
    }

    #[test]
    fn publish_overwrite_delete() {
        let (mut repo, dir) = repo();
        repo.publish_raw(&dir, "a.roa", vec![1, 2]);
        assert_eq!(repo.fetch(&dir, "a.roa"), Some(&[1u8, 2][..]));
        repo.publish_raw(&dir, "a.roa", vec![3]);
        assert_eq!(repo.fetch(&dir, "a.roa"), Some(&[3u8][..]));
        assert_eq!(repo.delete(&dir, "a.roa"), Some(vec![3]));
        assert_eq!(repo.fetch(&dir, "a.roa"), None);
        assert_eq!(repo.delete(&dir, "a.roa"), None);
    }

    #[test]
    fn list_reports_digests() {
        let (mut repo, dir) = repo();
        repo.publish_raw(&dir, "b.cer", vec![9]);
        let listing = repo.list(&dir);
        assert_eq!(listing.len(), 1);
        assert_eq!(listing[0].0, "b.cer");
        assert_eq!(listing[0].1, sha256(&[9]));
        // Unknown directory lists empty.
        let other = RepoUri::new("rpki.sprint.example", &["elsewhere"]);
        assert!(repo.list(&other).is_empty());
    }

    #[test]
    fn corruption_at_rest_changes_digest() {
        let (mut repo, dir) = repo();
        repo.publish_raw(&dir, "c.roa", vec![0xab, 0xcd]);
        let before = repo.list(&dir)[0].1;
        assert!(repo.corrupt_at_rest(&dir, "c.roa"));
        let after = repo.list(&dir)[0].1;
        assert_ne!(before, after);
        assert!(!repo.corrupt_at_rest(&dir, "missing.roa"));
    }

    #[test]
    fn content_digest_is_maintained_at_write_time() {
        let (mut repo, dir) = repo();
        // Unknown and empty directories share the canonical empty digest.
        let empty = repo.content_digest(&dir);
        repo.publish_raw(&dir, "a.roa", vec![1]);
        let one = repo.content_digest(&dir);
        assert_ne!(one, empty);
        assert!(repo.corrupt_at_rest(&dir, "a.roa"));
        let corrupted = repo.content_digest(&dir);
        assert_ne!(corrupted, one, "at-rest rot must change the directory key");
        repo.delete(&dir, "a.roa");
        assert_eq!(repo.content_digest(&dir), empty);
    }

    #[test]
    fn directories_iterate() {
        let (mut repo, dir) = repo();
        repo.publish_raw(&dir, "x", vec![]);
        let sub = dir.join("sub-ca");
        repo.publish_raw(&sub, "y", vec![1]);
        let dirs: Vec<String> = repo.directories().map(|d| d.to_string()).collect();
        assert_eq!(
            dirs,
            vec![
                "rsync://rpki.sprint.example/repo".to_owned(),
                "rsync://rpki.sprint.example/repo/sub-ca".to_owned()
            ]
        );
        assert_eq!(repo.file_count(), 2);
    }

    #[test]
    #[should_panic(expected = "is not on host")]
    fn foreign_directory_rejected() {
        let (mut repo, _) = repo();
        let foreign = RepoUri::new("rpki.arin.example", &["repo"]);
        repo.publish_raw(&foreign, "x", vec![]);
    }

    #[test]
    fn publication_log_advances_per_mutation() {
        let (mut repo, dir) = repo();
        assert_eq!(repo.rrdp_position(&dir), None);
        repo.publish_raw(&dir, "a.roa", vec![1]);
        let (session, serial) = repo.rrdp_position(&dir).unwrap();
        assert_eq!(serial, 1);
        repo.publish_raw(&dir, "b.cer", vec![2]);
        assert_eq!(repo.rrdp_position(&dir), Some((session, 2)));
        // Byte-identical overwrite: no new serial.
        repo.publish_raw(&dir, "a.roa", vec![1]);
        assert_eq!(repo.rrdp_position(&dir), Some((session, 2)));
        repo.delete(&dir, "a.roa");
        assert_eq!(repo.rrdp_position(&dir), Some((session, 3)));
        assert!(repo.corrupt_at_rest(&dir, "b.cer"));
        assert_eq!(repo.rrdp_position(&dir), Some((session, 4)));
    }

    #[test]
    fn session_reset_restarts_the_serial() {
        let (mut repo, dir) = repo();
        repo.publish_raw(&dir, "a.roa", vec![1]);
        repo.publish_raw(&dir, "b.cer", vec![2]);
        let (session, _) = repo.rrdp_position(&dir).unwrap();
        assert!(repo.rrdp_reset_session(&dir));
        let (new_session, serial) = repo.rrdp_position(&dir).unwrap();
        assert_ne!(new_session, session);
        assert_eq!(serial, 1);
        let other = RepoUri::new("rpki.sprint.example", &["missing"]);
        assert!(!repo.rrdp_reset_session(&other));
    }

    #[test]
    fn hosting_metadata() {
        let (mut repo, _) = repo();
        assert_eq!(repo.hosted_at(), None);
        let p: Prefix = "63.174.16.0/20".parse().unwrap();
        repo.set_hosted_at(p, Asn(17054));
        assert_eq!(repo.hosted_at(), Some((p, Asn(17054))));
    }
}
