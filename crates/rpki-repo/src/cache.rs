//! Incremental synchronisation.
//!
//! Real rsync transfers only what changed; relying parties poll every
//! publication point on a timer, so almost every session is a no-op.
//! [`SyncCache`] keeps the last-seen bytes per directory and
//! [`sync_dir_incremental`] uses the listing's digests to fetch only
//! files that are new or changed — unchanged files are served from the
//! cache without touching the network.
//!
//! Fidelity matters here for a paper-specific reason: a *stale
//! serving* repository (one that answers with old data) and a *lazy
//! client* (one that trusts its cache) are different failure modes, and
//! Side Effect 2's stealthy deletions are only visible to a client that
//! actually diffs listings. The incremental client still notices every
//! deletion (the file vanishes from the listing) and every overwrite
//! (the digest changes).

use std::collections::{BTreeMap, BTreeSet};

use netsim::{Network, NodeId};
use rpki_objects::RepoUri;
use rpkisim_crypto::{sha256, Digest};

use crate::client::{sync_dir, RepoRegistry, SyncOutcome};
use crate::proto::{RsyncRequest, RsyncResponse};
use rpki_objects::{Decode, Encode};

/// Last-seen publication-point contents, keyed by directory URI.
#[derive(Debug, Default)]
pub struct SyncCache {
    dirs: BTreeMap<String, BTreeMap<String, Vec<u8>>>,
}

impl SyncCache {
    /// An empty cache.
    pub fn new() -> Self {
        SyncCache::default()
    }

    /// The cached bytes for `dir/name`, if any.
    pub fn get(&self, dir: &RepoUri, name: &str) -> Option<&[u8]> {
        self.dirs.get(&dir.to_string())?.get(name).map(Vec::as_slice)
    }

    /// Digest of the cached copy of `dir/name`, if any.
    fn digest_of(&self, dir: &str, name: &str) -> Option<Digest> {
        self.dirs.get(dir)?.get(name).map(|b| sha256(b))
    }

    /// Records a full outcome (used by both sync flavours).
    fn store(&mut self, outcome: &SyncOutcome) {
        if !outcome.listed {
            return; // keep the previous copy; unreachable ≠ deleted
        }
        let entry = self.dirs.entry(outcome.dir.to_string()).or_default();
        entry.clear();
        for (name, bytes) in &outcome.files {
            entry.insert(name.clone(), bytes.clone());
        }
    }

    /// Number of cached files across all directories.
    pub fn file_count(&self) -> usize {
        self.dirs.values().map(BTreeMap::len).sum()
    }
}

/// Statistics of one incremental session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Files served from the local cache (no GET sent).
    pub reused: usize,
    /// Files fetched because they were new or changed.
    pub fetched: usize,
}

/// Like [`sync_dir`], but consults (and updates) `cache`, fetching only
/// files whose digest differs from the cached copy.
pub fn sync_dir_incremental(
    net: &mut Network,
    repos: &RepoRegistry,
    client: NodeId,
    dir: &RepoUri,
    cache: &mut SyncCache,
) -> (SyncOutcome, IncrementalStats) {
    let Some(server) = repos.node_of(dir.host()) else {
        return (SyncOutcome::unreachable(dir.clone()), IncrementalStats::default());
    };

    let mut outcome = SyncOutcome::unreachable(dir.clone());
    let mut stats = IncrementalStats::default();
    let dir_key = dir.to_string();
    let mut expected: BTreeMap<String, Digest> = BTreeMap::new();
    let mut received: BTreeSet<String> = BTreeSet::new();

    net.send(client, server, RsyncRequest::List { dir: dir.clone() }.to_bytes());
    while let Some(occ) = net.step() {
        let netsim::Occurrence::Delivered(delivery) = occ else { continue };
        if delivery.to == client {
            let Ok(resp) = RsyncResponse::from_bytes(&delivery.payload) else { continue };
            match resp {
                RsyncResponse::Listing { entries, .. } => {
                    outcome.listed = true;
                    for (name, digest) in entries {
                        if cache.digest_of(&dir_key, &name) == Some(digest) {
                            // Unchanged: reuse without a GET.
                            let bytes =
                                cache.get(dir, &name).expect("digest implies presence").to_vec();
                            outcome.files.insert(name, bytes);
                            stats.reused += 1;
                        } else {
                            expected.insert(name.clone(), digest);
                            net.send(
                                client,
                                server,
                                RsyncRequest::Get { dir: dir.clone(), name }.to_bytes(),
                            );
                        }
                    }
                }
                RsyncResponse::File { name, bytes, .. } => match expected.get(&name) {
                    Some(digest) if sha256(&bytes) == *digest => {
                        received.insert(name.clone());
                        stats.fetched += 1;
                        outcome.files.insert(name, bytes);
                    }
                    Some(_) => {
                        // Digest mismatch: corrupted in flight. Keep it
                        // out of the cache so the next session refetches.
                        received.insert(name.clone());
                        outcome.corrupted.push(name);
                    }
                    None => {}
                },
                RsyncResponse::NotFound { name, .. } => {
                    if name.is_none() {
                        outcome.listed = true;
                    }
                }
                // Digest probes run their own sessions; unsolicited here.
                RsyncResponse::DirDigest { .. } => {}
            }
        } else if let Some(repo) = repos.get(delivery.to) {
            let hold = repo.serve_delay();
            if let Ok(req) = RsyncRequest::from_bytes(&delivery.payload) {
                let resp = answer(repos, delivery.to, &req);
                net.send_after(delivery.to, delivery.from, resp.to_bytes(), hold);
            }
        }
    }

    outcome.missing = expected.into_keys().filter(|n| !received.contains(n)).collect();
    cache.store(&outcome);
    (outcome, stats)
}

/// Serves one request from at-rest state (shared with the full-sync
/// driver's internal logic; duplicated minimally to keep `sync_dir`'s
/// signature stable).
fn answer(repos: &RepoRegistry, node: NodeId, req: &RsyncRequest) -> RsyncResponse {
    let repo = repos.get(node);
    let resp = match (repo, req) {
        (Some(repo), RsyncRequest::List { dir }) => {
            let entries = repo.list(dir);
            if entries.is_empty() {
                RsyncResponse::NotFound { dir: dir.clone(), name: None }
            } else {
                RsyncResponse::Listing { dir: dir.clone(), entries }
            }
        }
        (Some(repo), RsyncRequest::Get { dir, name }) => match repo.fetch(dir, name) {
            Some(bytes) => {
                RsyncResponse::File { dir: dir.clone(), name: name.clone(), bytes: bytes.to_vec() }
            }
            None => RsyncResponse::NotFound { dir: dir.clone(), name: Some(name.clone()) },
        },
        (Some(repo), RsyncRequest::Digest { dir }) => {
            RsyncResponse::DirDigest { dir: dir.clone(), digest: repo.content_digest(dir) }
        }
        (None, RsyncRequest::List { dir }) | (None, RsyncRequest::Digest { dir }) => {
            RsyncResponse::NotFound { dir: dir.clone(), name: None }
        }
        (None, RsyncRequest::Get { dir, name }) => {
            RsyncResponse::NotFound { dir: dir.clone(), name: Some(name.clone()) }
        }
    };
    if let Some(repo) = repo {
        let (RsyncRequest::List { dir }
        | RsyncRequest::Get { dir, .. }
        | RsyncRequest::Digest { dir }) = req;
        repo.note_served(dir, resp.to_bytes().len());
    }
    resp
}

/// Convenience: a full (non-incremental) sync that also updates the
/// cache, so callers can mix flavours.
pub fn sync_dir_caching(
    net: &mut Network,
    repos: &RepoRegistry,
    client: NodeId,
    dir: &RepoUri,
    cache: &mut SyncCache,
) -> SyncOutcome {
    let outcome = sync_dir(net, repos, client, dir);
    cache.store(&outcome);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> (Network, RepoRegistry, NodeId, NodeId, RepoUri) {
        let mut net = Network::new(1);
        let client = net.add_node("relying-party");
        let mut repos = RepoRegistry::new();
        let server = repos.create(&mut net, "h");
        let dir = RepoUri::new("h", &["repo"]);
        let repo = repos.get_mut(server).unwrap();
        repo.publish_raw(&dir, "a.roa", vec![1, 2, 3]);
        repo.publish_raw(&dir, "b.cer", vec![4, 5]);
        (net, repos, client, server, dir)
    }

    #[test]
    fn first_sync_fetches_everything() {
        let (mut net, repos, client, _, dir) = world();
        let mut cache = SyncCache::new();
        let (out, stats) = sync_dir_incremental(&mut net, &repos, client, &dir, &mut cache);
        assert!(out.is_complete());
        assert_eq!(stats, IncrementalStats { reused: 0, fetched: 2 });
        assert_eq!(cache.file_count(), 2);
    }

    #[test]
    fn second_sync_reuses_everything() {
        let (mut net, repos, client, _, dir) = world();
        let mut cache = SyncCache::new();
        sync_dir_incremental(&mut net, &repos, client, &dir, &mut cache);
        let sent_before = net.stats().sent;
        let (out, stats) = sync_dir_incremental(&mut net, &repos, client, &dir, &mut cache);
        assert!(out.is_complete());
        assert_eq!(stats, IncrementalStats { reused: 2, fetched: 0 });
        // Only LIST + Listing crossed the wire.
        assert_eq!(net.stats().sent - sent_before, 2);
        assert_eq!(out.files["a.roa"], vec![1, 2, 3]);
    }

    #[test]
    fn changed_file_is_refetched() {
        let (mut net, mut repos, client, server, dir) = world();
        let mut cache = SyncCache::new();
        sync_dir_incremental(&mut net, &repos, client, &dir, &mut cache);
        repos.get_mut(server).unwrap().publish_raw(&dir, "a.roa", vec![9, 9]);
        let (out, stats) = sync_dir_incremental(&mut net, &repos, client, &dir, &mut cache);
        assert_eq!(stats, IncrementalStats { reused: 1, fetched: 1 });
        assert_eq!(out.files["a.roa"], vec![9, 9]);
        assert_eq!(out.files["b.cer"], vec![4, 5]);
    }

    #[test]
    fn deleted_file_disappears_from_outcome() {
        let (mut net, mut repos, client, server, dir) = world();
        let mut cache = SyncCache::new();
        sync_dir_incremental(&mut net, &repos, client, &dir, &mut cache);
        repos.get_mut(server).unwrap().delete(&dir, "a.roa");
        let (out, stats) = sync_dir_incremental(&mut net, &repos, client, &dir, &mut cache);
        assert!(out.is_complete());
        assert!(!out.files.contains_key("a.roa"), "stealthy deletion must be visible");
        assert_eq!(stats, IncrementalStats { reused: 1, fetched: 0 });
        assert_eq!(cache.file_count(), 1);
    }

    #[test]
    fn unreachable_sync_keeps_cache_intact() {
        let (mut net, repos, client, server, dir) = world();
        let mut cache = SyncCache::new();
        sync_dir_incremental(&mut net, &repos, client, &dir, &mut cache);
        net.faults.partition(client, server);
        let (out, stats) = sync_dir_incremental(&mut net, &repos, client, &dir, &mut cache);
        assert!(!out.listed);
        assert_eq!(stats, IncrementalStats::default());
        // The cache still has the last good copy (the caller decides
        // whether to use stale data — that is a policy question).
        assert_eq!(cache.file_count(), 2);
        assert_eq!(cache.get(&dir, "a.roa"), Some(&[1u8, 2, 3][..]));
    }

    #[test]
    fn corrupted_refetch_lands_in_outcome_for_validator_to_reject() {
        let (mut net, mut repos, client, server, dir) = world();
        let mut cache = SyncCache::new();
        sync_dir_incremental(&mut net, &repos, client, &dir, &mut cache);
        repos.get_mut(server).unwrap().publish_raw(&dir, "a.roa", vec![7, 7, 7]);
        // Corrupt the GET response (frame 2: listing is frame 1).
        net.faults.corrupt_nth(server, client, 2);
        let (out, _) = sync_dir_incremental(&mut net, &repos, client, &dir, &mut cache);
        let intact = out.files.get("a.roa").map(|b| b == &vec![7, 7, 7]).unwrap_or(false);
        assert!(!intact, "corrupted bytes must not masquerade as the update");
    }

    #[test]
    fn caching_full_sync_seeds_incremental() {
        let (mut net, repos, client, _, dir) = world();
        let mut cache = SyncCache::new();
        let out = sync_dir_caching(&mut net, &repos, client, &dir, &mut cache);
        assert!(out.is_complete());
        let (_, stats) = sync_dir_incremental(&mut net, &repos, client, &dir, &mut cache);
        assert_eq!(stats, IncrementalStats { reused: 2, fetched: 0 });
    }
}
