//! The synchronous sync driver.
//!
//! [`sync_dir`] performs one rsync-like session: list a directory, fetch
//! every file, and report exactly what arrived — intact bytes, corrupted
//! bytes, or nothing. It pumps the `netsim` event loop itself, answering
//! requests that land on repository nodes, so callers stay simple.
//! Every fetched file is verified against the listing's digest, so
//! corrupted-but-parseable frames are classified, not silently accepted.
//!
//! The outcome is deliberately *not* an `Err` when files are missing:
//! per the paper, partial data is the dangerous case (Side Effect 6),
//! and the relying party must decide what a gap means. Only total
//! unreachability is reported as such.
//!
//! [`sync_dir_with_policy`] wraps the single session in a retry driver:
//! bounded attempts, deterministic exponential backoff and per-attempt
//! deadlines, all paced on the simulated clock via [`Network::set_timer`]
//! (sans-IO: no wall time anywhere). Later attempts re-fetch only what
//! earlier ones failed to land, reusing verified bytes by digest.

use std::collections::{BTreeMap, HashMap};

use netsim::{Network, NodeId, Occurrence};
use rpki_objects::{Decode, Encode, RepoUri};
use rpkisim_crypto::{sha256, Digest};
use serde::Serialize;

use crate::proto::{RsyncRequest, RsyncResponse};
#[cfg(test)]
use crate::store::DirLoad;
use crate::store::Repository;

/// Timer token used for per-attempt deadlines.
const DEADLINE_TOKEN: u64 = 0x5359_4e43_dead_0001;
/// Timer token used for inter-attempt backoff.
const BACKOFF_TOKEN: u64 = 0x5359_4e43_dead_0002;

/// All repositories in the simulated world, keyed by serving node.
#[derive(Debug, Default)]
pub struct RepoRegistry {
    by_node: HashMap<NodeId, Repository>,
}

impl RepoRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        RepoRegistry::default()
    }

    /// Creates a repository host: registers a network node under
    /// `host` and a [`Repository`] served by it.
    pub fn create(&mut self, net: &mut Network, host: &str) -> NodeId {
        let node = net.add_node(host);
        self.by_node.insert(node, Repository::new(host, node));
        node
    }

    /// The repository served by `node`.
    pub fn get(&self, node: NodeId) -> Option<&Repository> {
        self.by_node.get(&node)
    }

    /// Mutable access to the repository served by `node`.
    pub fn get_mut(&mut self, node: NodeId) -> Option<&mut Repository> {
        self.by_node.get_mut(&node)
    }

    /// Finds the repository serving `host`.
    pub fn by_host(&self, host: &str) -> Option<&Repository> {
        self.by_node.values().find(|r| r.host() == host)
    }

    /// Mutable access by host name.
    pub fn by_host_mut(&mut self, host: &str) -> Option<&mut Repository> {
        self.by_node.values_mut().find(|r| r.host() == host)
    }

    /// The node serving `host`.
    pub fn node_of(&self, host: &str) -> Option<NodeId> {
        self.by_host(host).map(Repository::node)
    }

    /// Iterates all repositories.
    pub fn iter(&self) -> impl Iterator<Item = &Repository> {
        self.by_node.values()
    }

    /// Answers one decoded request against the stored data.
    fn answer(&self, node: NodeId, req: &RsyncRequest) -> RsyncResponse {
        let Some(repo) = self.by_node.get(&node) else {
            // A request landed on a non-repository node; treat as empty.
            return match req {
                RsyncRequest::List { dir } | RsyncRequest::Digest { dir } => {
                    RsyncResponse::NotFound { dir: dir.clone(), name: None }
                }
                RsyncRequest::Get { dir, name } => {
                    RsyncResponse::NotFound { dir: dir.clone(), name: Some(name.clone()) }
                }
            };
        };
        let resp = match req {
            RsyncRequest::List { dir } => {
                let entries = repo.list(dir);
                if entries.is_empty() {
                    RsyncResponse::NotFound { dir: dir.clone(), name: None }
                } else {
                    RsyncResponse::Listing { dir: dir.clone(), entries }
                }
            }
            RsyncRequest::Get { dir, name } => match repo.fetch(dir, name) {
                Some(bytes) => RsyncResponse::File {
                    dir: dir.clone(),
                    name: name.clone(),
                    bytes: bytes.to_vec(),
                },
                None => RsyncResponse::NotFound { dir: dir.clone(), name: Some(name.clone()) },
            },
            RsyncRequest::Digest { dir } => {
                RsyncResponse::DirDigest { dir: dir.clone(), digest: repo.content_digest(dir) }
            }
        };
        let (RsyncRequest::List { dir }
        | RsyncRequest::Get { dir, .. }
        | RsyncRequest::Digest { dir }) = req;
        repo.note_served(dir, resp.to_bytes().len());
        resp
    }
}

/// How fresh the data backing a [`SyncOutcome`] is.
///
/// Produced by live sessions (`Fresh`/`Absent`); the resilient source
/// layer substitutes `Stale` when serving a last-good snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Freshness {
    /// Fetched from the live repository this session.
    Fresh,
    /// Served from a last-good snapshot taken `age` seconds ago.
    Stale {
        /// Snapshot age in simulated seconds.
        age: u64,
    },
    /// No data available at all (unreachable and no usable snapshot).
    Absent,
}

/// What one directory sync produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncOutcome {
    /// The directory synced.
    pub dir: RepoUri,
    /// Files that arrived and matched the listing's digest.
    pub files: BTreeMap<String, Vec<u8>>,
    /// Files the listing promised but that never arrived as a frame
    /// (dropped in flight, or response frame corrupted beyond decoding).
    pub missing: Vec<String>,
    /// Files that arrived as parseable frames whose bytes failed the
    /// listing's digest check (in-flight payload corruption).
    pub corrupted: Vec<String>,
    /// Whether the listing itself was obtained. `false` means the
    /// repository was effectively unreachable this session.
    pub listed: bool,
    /// Provenance of the data in `files`.
    pub freshness: Freshness,
    /// The canonical content digest, precomputed by a producer that
    /// could derive it from listing digests (every file in `files` is
    /// digest-verified against the listing, so no bytes need
    /// re-hashing). [`SyncOutcome::content_digest`] falls back to
    /// computing from the bytes when this is `None`.
    pub content: Option<Digest>,
}

impl SyncOutcome {
    /// An empty outcome for an unreachable repository.
    pub fn unreachable(dir: RepoUri) -> Self {
        SyncOutcome {
            dir,
            files: BTreeMap::new(),
            missing: Vec::new(),
            corrupted: Vec::new(),
            listed: false,
            freshness: Freshness::Absent,
            content: None,
        }
    }

    /// A complete outcome fetched live this session.
    pub fn fresh(dir: RepoUri, files: BTreeMap<String, Vec<u8>>) -> Self {
        SyncOutcome {
            dir,
            files,
            missing: Vec::new(),
            corrupted: Vec::new(),
            listed: true,
            freshness: Freshness::Fresh,
            content: None,
        }
    }

    /// A complete outcome served from a snapshot taken `age` simulated
    /// seconds ago (the resilient source's stale fallback).
    pub fn stale(dir: RepoUri, files: BTreeMap<String, Vec<u8>>, age: u64) -> Self {
        SyncOutcome {
            dir,
            files,
            missing: Vec::new(),
            corrupted: Vec::new(),
            listed: true,
            freshness: Freshness::Stale { age },
            content: None,
        }
    }

    /// Whether every listed file arrived digest-intact (says nothing
    /// about signatures — that is the relying party's manifest check).
    pub fn is_complete(&self) -> bool {
        self.listed && self.missing.is_empty() && self.corrupted.is_empty()
    }

    /// A digest over everything this outcome says about the directory's
    /// content: the sorted `(name, file digest)` pairs plus the sorted
    /// missing and corrupted name lists. `None` when the listing was
    /// never obtained (an unreachable directory has no content to key).
    ///
    /// Two outcomes with equal content digests validate identically, so
    /// this is the cache key of the incremental validation engine. A
    /// complete outcome's digest equals the [`DirProbe::content_digest`]
    /// of a LIST-only probe of the same directory state.
    pub fn content_digest(&self) -> Option<Digest> {
        if !self.listed {
            return None;
        }
        if let Some(digest) = self.content {
            return Some(digest);
        }
        let entries: Vec<(&str, Digest)> =
            self.files.iter().map(|(n, b)| (n.as_str(), sha256(b))).collect();
        let mut missing: Vec<&str> = self.missing.iter().map(String::as_str).collect();
        missing.sort_unstable();
        let mut corrupted: Vec<&str> = self.corrupted.iter().map(String::as_str).collect();
        corrupted.sort_unstable();
        Some(dir_content_digest(&entries, &missing, &corrupted))
    }
}

/// Canonical digest over a directory's observed content: length-prefixed
/// names with their file digests, then the missing and corrupted name
/// lists, each section separated by a tag byte. All slices must be
/// sorted by name so the encoding is order-independent. The repository
/// store caches the complete-sync form of this per directory so digest
/// probes are answered without re-hashing.
pub(crate) fn dir_content_digest(
    entries: &[(&str, Digest)],
    missing: &[&str],
    corrupted: &[&str],
) -> Digest {
    let mut buf = Vec::new();
    for (name, digest) in entries {
        buf.extend_from_slice(&(name.len() as u64).to_be_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(digest.as_bytes());
    }
    buf.push(0x01);
    for name in missing {
        buf.extend_from_slice(&(name.len() as u64).to_be_bytes());
        buf.extend_from_slice(name.as_bytes());
    }
    buf.push(0x02);
    for name in corrupted {
        buf.extend_from_slice(&(name.len() as u64).to_be_bytes());
        buf.extend_from_slice(name.as_bytes());
    }
    sha256(&buf)
}

/// The result of a digest-only probe of one directory: the canonical
/// content digest the directory would have after a complete sync,
/// obtained without transferring the listing or any file.
///
/// A probe is the cheapest possible freshness check — one tiny frame
/// each way, like polling an RRDP notification file. Its digest
/// matches [`SyncOutcome::content_digest`] for a complete sync of the
/// same directory state, so an incremental validator can decide from
/// the probe alone whether a full fetch is needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirProbe {
    /// The directory probed.
    pub dir: RepoUri,
    /// Whether the server answered the probe.
    pub listed: bool,
    /// The server-reported canonical complete-sync content digest.
    pub digest: Option<Digest>,
}

impl DirProbe {
    /// An empty probe of an unreachable directory.
    pub fn unreachable(dir: RepoUri) -> Self {
        DirProbe { dir, listed: false, digest: None }
    }

    /// The content digest the directory would have after a complete
    /// sync. `None` when the probe was never answered.
    pub fn content_digest(&self) -> Option<Digest> {
        self.digest
    }
}

/// Runs one digest-only probe session of `dir` from `client`: a single
/// request/response exchange, no listing or file transfers. Honours an
/// optional per-probe deadline on the simulated clock, like a sync
/// attempt.
pub fn probe_dir(
    net: &mut Network,
    repos: &RepoRegistry,
    client: NodeId,
    dir: &RepoUri,
    deadline: Option<u64>,
) -> DirProbe {
    let rec = net.recorder();
    let mut probe = DirProbe::unreachable(dir.clone());
    let Some(server) = repos.node_of(dir.host()) else {
        return probe;
    };
    let mut outstanding: u64 = 1;
    let mut deadline_hit = false;
    if let Some(d) = deadline {
        net.set_timer(client, d, DEADLINE_TOKEN);
    }
    net.send(client, server, RsyncRequest::Digest { dir: dir.clone() }.to_bytes());
    while outstanding > 0 {
        let Some(occ) = net.step() else { break };
        match occ {
            Occurrence::Timer { node, token }
                if deadline.is_some() && node == client && token == DEADLINE_TOKEN =>
            {
                deadline_hit = true;
                net.flush_pair(client, server);
                break;
            }
            Occurrence::Timer { .. } => continue,
            Occurrence::Dropped { from, to, .. } => {
                if (from == client && to == server) || (from == server && to == client) {
                    outstanding = outstanding.saturating_sub(1);
                }
            }
            Occurrence::Delivered(delivery) => {
                if delivery.to == client {
                    if delivery.from != server {
                        continue;
                    }
                    outstanding = outstanding.saturating_sub(1);
                    let Ok(resp) = RsyncResponse::from_bytes(&delivery.payload) else {
                        continue;
                    };
                    match resp {
                        RsyncResponse::DirDigest { digest, .. } => {
                            probe.listed = true;
                            probe.digest = Some(digest);
                        }
                        RsyncResponse::NotFound { name, .. } => {
                            if name.is_none() {
                                probe.listed = true;
                            }
                        }
                        RsyncResponse::Listing { .. } | RsyncResponse::File { .. } => {}
                    }
                } else if let Some(repo) = repos.get(delivery.to) {
                    let hold = repo.serve_delay();
                    if let Ok(req) = RsyncRequest::from_bytes(&delivery.payload) {
                        let resp = repos.answer(delivery.to, &req);
                        net.send_after(delivery.to, delivery.from, resp.to_bytes(), hold);
                    } else if delivery.from == client && delivery.to == server {
                        outstanding = outstanding.saturating_sub(1);
                    }
                }
            }
        }
    }
    if deadline.is_some() && !deadline_hit {
        net.cancel_timer(client, DEADLINE_TOKEN);
    }
    if rec.is_enabled() {
        rec.count("repo.probes", 1);
        rec.event(net.now(), "repo", "probe")
            .str("host", dir.host())
            .bool("listed", probe.listed)
            .bool("answered", probe.digest.is_some())
            .emit();
    }
    probe
}

/// Retry/timeout policy for [`sync_dir_with_policy`].
///
/// All durations are simulated seconds; the driver never consults wall
/// time (DESIGN.md sans-IO rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SyncPolicy {
    /// Maximum sessions per directory (≥ 1; 0 is treated as 1).
    pub attempts: u32,
    /// Base backoff before the second attempt; doubles per retry
    /// (`backoff << (attempt - 1)`). Zero retries immediately.
    pub backoff: u64,
    /// Per-attempt deadline. A session still incomplete when the timer
    /// fires is torn down ([`Network::flush_pair`]); `None` waits
    /// indefinitely (a Stalloris-style slow serve then hangs the run).
    pub deadline: Option<u64>,
}

impl Default for SyncPolicy {
    fn default() -> Self {
        SyncPolicy { attempts: 3, backoff: 30, deadline: Some(300) }
    }
}

impl SyncPolicy {
    /// One attempt, no backoff, no deadline: byte-for-byte the bare
    /// [`sync_dir`] behaviour, for ablation baselines.
    pub fn single() -> Self {
        SyncPolicy { attempts: 1, backoff: 0, deadline: None }
    }
}

/// The fate of one listed file across a whole retry sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FileFate {
    /// Arrived and matched its listing digest.
    Intact,
    /// Never arrived as a frame.
    Missing,
    /// Arrived with bytes failing the digest check.
    Corrupted,
}

/// Timings and results of one sync attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct AttemptReport {
    /// Simulated clock when the attempt started.
    pub started_at: u64,
    /// Simulated clock when the attempt finished or was aborted.
    pub finished_at: u64,
    /// Whether the listing was obtained this attempt.
    pub listed: bool,
    /// Digest-intact files held after this attempt (including reuse).
    pub intact: usize,
    /// Listed files still missing after this attempt.
    pub missing: usize,
    /// Listed files received corrupted this attempt.
    pub corrupted: usize,
    /// Whether the per-attempt deadline aborted the session.
    pub deadline_hit: bool,
}

/// Everything a retry sequence did, for diagnostics and experiments.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct SyncReport {
    /// One entry per session attempted, in order.
    pub attempts: Vec<AttemptReport>,
    /// Final per-file classification from the listing's perspective.
    pub fates: BTreeMap<String, FileFate>,
    /// Whether the sequence ended with a complete, digest-intact sync.
    pub complete: bool,
}

impl SyncReport {
    /// Whether the sequence ended with a complete, digest-intact sync
    /// (accessor twin of [`SyncOutcome::is_complete`]).
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Number of sessions attempted.
    pub fn attempt_count(&self) -> usize {
        self.attempts.len()
    }
}

/// One session's result plus whether the deadline killed it.
struct SessionResult {
    outcome: SyncOutcome,
    deadline_hit: bool,
}

/// Runs exactly one list/fetch session against `server`, accounting
/// for every outstanding exchange so it terminates without draining
/// unrelated events. `have` supplies already-verified bytes from prior
/// attempts: files whose listing digest matches are reused without a
/// GET (rsync-style delta across retries).
fn run_session(
    net: &mut Network,
    repos: &RepoRegistry,
    client: NodeId,
    server: NodeId,
    dir: &RepoUri,
    deadline: Option<u64>,
    have: &BTreeMap<String, Vec<u8>>,
) -> SessionResult {
    let rec = net.recorder();
    let mut outcome = SyncOutcome::unreachable(dir.clone());
    // Digests promised by the listing; the ground truth for
    // verification and for the missing/corrupted diff.
    let mut digests: BTreeMap<String, Digest> = BTreeMap::new();
    // Request/response exchanges in flight. The session ends when every
    // exchange is resolved: a response (parseable or not) arrived, or
    // either direction's frame was dropped.
    let mut outstanding: u64 = 1; // the LIST
    let mut deadline_hit = false;

    if let Some(d) = deadline {
        net.set_timer(client, d, DEADLINE_TOKEN);
    }
    net.send(client, server, RsyncRequest::List { dir: dir.clone() }.to_bytes());

    while outstanding > 0 {
        let Some(occ) = net.step() else { break };
        match occ {
            Occurrence::Timer { node, token }
                if deadline.is_some() && node == client && token == DEADLINE_TOKEN =>
            {
                // Deadline: tear the session down. Frames still on the
                // wire are flushed so they cannot leak into the next
                // attempt.
                deadline_hit = true;
                net.flush_pair(client, server);
                break;
            }
            Occurrence::Timer { .. } => continue,
            Occurrence::Dropped { from, to, .. } => {
                if (from == client && to == server) || (from == server && to == client) {
                    outstanding = outstanding.saturating_sub(1);
                }
            }
            Occurrence::Delivered(delivery) => {
                if delivery.to == client {
                    if delivery.from != server {
                        continue; // not part of this session
                    }
                    outstanding = outstanding.saturating_sub(1);
                    let Ok(resp) = RsyncResponse::from_bytes(&delivery.payload) else {
                        // Frame corrupted beyond parsing: a torn
                        // exchange. Which file it carried is unknown;
                        // the listing diff reports it missing.
                        continue;
                    };
                    match resp {
                        RsyncResponse::Listing { entries, .. } => {
                            outcome.listed = true;
                            for (name, digest) in entries {
                                let reusable =
                                    have.get(&name).is_some_and(|bytes| sha256(bytes) == digest);
                                digests.insert(name.clone(), digest);
                                if reusable {
                                    outcome.files.insert(name.clone(), have[&name].clone());
                                } else {
                                    outstanding += 1;
                                    net.send(
                                        client,
                                        server,
                                        RsyncRequest::Get { dir: dir.clone(), name }.to_bytes(),
                                    );
                                }
                            }
                        }
                        RsyncResponse::File { name, bytes, .. } => {
                            match digests.get(&name) {
                                Some(digest) if sha256(&bytes) == *digest => {
                                    outcome.files.insert(name, bytes);
                                }
                                Some(_) => {
                                    if rec.is_enabled() {
                                        rec.count("repo.digest_failures", 1);
                                        rec.event(net.now(), "repo", "digest_fail")
                                            .str("host", dir.host())
                                            .str("file", &name)
                                            .emit();
                                    }
                                    outcome.corrupted.push(name);
                                }
                                // A file the listing never promised:
                                // ignore (unsolicited).
                                None => {}
                            }
                        }
                        RsyncResponse::NotFound { name, .. } => {
                            if name.is_none() {
                                // Directory absent: an empty (but
                                // reachable) publication point.
                                outcome.listed = true;
                            }
                        }
                        // Digest probes happen in their own sessions;
                        // a stray one here is unsolicited.
                        RsyncResponse::DirDigest { .. } => {}
                    }
                } else if let Some(repo) = repos.get(delivery.to) {
                    // A request frame for a repository.
                    let hold = repo.serve_delay();
                    if let Ok(req) = RsyncRequest::from_bytes(&delivery.payload) {
                        let resp = repos.answer(delivery.to, &req);
                        net.send_after(delivery.to, delivery.from, resp.to_bytes(), hold);
                    } else if delivery.from == client && delivery.to == server {
                        // Our request arrived unparseable: the server
                        // stays silent, so the exchange is dead.
                        outstanding = outstanding.saturating_sub(1);
                    }
                }
            }
        }
    }

    if deadline.is_some() && !deadline_hit {
        net.cancel_timer(client, DEADLINE_TOKEN);
    }
    outcome.missing = digests
        .keys()
        .filter(|n| !outcome.files.contains_key(*n) && !outcome.corrupted.contains(n))
        .cloned()
        .collect();
    outcome.freshness = if outcome.listed { Freshness::Fresh } else { Freshness::Absent };
    if outcome.listed {
        // Every file in the outcome is digest-verified against the
        // listing, so the canonical content digest derives from the
        // listing's digests — no bytes are re-hashed.
        let entries: Vec<(&str, Digest)> =
            outcome.files.keys().filter_map(|n| digests.get(n).map(|d| (n.as_str(), *d))).collect();
        let missing: Vec<&str> = outcome.missing.iter().map(String::as_str).collect();
        let mut corrupted: Vec<&str> = outcome.corrupted.iter().map(String::as_str).collect();
        corrupted.sort_unstable();
        outcome.content = Some(dir_content_digest(&entries, &missing, &corrupted));
    }
    SessionResult { outcome, deadline_hit }
}

/// Runs one sync session of `dir` from the relying party's node
/// `client` against the world's repositories.
///
/// Any message addressed to a repository node is answered from the
/// registry (so concurrent scenarios with multiple repositories work),
/// and messages to other nodes are dropped on the floor (no one is
/// listening). Fetched bytes are verified against the listing's
/// digests; mismatches land in [`SyncOutcome::corrupted`].
pub fn sync_dir(
    net: &mut Network,
    repos: &RepoRegistry,
    client: NodeId,
    dir: &RepoUri,
) -> SyncOutcome {
    let Some(server) = repos.node_of(dir.host()) else {
        // Host not in this world at all: like DNS failure.
        return SyncOutcome::unreachable(dir.clone());
    };
    run_session(net, repos, client, server, dir, None, &BTreeMap::new()).outcome
}

/// Runs up to `policy.attempts` sessions of `dir`, with deterministic
/// exponential backoff between attempts and a per-attempt deadline,
/// all on the simulated clock. Later attempts reuse digest-verified
/// bytes from earlier ones, so a retry only refetches what failed.
///
/// Returns the best outcome seen (a listed outcome is never displaced
/// by an unreachable one) plus a [`SyncReport`] of the whole sequence.
pub fn sync_dir_with_policy(
    net: &mut Network,
    repos: &RepoRegistry,
    client: NodeId,
    dir: &RepoUri,
    policy: &SyncPolicy,
) -> (SyncOutcome, SyncReport) {
    let rec = net.recorder();
    let mut report = SyncReport::default();
    let Some(server) = repos.node_of(dir.host()) else {
        return (SyncOutcome::unreachable(dir.clone()), report);
    };
    let attempts = policy.attempts.max(1);
    let mut have: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    let mut best: Option<SyncOutcome> = None;
    for attempt in 1..=attempts {
        let started_at = net.now();
        let SessionResult { outcome, deadline_hit } =
            run_session(net, repos, client, server, dir, policy.deadline, &have);
        if rec.is_enabled() {
            rec.count("repo.attempts", 1);
            rec.observe("repo.attempt_secs", net.now() - started_at);
            rec.event(net.now(), "repo", "attempt")
                .str("host", dir.host())
                .u64("attempt", u64::from(attempt))
                .bool("listed", outcome.listed)
                .u64("intact", outcome.files.len() as u64)
                .u64("missing", outcome.missing.len() as u64)
                .u64("corrupted", outcome.corrupted.len() as u64)
                .bool("deadline_hit", deadline_hit)
                .emit();
        }
        report.attempts.push(AttemptReport {
            started_at,
            finished_at: net.now(),
            listed: outcome.listed,
            intact: outcome.files.len(),
            missing: outcome.missing.len(),
            corrupted: outcome.corrupted.len(),
            deadline_hit,
        });
        have.extend(outcome.files.clone());
        let done = outcome.is_complete();
        // A listed outcome always beats an unreachable one; among
        // listed outcomes the latest wins (it reuses all prior files).
        if best.as_ref().is_none_or(|b| !b.listed || outcome.listed) {
            best = Some(outcome);
        }
        if done {
            break;
        }
        if attempt < attempts && policy.backoff > 0 {
            let delay = policy.backoff << (attempt - 1);
            if rec.is_enabled() {
                rec.count("repo.backoffs", 1);
                rec.event(net.now(), "repo", "backoff")
                    .str("host", dir.host())
                    .u64("attempt", u64::from(attempt))
                    .u64("delay", delay)
                    .emit();
            }
            net.set_timer(client, delay, BACKOFF_TOKEN);
            while let Some(occ) = net.step() {
                if matches!(occ, Occurrence::Timer { node, token }
                    if node == client && token == BACKOFF_TOKEN)
                {
                    break;
                }
            }
        }
    }
    let outcome = best.expect("at least one attempt runs");
    for name in outcome.files.keys() {
        report.fates.insert(name.clone(), FileFate::Intact);
    }
    for name in &outcome.missing {
        report.fates.insert(name.clone(), FileFate::Missing);
    }
    for name in &outcome.corrupted {
        report.fates.insert(name.clone(), FileFate::Corrupted);
    }
    report.complete = outcome.is_complete();
    (outcome, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Network;

    fn world() -> (Network, RepoRegistry, NodeId, NodeId, RepoUri) {
        let mut net = Network::new(1);
        let client = net.add_node("relying-party");
        let mut repos = RepoRegistry::new();
        let server = repos.create(&mut net, "rpki.sprint.example");
        let dir = RepoUri::new("rpki.sprint.example", &["repo"]);
        let repo = repos.get_mut(server).unwrap();
        repo.publish_raw(&dir, "a.roa", vec![1, 2, 3]);
        repo.publish_raw(&dir, "b.cer", vec![4, 5]);
        (net, repos, client, server, dir)
    }

    #[test]
    fn clean_sync_fetches_everything() {
        let (mut net, repos, client, _, dir) = world();
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(out.listed);
        assert!(out.is_complete());
        assert_eq!(out.files.len(), 2);
        assert_eq!(out.files["a.roa"], vec![1, 2, 3]);
        assert_eq!(out.files["b.cer"], vec![4, 5]);
    }

    #[test]
    fn served_load_counts_frames_and_bytes_per_dir() {
        let (mut net, repos, client, server, dir) = world();
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(out.is_complete());
        // One listing + two file responses.
        let repo = repos.get(server).unwrap();
        let per_dir = repo.served_load();
        assert_eq!(per_dir.len(), 1);
        assert_eq!(per_dir[0].0, dir);
        assert_eq!(per_dir[0].1.frames, 3);
        assert!(per_dir[0].1.bytes > 5, "bytes: {}", per_dir[0].1.bytes);
        assert_eq!(repo.served_total(), per_dir[0].1);
        // Accounting is per sync: a second RP doubles it.
        let rp2 = net.add_node("relying-party-2");
        sync_dir(&mut net, &repos, rp2, &dir);
        assert_eq!(repos.get(server).unwrap().served_total().frames, 6);
        repos.get(server).unwrap().reset_served_load();
        assert_eq!(repos.get(server).unwrap().served_total(), DirLoad::default());
    }

    #[test]
    fn partition_makes_repo_unreachable() {
        let (mut net, repos, client, server, dir) = world();
        net.faults.partition(client, server);
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(!out.listed);
        assert!(out.files.is_empty());
    }

    #[test]
    fn dropped_listing_means_unreachable() {
        let (mut net, repos, client, server, dir) = world();
        // Server→client frame #1 is the listing.
        net.faults.drop_nth(server, client, 1);
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(!out.listed);
        assert!(out.files.is_empty());
    }

    #[test]
    fn dropped_file_response_reported_missing() {
        let (mut net, repos, client, server, dir) = world();
        // Server→client frames: #1 listing, #2 first file (a.roa in
        // BTreeMap order), #3 second file.
        net.faults.drop_nth(server, client, 2);
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(out.listed);
        assert!(!out.is_complete());
        assert_eq!(out.missing, vec!["a.roa".to_owned()]);
        assert_eq!(out.files.len(), 1);
        assert!(out.files.contains_key("b.cer"));
    }

    #[test]
    fn dropped_get_request_reported_missing() {
        let (mut net, repos, client, server, dir) = world();
        // Client→server frames: #1 LIST, #2 GET a.roa, #3 GET b.cer.
        net.faults.drop_nth(client, server, 3);
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(out.listed);
        assert_eq!(out.missing, vec!["b.cer".to_owned()]);
        assert!(out.files.contains_key("a.roa"));
    }

    #[test]
    fn corrupted_file_bytes_are_delivered_as_is() {
        let (mut net, repos, client, server, dir) = world();
        // Corrupt the first *file* frame (frame 2; the listing is
        // frame 1) deep in the payload: the File frame ends with the
        // length-prefixed content, so a clamped large offset flips a
        // content byte and the frame still parses. The digest check
        // must classify it instead of accepting the bad bytes.
        net.faults.corrupt_nth_at(server, client, 2, usize::MAX);
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(out.listed);
        assert_eq!(out.corrupted, vec!["a.roa".to_owned()], "digest mismatch must be classified");
        assert!(!out.files.contains_key("a.roa"), "corrupted bytes must not enter files");
        assert!(out.missing.is_empty(), "corrupted is distinct from missing");
        assert!(!out.is_complete());
        assert!(out.files.contains_key("b.cer"));
    }

    #[test]
    fn torn_file_frame_is_missing_not_corrupted() {
        let (mut net, repos, client, server, dir) = world();
        // Byte 0 is the frame tag: the frame fails to decode entirely.
        net.faults.corrupt_nth(server, client, 2);
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(out.listed);
        assert_eq!(out.missing, vec!["a.roa".to_owned()]);
        assert!(out.corrupted.is_empty());
    }

    #[test]
    fn corrupted_listing_means_unreachable() {
        let (mut net, repos, client, server, dir) = world();
        net.faults.corrupt_nth(server, client, 1);
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(!out.listed);
    }

    #[test]
    fn missing_host_is_unreachable() {
        let (mut net, repos, client, _, _) = world();
        let dir = RepoUri::new("rpki.nowhere.example", &["repo"]);
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(!out.listed);
    }

    #[test]
    fn empty_directory_is_reachable_but_empty() {
        let (mut net, repos, client, _, _) = world();
        let dir = RepoUri::new("rpki.sprint.example", &["empty-dir"]);
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(out.listed);
        assert!(out.files.is_empty());
        assert!(out.is_complete());
    }

    #[test]
    fn registry_lookup_by_host() {
        let (_, repos, _, server, _) = world();
        assert_eq!(repos.node_of("rpki.sprint.example"), Some(server));
        assert_eq!(repos.node_of("rpki.other.example"), None);
        assert_eq!(repos.by_host("rpki.sprint.example").unwrap().node(), server);
    }

    #[test]
    fn get_mut_returns_none_for_unknown_node() {
        let (mut net, mut repos, _, server, _) = world();
        let stranger = net.add_node("not-a-repo");
        assert!(repos.get_mut(server).is_some());
        assert!(repos.get_mut(stranger).is_none());
    }

    #[test]
    fn retry_refetches_only_what_failed() {
        let (mut net, repos, client, server, dir) = world();
        // Attempt 1 loses the a.roa response; attempt 2 must reuse the
        // verified b.cer and send a single GET for a.roa.
        net.faults.drop_nth(server, client, 2);
        let policy = SyncPolicy { attempts: 2, backoff: 30, deadline: Some(300) };
        let (out, report) = sync_dir_with_policy(&mut net, &repos, client, &dir, &policy);
        assert!(out.is_complete());
        assert_eq!(out.files["a.roa"], vec![1, 2, 3]);
        assert_eq!(report.attempts.len(), 2);
        assert!(!report.attempts[0].listed || report.attempts[0].missing == 1);
        assert_eq!(report.attempts[1].intact, 2);
        assert!(report.complete);
        assert_eq!(report.fates["a.roa"], FileFate::Intact);
        // Attempt 2 sent LIST + one GET (b.cer reused): 2 client frames.
        let gets_attempt2 = report.attempts[1].intact - 1; // reused files need no GET
        assert_eq!(gets_attempt2, 1);
    }

    #[test]
    fn successful_first_attempt_skips_backoff() {
        let (mut net, repos, client, _, dir) = world();
        let policy = SyncPolicy::default();
        let (out, report) = sync_dir_with_policy(&mut net, &repos, client, &dir, &policy);
        assert!(out.is_complete());
        assert_eq!(report.attempts.len(), 1);
        assert!(!report.attempts[0].deadline_hit);
        // No deadline or backoff timers left behind.
        assert!(net.is_idle());
    }

    #[test]
    fn backoff_doubles_deterministically() {
        let (mut net, repos, client, server, dir) = world();
        net.faults.partition(client, server);
        let policy = SyncPolicy { attempts: 3, backoff: 30, deadline: Some(300) };
        let (out, report) = sync_dir_with_policy(&mut net, &repos, client, &dir, &policy);
        assert!(!out.listed);
        assert_eq!(report.attempts.len(), 3);
        // Gap between attempts: 30 then 60 simulated seconds.
        let gap1 = report.attempts[1].started_at - report.attempts[0].finished_at;
        let gap2 = report.attempts[2].started_at - report.attempts[1].finished_at;
        assert_eq!(gap1, 30);
        assert_eq!(gap2, 60);
    }

    #[test]
    fn deadline_aborts_stalled_session() {
        let (mut net, repos, client, server, dir) = world();
        // A Stalloris-style slow serve: responses held for an hour.
        net.faults.set_stall(server, client, 3600);
        let policy = SyncPolicy { attempts: 1, backoff: 0, deadline: Some(300) };
        let start = net.now();
        let (out, report) = sync_dir_with_policy(&mut net, &repos, client, &dir, &policy);
        assert!(!out.listed);
        assert!(report.attempts[0].deadline_hit);
        // The client walked away at the deadline, not after the stall.
        assert_eq!(net.now() - start, 300);
        // The torn session's in-flight frames were flushed.
        assert!(net.is_idle());
    }

    #[test]
    fn listed_outcome_survives_later_unreachable_attempt() {
        let (mut net, repos, client, server, dir) = world();
        // Attempt 1: partial (one file lost). Attempts 2–3: repository
        // down entirely. The partial listing must win over "absent".
        net.faults.drop_nth(server, client, 2);
        net.faults.drop_nth(server, client, 3 + 1); // attempt 2's listing
        net.faults.drop_nth(server, client, 3 + 2); // attempt 3's listing
        let policy = SyncPolicy { attempts: 3, backoff: 10, deadline: Some(300) };
        let (out, _) = sync_dir_with_policy(&mut net, &repos, client, &dir, &policy);
        assert!(out.listed, "a listed outcome must not be displaced by a later failure");
        assert!(out.files.contains_key("b.cer"));
    }

    #[test]
    fn node_down_behaves_like_partition_for_sync() {
        let run = |down: bool| {
            let (mut net, repos, client, server, dir) = world();
            if down {
                net.faults.set_down(server, true);
            } else {
                net.faults.partition(client, server);
            }
            sync_dir(&mut net, &repos, client, &dir)
        };
        let downed = run(true);
        let partitioned = run(false);
        assert!(!downed.listed && downed.files.is_empty());
        assert_eq!(downed, partitioned, "down and partitioned must be indistinguishable");
    }

    #[test]
    fn probabilistic_corruption_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut net = Network::new(seed);
            let client = net.add_node("relying-party");
            let mut repos = RepoRegistry::new();
            let server = repos.create(&mut net, "h");
            let dir = RepoUri::new("h", &["repo"]);
            for i in 0..16u8 {
                repos.get_mut(server).unwrap().publish_raw(&dir, &format!("f{i:02}"), vec![i; 8]);
            }
            net.faults.set_corruption(server, client, 0.4);
            let out = sync_dir(&mut net, &repos, client, &dir);
            (out.listed, out.files.keys().cloned().collect::<Vec<_>>(), out.missing, out.corrupted)
        };
        let outcomes: Vec<_> = (0..16).map(run).collect();
        let replay: Vec<_> = (0..16).map(run).collect();
        assert_eq!(outcomes, replay, "same seed must reproduce the same fault pattern");
        assert!(outcomes.windows(2).any(|w| w[0] != w[1]), "seeds must diverge");
        // At a 40% corruption rate some session must both obtain the
        // listing and lose files to torn frames or digest mismatches.
        assert!(outcomes.iter().any(|(listed, files, missing, corrupted)| *listed
            && files.len() < 16
            && (!missing.is_empty() || !corrupted.is_empty())));
    }

    #[test]
    fn probe_digest_matches_complete_sync_digest() {
        let (mut net, repos, client, _, dir) = world();
        let sent_before = net.stats().sent;
        let probe = probe_dir(&mut net, &repos, client, &dir, None);
        assert!(probe.listed);
        // One request frame and one response frame: the whole probe.
        assert_eq!(net.stats().sent - sent_before, 2);
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(out.is_complete());
        assert_eq!(probe.content_digest(), out.content_digest());
        assert!(probe.content_digest().is_some());
    }

    #[test]
    fn probe_of_empty_directory_matches_its_sync_digest() {
        let (mut net, repos, client, _, _) = world();
        let dir = RepoUri::new("rpki.sprint.example", &["empty-dir"]);
        let probe = probe_dir(&mut net, &repos, client, &dir, None);
        assert!(probe.listed);
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(out.is_complete());
        assert_eq!(probe.content_digest(), out.content_digest());
    }

    #[test]
    fn probe_of_unreachable_directory_has_no_digest() {
        let (mut net, repos, client, server, dir) = world();
        net.faults.partition(client, server);
        let probe = probe_dir(&mut net, &repos, client, &dir, None);
        assert!(!probe.listed);
        assert_eq!(probe.content_digest(), None);
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert_eq!(out.content_digest(), None);
    }

    #[test]
    fn content_digest_tracks_content_and_gaps() {
        let (mut net, mut repos, client, server, dir) = world();
        let complete = sync_dir(&mut net, &repos, client, &dir).content_digest().unwrap();
        // A partial sync (one file dropped) must key differently.
        net.faults.drop_nth(server, client, 2);
        let partial = sync_dir(&mut net, &repos, client, &dir);
        assert!(!partial.is_complete());
        assert_ne!(partial.content_digest(), Some(complete));
        // Changed bytes must key differently too.
        repos.get_mut(server).unwrap().publish_raw(&dir, "a.roa", vec![9, 9, 9]);
        let changed = sync_dir(&mut net, &repos, client, &dir).content_digest().unwrap();
        assert_ne!(changed, complete);
    }

    #[test]
    fn probe_honours_deadline() {
        let (mut net, repos, client, server, dir) = world();
        net.faults.set_stall(server, client, 3600);
        let start = net.now();
        let probe = probe_dir(&mut net, &repos, client, &dir, Some(300));
        assert!(!probe.listed);
        assert_eq!(net.now() - start, 300);
        assert!(net.is_idle());
    }

    #[test]
    fn probabilistic_loss_rate_is_seeded_for_sync() {
        let run = |seed: u64| {
            let mut net = Network::new(seed);
            let client = net.add_node("relying-party");
            let mut repos = RepoRegistry::new();
            let server = repos.create(&mut net, "h");
            let dir = RepoUri::new("h", &["repo"]);
            for i in 0..16u8 {
                repos.get_mut(server).unwrap().publish_raw(&dir, &format!("f{i:02}"), vec![i]);
            }
            net.faults.set_loss(server, client, 0.5);
            let out = sync_dir(&mut net, &repos, client, &dir);
            (out.listed, out.missing)
        };
        assert_eq!(run(3), run(3));
    }
}
