//! The synchronous sync driver.
//!
//! [`sync_dir`] performs one rsync-like session: list a directory, fetch
//! every file, and report exactly what arrived — intact bytes, corrupted
//! bytes, or nothing. It pumps the `netsim` event loop itself, answering
//! requests that land on repository nodes, so callers stay simple.
//!
//! The outcome is deliberately *not* an `Err` when files are missing:
//! per the paper, partial data is the dangerous case (Side Effect 6),
//! and the relying party must decide what a gap means. Only total
//! unreachability is reported as such.

use std::collections::{BTreeMap, HashMap};

use netsim::{Network, NodeId, Occurrence};
use rpki_objects::{Decode, Encode, RepoUri};

use crate::proto::{RsyncRequest, RsyncResponse};
use crate::store::Repository;

/// All repositories in the simulated world, keyed by serving node.
#[derive(Debug, Default)]
pub struct RepoRegistry {
    by_node: HashMap<NodeId, Repository>,
}

impl RepoRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        RepoRegistry::default()
    }

    /// Creates a repository host: registers a network node under
    /// `host` and a [`Repository`] served by it.
    pub fn create(&mut self, net: &mut Network, host: &str) -> NodeId {
        let node = net.add_node(host);
        self.by_node.insert(node, Repository::new(host, node));
        node
    }

    /// The repository served by `node`.
    pub fn get(&self, node: NodeId) -> Option<&Repository> {
        self.by_node.get(&node)
    }

    /// Mutable access to the repository served by `node`.
    pub fn get_mut(&mut self, node: NodeId) -> &mut Repository {
        self.by_node.get_mut(&node).expect("no repository at node")
    }

    /// Finds the repository serving `host`.
    pub fn by_host(&self, host: &str) -> Option<&Repository> {
        self.by_node.values().find(|r| r.host() == host)
    }

    /// Mutable access by host name.
    pub fn by_host_mut(&mut self, host: &str) -> Option<&mut Repository> {
        self.by_node.values_mut().find(|r| r.host() == host)
    }

    /// The node serving `host`.
    pub fn node_of(&self, host: &str) -> Option<NodeId> {
        self.by_host(host).map(Repository::node)
    }

    /// Iterates all repositories.
    pub fn iter(&self) -> impl Iterator<Item = &Repository> {
        self.by_node.values()
    }

    /// Answers one decoded request against the stored data.
    fn answer(&self, node: NodeId, req: &RsyncRequest) -> RsyncResponse {
        let Some(repo) = self.by_node.get(&node) else {
            // A request landed on a non-repository node; treat as empty.
            return match req {
                RsyncRequest::List { dir } => {
                    RsyncResponse::NotFound { dir: dir.clone(), name: None }
                }
                RsyncRequest::Get { dir, name } => {
                    RsyncResponse::NotFound { dir: dir.clone(), name: Some(name.clone()) }
                }
            };
        };
        match req {
            RsyncRequest::List { dir } => {
                let entries = repo.list(dir);
                if entries.is_empty() {
                    RsyncResponse::NotFound { dir: dir.clone(), name: None }
                } else {
                    RsyncResponse::Listing { dir: dir.clone(), entries }
                }
            }
            RsyncRequest::Get { dir, name } => match repo.fetch(dir, name) {
                Some(bytes) => RsyncResponse::File {
                    dir: dir.clone(),
                    name: name.clone(),
                    bytes: bytes.to_vec(),
                },
                None => RsyncResponse::NotFound { dir: dir.clone(), name: Some(name.clone()) },
            },
        }
    }
}

/// What one directory sync produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncOutcome {
    /// The directory synced.
    pub dir: RepoUri,
    /// Files that arrived (bytes exactly as received — corruption, if
    /// any, is *in* these bytes, for the relying party to detect).
    pub files: BTreeMap<String, Vec<u8>>,
    /// Files the listing promised but that never arrived intact as a
    /// frame (dropped in flight, or response frame corrupted beyond
    /// decoding).
    pub missing: Vec<String>,
    /// Whether the listing itself was obtained. `false` means the
    /// repository was effectively unreachable this session.
    pub listed: bool,
}

impl SyncOutcome {
    /// Whether every listed file arrived (says nothing about content
    /// integrity — that is the relying party's manifest check).
    pub fn complete(&self) -> bool {
        self.listed && self.missing.is_empty()
    }
}

/// Runs one sync session of `dir` from the relying party's node
/// `client` against the world's repositories.
///
/// Pumps the network until idle; any message addressed to a repository
/// node is answered from the registry (so concurrent scenarios with
/// multiple repositories work), and messages to other nodes are
/// dropped on the floor (no one is listening).
pub fn sync_dir(
    net: &mut Network,
    repos: &RepoRegistry,
    client: NodeId,
    dir: &RepoUri,
) -> SyncOutcome {
    let server = match repos.node_of(dir.host()) {
        Some(n) => n,
        None => {
            // Host not in this world at all: like DNS failure.
            return SyncOutcome {
                dir: dir.clone(),
                files: BTreeMap::new(),
                missing: Vec::new(),
                listed: false,
            };
        }
    };

    let mut outcome = SyncOutcome {
        dir: dir.clone(),
        files: BTreeMap::new(),
        missing: Vec::new(),
        listed: false,
    };
    let mut expected: Vec<String> = Vec::new();
    let mut received: Vec<String> = Vec::new();

    net.send(client, server, RsyncRequest::List { dir: dir.clone() }.to_bytes());

    while let Some(occ) = net.step() {
        let delivery = match occ {
            Occurrence::Delivered(d) => d,
            Occurrence::Dropped { .. } | Occurrence::Timer { .. } => continue,
        };
        if delivery.to == client {
            // A response frame for us.
            let Ok(resp) = RsyncResponse::from_bytes(&delivery.payload) else {
                // Frame corrupted beyond parsing: a torn session; the
                // file (unknown which) never arrives. Handled below via
                // the expected/received diff.
                continue;
            };
            match resp {
                RsyncResponse::Listing { entries, .. } => {
                    outcome.listed = true;
                    for (name, _digest) in entries {
                        expected.push(name.clone());
                        net.send(
                            client,
                            server,
                            RsyncRequest::Get { dir: dir.clone(), name }.to_bytes(),
                        );
                    }
                }
                RsyncResponse::File { name, bytes, .. } => {
                    received.push(name.clone());
                    outcome.files.insert(name, bytes);
                }
                RsyncResponse::NotFound { name, .. } => {
                    if name.is_none() {
                        // Directory absent: an empty (but reachable)
                        // publication point.
                        outcome.listed = true;
                    }
                }
            }
        } else if delivery.to == server || repos.get(delivery.to).is_some() {
            // A request frame for a repository.
            if let Ok(req) = RsyncRequest::from_bytes(&delivery.payload) {
                let resp = repos.answer(delivery.to, &req);
                net.send(delivery.to, delivery.from, resp.to_bytes());
            }
            // An unparseable request is a torn session: no response.
        }
    }

    outcome.missing = expected.into_iter().filter(|n| !received.contains(n)).collect();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Network;

    fn world() -> (Network, RepoRegistry, NodeId, NodeId, RepoUri) {
        let mut net = Network::new(1);
        let client = net.add_node("relying-party");
        let mut repos = RepoRegistry::new();
        let server = repos.create(&mut net, "rpki.sprint.example");
        let dir = RepoUri::new("rpki.sprint.example", &["repo"]);
        let repo = repos.get_mut(server);
        repo.publish_raw(&dir, "a.roa", vec![1, 2, 3]);
        repo.publish_raw(&dir, "b.cer", vec![4, 5]);
        (net, repos, client, server, dir)
    }

    #[test]
    fn clean_sync_fetches_everything() {
        let (mut net, repos, client, _, dir) = world();
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(out.listed);
        assert!(out.complete());
        assert_eq!(out.files.len(), 2);
        assert_eq!(out.files["a.roa"], vec![1, 2, 3]);
        assert_eq!(out.files["b.cer"], vec![4, 5]);
    }

    #[test]
    fn partition_makes_repo_unreachable() {
        let (mut net, repos, client, server, dir) = world();
        net.faults.partition(client, server);
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(!out.listed);
        assert!(out.files.is_empty());
    }

    #[test]
    fn dropped_listing_means_unreachable() {
        let (mut net, repos, client, server, dir) = world();
        // Server→client frame #1 is the listing.
        net.faults.drop_nth(server, client, 1);
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(!out.listed);
        assert!(out.files.is_empty());
    }

    #[test]
    fn dropped_file_response_reported_missing() {
        let (mut net, repos, client, server, dir) = world();
        // Server→client frames: #1 listing, #2 first file (a.roa in
        // BTreeMap order), #3 second file.
        net.faults.drop_nth(server, client, 2);
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(out.listed);
        assert!(!out.complete());
        assert_eq!(out.missing, vec!["a.roa".to_owned()]);
        assert_eq!(out.files.len(), 1);
        assert!(out.files.contains_key("b.cer"));
    }

    #[test]
    fn dropped_get_request_reported_missing() {
        let (mut net, repos, client, server, dir) = world();
        // Client→server frames: #1 LIST, #2 GET a.roa, #3 GET b.cer.
        net.faults.drop_nth(client, server, 3);
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(out.listed);
        assert_eq!(out.missing, vec!["b.cer".to_owned()]);
        assert!(out.files.contains_key("a.roa"));
    }

    #[test]
    fn corrupted_file_bytes_are_delivered_as_is() {
        let (mut net, repos, client, server, dir) = world();
        // Corrupt the first *file* frame, not the listing. The response
        // frame still parses (the flipped byte is the leading tag... so
        // it may not parse; either way the file must not arrive intact).
        net.faults.corrupt_nth(server, client, 2);
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(out.listed);
        let intact = out.files.get("a.roa").map(|b| b == &vec![1, 2, 3]).unwrap_or(false);
        assert!(!intact, "corrupted file must not arrive intact");
        // The session as a whole is not complete-and-intact: either the
        // frame failed to decode (missing) or the bytes differ.
        assert!(!out.complete() || out.files["a.roa"] != vec![1, 2, 3]);
    }

    #[test]
    fn corrupted_listing_means_unreachable() {
        let (mut net, repos, client, server, dir) = world();
        net.faults.corrupt_nth(server, client, 1);
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(!out.listed);
    }

    #[test]
    fn missing_host_is_unreachable() {
        let (mut net, repos, client, _, _) = world();
        let dir = RepoUri::new("rpki.nowhere.example", &["repo"]);
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(!out.listed);
    }

    #[test]
    fn empty_directory_is_reachable_but_empty() {
        let (mut net, repos, client, _, _) = world();
        let dir = RepoUri::new("rpki.sprint.example", &["empty-dir"]);
        let out = sync_dir(&mut net, &repos, client, &dir);
        assert!(out.listed);
        assert!(out.files.is_empty());
        assert!(out.complete());
    }

    #[test]
    fn registry_lookup_by_host() {
        let (_, repos, _, server, _) = world();
        assert_eq!(repos.node_of("rpki.sprint.example"), Some(server));
        assert_eq!(repos.node_of("rpki.other.example"), None);
        assert_eq!(repos.by_host("rpki.sprint.example").unwrap().node(), server);
    }
}
