//! `rpki-pubd`: the publication-server subsystem.
//!
//! PR 9 made the *client* side of RRDP production-shaped (the
//! notification-cadence fetch scheduler); this module does the same for
//! the *server* side. Production publication servers (krill's `pubd`,
//! the RIR-operated repositories) do not re-derive the snapshot
//! document from at-rest files on every request, and they do not bound
//! delta history by a guessed constant. They run two policies:
//!
//! - **Compaction** ([`PubdPolicy::compaction_interval`]): the
//!   serialized snapshot document is *materialised* every N serials and
//!   cached ([`SnapshotDoc`]). Between materialisations the
//!   notification keeps advertising the last materialised snapshot plus
//!   the *bridge deltas* that carry a snapshot-fallback client from the
//!   materialisation serial up to the head. Interval 1 is
//!   rebuild-on-demand — today's degenerate behaviour.
//! - **Retention** ([`RetentionPolicy`]): how much delta history the
//!   log keeps. The RFC 8182 §3.3.2 tradeoff lives here: too little
//!   history pushes behind clients onto expensive snapshot fallback
//!   (the starvation lever Stalloris pulls deliberately), too much
//!   blows up log storage. Count- and byte-budgeted variants are both
//!   available; the count-32 default reproduces the old hardcoded
//!   `MAX_DELTAS` behaviour byte-identically.
//!
//! The two policies interlock through one invariant the client state
//! machine relies on: **bridge deltas are never evicted**. When a
//! retention budget would have to drop a delta younger than the
//! materialised snapshot, the log instead *forces* a re-materialisation
//! at the head serial first (a [`PubdWork::forced_builds`] event) and
//! then evicts — so the measurable cost of an undersized budget is
//! extra snapshot builds, never a torn feed.
//!
//! Every build and eviction is counted in [`PubdWork`] and surfaced as
//! `pubd/materialise` and `pubd/evict` obs events when the repository
//! carries a recorder; the serve side splits wire bytes per document
//! kind in [`PubdServed`]. `bench_pubd` sweeps history depth × churn ×
//! compaction interval over these counters to locate the crossover
//! where fallback traffic overtakes log storage.

mod compaction;
mod retention;

pub(crate) use compaction::snapshot_document;
pub use compaction::{PubdServed, PubdWork, SnapshotDoc};
pub use retention::{RetentionPolicy, MAX_DELTAS};

/// The serving policy of one repository host: how often the snapshot
/// document is materialised and how much delta history is retained.
/// The default (`interval 1` + count-32 retention) reproduces the
/// pre-`pubd` server byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PubdPolicy {
    /// Materialise the serialized snapshot document every this many
    /// serials (minimum 1). Between materialisations, snapshot-fallback
    /// clients fetch the last materialised document and bridge forward
    /// over the advertised deltas.
    pub compaction_interval: u64,
    /// How much delta history the publication log retains.
    pub retention: RetentionPolicy,
}

impl Default for PubdPolicy {
    fn default() -> Self {
        PubdPolicy { compaction_interval: 1, retention: RetentionPolicy::default() }
    }
}

impl PubdPolicy {
    /// The degenerate policy: rebuild the snapshot on every write,
    /// keep the default count-bounded history — exactly the old server.
    pub fn rebuild_on_demand() -> Self {
        PubdPolicy::default()
    }

    /// A compacting policy: materialise every `interval` serials.
    pub fn compacted(interval: u64) -> Self {
        assert!(interval >= 1, "compaction interval must be at least 1");
        PubdPolicy { compaction_interval: interval, ..PubdPolicy::default() }
    }

    /// Replaces the retention policy.
    pub fn with_retention(mut self, retention: RetentionPolicy) -> Self {
        self.retention = retention;
        self
    }
}

/// One server-side decision taken while recording a write, reported up
/// to the [`Repository`](crate::Repository) so it can emit obs events
/// with its clock and recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PubdEvent {
    /// The snapshot document was (re)built at `serial`.
    Materialised {
        /// The serial the document represents.
        serial: u64,
        /// Size of the serialized document.
        bytes: u64,
        /// True when a retention budget forced the build (the budget
        /// demanded evicting a bridge delta).
        forced: bool,
    },
    /// One delta document left the retained history.
    Evicted {
        /// The serial the evicted delta advanced to.
        serial: u64,
        /// Size of the evicted canonical delta document.
        bytes: u64,
    },
}
