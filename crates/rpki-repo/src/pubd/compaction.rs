//! Snapshot materialisation: the cached serialized snapshot document
//! and the server-side work/serve ledgers.

use rpkisim_crypto::{sha256, Digest};
use serde::Serialize;

/// Builds the canonical serialized snapshot document: session and
/// serial big-endian, then every `(name, bytes)` pair length-prefixed.
/// Server and client derive the snapshot hash from this exact byte
/// string, so the notification's snapshot hash pins the document.
pub(crate) fn snapshot_document<'a, I>(session: u64, serial: u64, files: I) -> Vec<u8>
where
    I: Iterator<Item = (&'a str, &'a [u8])>,
{
    let mut buf = Vec::new();
    buf.extend_from_slice(&session.to_be_bytes());
    buf.extend_from_slice(&serial.to_be_bytes());
    for (name, bytes) in files {
        buf.extend_from_slice(&(name.len() as u64).to_be_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&(bytes.len() as u64).to_be_bytes());
        buf.extend_from_slice(bytes);
    }
    buf
}

/// A materialised snapshot document: the canonical serialized bytes of
/// one `(session, serial, files)` state, hashed once at build time.
///
/// This is what satellite-fix 6 replaces the per-write full-file-set
/// digest with: the document is built when the compaction policy says
/// so, served verbatim from cache (never re-derived from at-rest files
/// per request), and its stored hash is what notifications advertise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDoc {
    serial: u64,
    hash: Digest,
    bytes: Vec<u8>,
}

impl SnapshotDoc {
    /// Materialises the document at `serial` from the given file set,
    /// hashing the canonical bytes exactly once.
    pub(crate) fn build<'a, I>(session: u64, serial: u64, files: I) -> SnapshotDoc
    where
        I: Iterator<Item = (&'a str, &'a [u8])>,
    {
        let bytes = snapshot_document(session, serial, files);
        let hash = sha256(&bytes);
        SnapshotDoc { serial, hash, bytes }
    }

    /// The serial this document was materialised at.
    pub fn serial(&self) -> u64 {
        self.serial
    }

    /// SHA-256 of the canonical document bytes.
    pub fn hash(&self) -> Digest {
        self.hash
    }

    /// Size of the serialized document.
    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// True for a document with no header (never the case once built).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Recovers the `(name, bytes)` file entries from the cached
    /// document — the serve path of a snapshot request. The document
    /// was built by [`snapshot_document`], so parsing cannot fail;
    /// a torn cache would be a programming error, hence the asserts.
    pub(crate) fn files(&self) -> Vec<(String, Vec<u8>)> {
        let mut files = Vec::new();
        let mut at = 16; // session + serial header
        let take_u64 = |at: &mut usize, buf: &[u8]| -> usize {
            let mut len = [0u8; 8];
            len.copy_from_slice(&buf[*at..*at + 8]);
            *at += 8;
            u64::from_be_bytes(len) as usize
        };
        while at < self.bytes.len() {
            let name_len = take_u64(&mut at, &self.bytes);
            let name = std::str::from_utf8(&self.bytes[at..at + name_len])
                .expect("snapshot doc names are valid UTF-8")
                .to_owned();
            at += name_len;
            let bytes_len = take_u64(&mut at, &self.bytes);
            files.push((name, self.bytes[at..at + bytes_len].to_vec()));
            at += bytes_len;
        }
        files
    }
}

/// Cumulative build-side work of one publication point (or, summed,
/// one host): what the server *spent* maintaining its feed, per the
/// write path. The retained-gauge fields describe the current log and
/// are filled in by the [`Repository`](crate::Repository) accessors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PubdWork {
    /// Writes recorded (serials advanced).
    pub serials: u64,
    /// Snapshot documents materialised (scheduled and forced).
    pub snapshot_builds: u64,
    /// Materialisations forced by a retention budget that would have
    /// evicted a bridge delta.
    pub forced_builds: u64,
    /// Total bytes of materialised snapshot documents.
    pub snapshot_bytes_built: u64,
    /// Delta documents evicted from the retained history.
    pub deltas_evicted: u64,
    /// Total bytes of evicted delta documents.
    pub delta_bytes_evicted: u64,
    /// Gauge: delta documents currently retained.
    pub retained_deltas: u64,
    /// Gauge: total bytes of currently retained delta documents —
    /// the delta-log storage side of the RFC 8182 §3.3.2 tradeoff.
    pub retained_delta_bytes: u64,
}

impl PubdWork {
    /// Component-wise sum (counters and gauges alike).
    pub fn plus(self, o: PubdWork) -> PubdWork {
        PubdWork {
            serials: self.serials + o.serials,
            snapshot_builds: self.snapshot_builds + o.snapshot_builds,
            forced_builds: self.forced_builds + o.forced_builds,
            snapshot_bytes_built: self.snapshot_bytes_built + o.snapshot_bytes_built,
            deltas_evicted: self.deltas_evicted + o.deltas_evicted,
            delta_bytes_evicted: self.delta_bytes_evicted + o.delta_bytes_evicted,
            retained_deltas: self.retained_deltas + o.retained_deltas,
            retained_delta_bytes: self.retained_delta_bytes + o.retained_delta_bytes,
        }
    }
}

/// Serve-side wire bytes of one publication point, split per RRDP
/// document kind — the breakdown [`DirLoad`](crate::DirLoad) flattens.
/// Snapshot bytes served are the fallback-traffic side of the
/// §3.3.2 tradeoff.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PubdServed {
    /// Notification documents served.
    pub notifications: u64,
    /// Encoded notification bytes served.
    pub notification_bytes: u64,
    /// Snapshot documents served.
    pub snapshots: u64,
    /// Encoded snapshot bytes served.
    pub snapshot_bytes: u64,
    /// Delta documents served.
    pub deltas: u64,
    /// Encoded delta bytes served.
    pub delta_bytes: u64,
    /// Requests answered `NotFound` (withheld, offline, unknown).
    pub not_found: u64,
}

impl PubdServed {
    /// Component-wise sum.
    pub fn plus(self, o: PubdServed) -> PubdServed {
        PubdServed {
            notifications: self.notifications + o.notifications,
            notification_bytes: self.notification_bytes + o.notification_bytes,
            snapshots: self.snapshots + o.snapshots,
            snapshot_bytes: self.snapshot_bytes + o.snapshot_bytes,
            deltas: self.deltas + o.deltas,
            delta_bytes: self.delta_bytes + o.delta_bytes,
            not_found: self.not_found + o.not_found,
        }
    }

    /// Total bytes served over all document kinds.
    pub fn total_bytes(self) -> u64 {
        self.notification_bytes + self.snapshot_bytes + self.delta_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_doc_round_trips_files() {
        let files: Vec<(String, Vec<u8>)> =
            vec![("a.roa".into(), vec![1, 2, 3]), ("b.cer".into(), vec![]), ("c".into(), vec![9])];
        let doc = SnapshotDoc::build(7, 3, files.iter().map(|(n, b)| (n.as_str(), b.as_slice())));
        assert_eq!(doc.serial(), 3);
        assert_eq!(doc.files(), files);
        assert_eq!(
            doc.hash(),
            sha256(&snapshot_document(7, 3, files.iter().map(|(n, b)| (n.as_str(), b.as_slice()))))
        );
    }

    #[test]
    fn empty_doc_has_only_the_header() {
        let doc = SnapshotDoc::build(1, 0, std::iter::empty());
        assert_eq!(doc.len(), 16);
        assert!(doc.files().is_empty());
    }
}
