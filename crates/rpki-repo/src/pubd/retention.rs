//! Delta-history retention: count- and byte-budgeted eviction.

/// How many delta records the default retention policy keeps — the
/// value the server hardcoded before retention became configurable.
/// A client further behind than the retained history falls back to the
/// snapshot, exactly like production RRDP servers that garbage-collect
/// old delta files.
pub const MAX_DELTAS: usize = 32;

/// How much delta history a publication log retains.
///
/// RFC 8182 §3.3.2 leaves the depth to the operator and names the
/// tradeoff: deltas beyond the budget are dropped, and a client that
/// fell further behind than the retained history pays a full snapshot.
/// The *byte* budget is what production servers actually manage
/// (storage), which is why [`RetentionPolicy::Bytes`] exists alongside
/// the count variant the old `MAX_DELTAS` constant expressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetentionPolicy {
    /// Keep at most this many delta documents (the historical
    /// behaviour; `Count { max_deltas: MAX_DELTAS }` is the default and
    /// reproduces the old server byte-identically).
    Count {
        /// Maximum retained delta documents.
        max_deltas: usize,
    },
    /// Keep at most this many bytes of canonical delta documents —
    /// the storage-budget form real repositories operate under.
    Bytes {
        /// Maximum total size of retained delta documents.
        max_bytes: u64,
    },
    /// Never evict. The reference configuration for equivalence tests
    /// (every client can always delta-sync) and the storage worst case.
    Unbounded,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        RetentionPolicy::Count { max_deltas: MAX_DELTAS }
    }
}

impl RetentionPolicy {
    /// Whether a history of `count` deltas totalling `bytes` exceeds
    /// the budget (i.e. the oldest delta must go).
    pub(crate) fn over_budget(&self, count: usize, bytes: u64) -> bool {
        match *self {
            RetentionPolicy::Count { max_deltas } => count > max_deltas,
            RetentionPolicy::Bytes { max_bytes } => bytes > max_bytes,
            RetentionPolicy::Unbounded => false,
        }
    }

    /// Stable label for traces and bench records.
    pub fn label(&self) -> String {
        match *self {
            RetentionPolicy::Count { max_deltas } => format!("count:{max_deltas}"),
            RetentionPolicy::Bytes { max_bytes } => format!("bytes:{max_bytes}"),
            RetentionPolicy::Unbounded => "unbounded".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reproduces_the_old_constant() {
        assert_eq!(RetentionPolicy::default(), RetentionPolicy::Count { max_deltas: 32 });
        assert_eq!(MAX_DELTAS, 32);
    }

    #[test]
    fn budgets_bind_on_their_own_axis() {
        let count = RetentionPolicy::Count { max_deltas: 2 };
        assert!(!count.over_budget(2, u64::MAX));
        assert!(count.over_budget(3, 0));
        let bytes = RetentionPolicy::Bytes { max_bytes: 100 };
        assert!(!bytes.over_budget(usize::MAX, 100));
        assert!(bytes.over_budget(0, 101));
        assert!(!RetentionPolicy::Unbounded.over_budget(usize::MAX, u64::MAX));
    }
}
