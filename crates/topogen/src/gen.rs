//! The generator itself.

use std::collections::BTreeMap;

use bgp_sim::{Announcement, Topology};
use ipres::{Asn, Prefix, ResourceSet};
use netsim::Network;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpki_ca::{CertAuthority, ChurnEngine, ChurnReport};
use rpki_objects::{Encode, Moment, RepoUri, RoaPrefix, RpkiObject, Span, TrustAnchorLocator};
use rpki_repo::RepoRegistry;

use crate::data::{rir_of_country, ANCHOR_ORGS, RIRS};

/// Generator parameters. All sizes are exact, not expectations.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Number of transit ISPs (beyond the anchors), spread over RIRs.
    pub transits: usize,
    /// Number of stub/customer organisations.
    pub stubs: usize,
    /// Fraction of organisations issuing ROAs (the paper's production
    /// snapshot was <1%; full deployment is 1.0).
    pub roa_adoption: f64,
    /// Probability that a customer's country differs from its
    /// provider's (drives Table 4's cross-border certification).
    pub cross_border: f64,
    /// Whether to plant the paper's Table 4 anchor organisations.
    pub anchors: bool,
    /// Probability that an organisation hosts its own repository
    /// (its own publication host, like the paper's Continental).
    /// Everyone else publishes under their RIR's host, one directory
    /// per organisation — the real Internet's fan-out, where a few
    /// hosted publication servers carry thousands of publication
    /// points. Anchors always self-host (the paper's premise).
    pub self_hosting: f64,
}

impl Config {
    /// A small, fast world for tests.
    pub fn small(seed: u64) -> Self {
        Config {
            seed,
            transits: 12,
            stubs: 60,
            roa_adoption: 1.0,
            cross_border: 0.2,
            anchors: true,
            self_hosting: 1.0,
        }
    }

    /// An internet-scale world: tens of thousands of ASes, thousands
    /// of publication points, RIR-hosted fan-out with a sprinkle of
    /// self-hosters. Generation stays linear in the org count.
    pub fn planet(seed: u64, stubs: usize) -> Self {
        Config {
            seed,
            transits: 120,
            stubs,
            roa_adoption: 1.0,
            cross_border: 0.15,
            anchors: true,
            self_hosting: 0.05,
        }
    }
}

/// What kind of organisation an [`Org`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrgKind {
    /// Transit ISP (has customers; tier-1s are the first few transits).
    Transit,
    /// Edge customer.
    Stub,
    /// A planted Table 4 anchor (transit-like).
    Anchor,
}

/// Who allocated an organisation's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParentRef {
    /// Directly from an RIR (index into [`RIRS`]).
    Rir(usize),
    /// From another organisation (index into `orgs`).
    Org(usize),
}

/// One organisation in the synthetic Internet.
#[derive(Debug, Clone)]
pub struct Org {
    /// Unique handle, e.g. `"transit-3"` or `"Level3"`.
    pub handle: String,
    /// Role.
    pub kind: OrgKind,
    /// The organisation's AS number.
    pub asn: Asn,
    /// Home country (ISO code).
    pub country: String,
    /// The RIR region the org is *registered* in (its home country's,
    /// or its provider's for countries outside all regions).
    pub rir: usize,
    /// Address blocks allocated to it.
    pub prefixes: Vec<Prefix>,
    /// Who allocated those blocks.
    pub parent: ParentRef,
    /// Index of this org's CA in [`SyntheticInternet::cas`].
    pub ca: usize,
    /// Whether the org issued ROAs for its prefixes.
    pub adopted_roa: bool,
}

/// A generated Internet: organisations, a working CA hierarchy, an AS
/// topology, and the BGP announcements everyone makes.
pub struct SyntheticInternet {
    /// Generator parameters used.
    pub config: Config,
    /// All organisations.
    pub orgs: Vec<Org>,
    /// CA hierarchy: `cas[0]` is the IANA trust anchor, `cas[1..=5]`
    /// the RIRs, the rest org CAs (see [`Org::ca`]).
    pub cas: Vec<CertAuthority>,
    /// The AS graph.
    pub topology: Topology,
    /// Everyone's BGP originations.
    pub announcements: Vec<Announcement>,
    /// AS → home country.
    pub as_country: BTreeMap<Asn, String>,
}

impl SyntheticInternet {
    /// Grows an Internet from `config`.
    pub fn generate(config: Config) -> SyntheticInternet {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let now = Moment(0);
        let mut next_asn = 1000u32;
        let mut asn = || {
            let a = Asn(next_asn);
            next_asn += 1;
            a
        };

        // --- IANA and the RIRs ---
        let mut cas: Vec<CertAuthority> = Vec::new();
        let mut iana = CertAuthority::new("IANA", &seeded(config.seed, "iana"), sia_of("iana"));
        iana.certify_self(ResourceSet::from_prefix_strs("0.0.0.0/0"), now, Span::days(3650));
        cas.push(iana);

        for (i, rir) in RIRS.iter().enumerate() {
            let mut resources = ResourceSet::from_prefix(Prefix::v4(rir.base_octet, 0, 0, 0, 8));
            if config.anchors {
                for anchor in &ANCHOR_ORGS {
                    if rir_of_country(anchor.home) == Some(i) {
                        resources = resources
                            .union(&ResourceSet::from_prefix(anchor.rc_prefix.parse().unwrap()));
                    }
                }
            }
            let mut ca =
                CertAuthority::new(rir.name, &seeded(config.seed, rir.name), sia_of(rir.name));
            let cert = cas[0]
                .issue_cert(rir.name, ca.public_key(), resources, ca.sia().clone(), now)
                .expect("IANA holds everything");
            ca.install_cert(cert);
            cas.push(ca);
        }

        let mut orgs: Vec<Org> = Vec::new();
        let mut topology = Topology::new();
        // Per-RIR allocation cursor: next free /16 within the pool /8.
        let mut rir_cursor = [0u16; 5];
        // Incrementally maintained index pools, so provider selection
        // stays O(1) per org instead of re-scanning every org created
        // so far (the old quadratic scan dominated at planet scale).
        let mut transit_indices: Vec<usize> = Vec::new();
        let mut provider_indices: Vec<usize> = Vec::new();

        // --- Anchors (Table 4 rows) ---
        if config.anchors {
            for anchor in &ANCHOR_ORGS {
                let rir = rir_of_country(anchor.home).expect("anchor home in a region");
                let a = asn();
                let prefix: Prefix = anchor.rc_prefix.parse().expect("static prefix");
                let ca_idx = cas.len();
                let mut ca = CertAuthority::new(
                    anchor.name,
                    &seeded(config.seed, anchor.name),
                    sia_of(anchor.name),
                );
                let cert = cas[1 + rir]
                    .issue_cert(
                        anchor.name,
                        ca.public_key(),
                        ResourceSet::from_prefix(prefix),
                        ca.sia().clone(),
                        now,
                    )
                    .expect("anchor prefix granted to its RIR");
                ca.install_cert(cert);
                cas.push(ca);
                topology.add_as(a);
                provider_indices.push(orgs.len());
                orgs.push(Org {
                    handle: anchor.name.to_owned(),
                    kind: OrgKind::Anchor,
                    asn: a,
                    country: anchor.home.to_owned(),
                    rir,
                    prefixes: vec![prefix],
                    parent: ParentRef::Rir(rir),
                    ca: ca_idx,
                    adopted_roa: true,
                });
            }
        }

        // --- Transit ISPs ---
        let tier1_count = 5.min(config.transits.max(1));
        for t in 0..config.transits {
            let rir = t % RIRS.len();
            let country =
                RIRS[rir].countries[rng.gen_range(0..RIRS[rir].countries.len())].to_owned();
            let a = asn();
            let third = rir_cursor[rir];
            rir_cursor[rir] += 1;
            assert!(third < 256, "RIR /8 pool exhausted; lower `transits`");
            let prefix = Prefix::v4(RIRS[rir].base_octet, third as u8, 0, 0, 16);
            let handle = format!("transit-{t}");
            let ca_idx = cas.len();
            let sia = org_sia(&mut rng, &config, rir, &handle);
            let mut ca = CertAuthority::new(&handle, &seeded(config.seed, &handle), sia);
            let cert = cas[1 + rir]
                .issue_cert(
                    &handle,
                    ca.public_key(),
                    ResourceSet::from_prefix(prefix),
                    ca.sia().clone(),
                    now,
                )
                .expect("pool /16 within RIR /8");
            ca.install_cert(cert);
            cas.push(ca);
            topology.add_as(a);
            let org_idx = orgs.len();
            orgs.push(Org {
                handle,
                kind: OrgKind::Transit,
                asn: a,
                country,
                rir,
                prefixes: vec![prefix],
                parent: ParentRef::Rir(rir),
                ca: ca_idx,
                adopted_roa: rng.gen_bool(config.roa_adoption),
            });

            // Topology: the first `tier1_count` transits form a full
            // peering mesh; later transits buy from 1–2 earlier transit
            // or anchor providers (degree bias emerges from growth
            // order). Providers are sampled from the incrementally
            // maintained pools — the org list is never re-scanned.
            if transit_indices.len() < tier1_count {
                for &other in &transit_indices {
                    topology.add_peering(orgs[org_idx].asn, orgs[other].asn);
                }
            } else {
                let providers = (1 + rng.gen_range(0..2usize)).min(provider_indices.len());
                let mut chosen: Vec<usize> = Vec::with_capacity(providers);
                while chosen.len() < providers {
                    let cand = provider_indices[rng.gen_range(0..provider_indices.len())];
                    if !chosen.contains(&cand) {
                        chosen.push(cand);
                    }
                }
                for &prov in &chosen {
                    topology.add_provider_customer(orgs[prov].asn, orgs[org_idx].asn);
                }
            }
            transit_indices.push(org_idx);
            provider_indices.push(org_idx);
        }

        // Anchors (Level3-class networks) are default-free-zone members:
        // they join the tier-1 clique (peering with every tier-1 transit
        // and with each other), so no valley separates their customer
        // cones from the rest of the Internet.
        let dfz: Vec<Asn> = orgs
            .iter()
            .filter(|o| o.kind == OrgKind::Transit)
            .take(tier1_count)
            .map(|o| o.asn)
            .chain(orgs.iter().filter(|o| o.kind == OrgKind::Anchor).map(|o| o.asn))
            .collect();
        for (i, &a) in dfz.iter().enumerate() {
            for &b in &dfz[i + 1..] {
                if topology.relationship(a, b).is_none() {
                    topology.add_peering(a, b);
                }
            }
        }

        // --- Anchor customers (one per Table 4 country) ---
        if config.anchors {
            let anchor_indices: Vec<usize> = orgs
                .iter()
                .enumerate()
                .filter(|(_, o)| o.kind == OrgKind::Anchor)
                .map(|(i, _)| i)
                .collect();
            for &ai in &anchor_indices {
                let anchor_name = orgs[ai].handle.clone();
                let spec = ANCHOR_ORGS.iter().find(|s| s.name == anchor_name).expect("anchor spec");
                let base = orgs[ai].prefixes[0];
                for (k, country) in spec.customer_countries.iter().enumerate() {
                    let a = asn();
                    // The k-th /24 inside the anchor's block.
                    let step = 1u128 << (32 - 24);
                    let addr =
                        ipres::Addr::new(base.family(), base.addr().value() + (k as u128) * step);
                    let prefix = Prefix::new(addr, 24);
                    let handle = format!("{}-cust-{}", slug(&anchor_name), country);
                    let crir = rir_of_country(country).unwrap_or(orgs[ai].rir);
                    let ca_idx = cas.len();
                    let sia = org_sia(&mut rng, &config, crir, &handle);
                    let mut ca = CertAuthority::new(&handle, &seeded(config.seed, &handle), sia);
                    let cert = cas[orgs[ai].ca]
                        .issue_cert(
                            &handle,
                            ca.public_key(),
                            ResourceSet::from_prefix(prefix),
                            ca.sia().clone(),
                            now,
                        )
                        .expect("customer /24 within anchor block");
                    ca.install_cert(cert);
                    cas.push(ca);
                    topology.add_provider_customer(orgs[ai].asn, a);
                    topology.add_as(a);
                    orgs.push(Org {
                        handle,
                        kind: OrgKind::Stub,
                        asn: a,
                        country: (*country).to_owned(),
                        rir: crir,
                        prefixes: vec![prefix],
                        parent: ParentRef::Org(ai),
                        ca: ca_idx,
                        adopted_roa: true,
                    });
                }
            }
        }

        // --- Random stubs ---
        let transit_pool: Vec<usize> = orgs
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o.kind, OrgKind::Transit))
            .map(|(i, _)| i)
            .collect();
        assert!(!transit_pool.is_empty() || config.stubs == 0, "stubs need transits");
        let mut stub_cursor: BTreeMap<usize, u8> = BTreeMap::new(); // per-provider /24 counter
        for s in 0..config.stubs {
            let &prov =
                transit_pool.get(rng.gen_range(0..transit_pool.len())).expect("non-empty pool");
            let count = stub_cursor.entry(prov).or_insert(0);
            if *count == 255 {
                continue; // provider block full; skip (rare at test scales)
            }
            let third = *count;
            *count += 1;
            let base = orgs[prov].prefixes[0];
            let addr =
                ipres::Addr::new(base.family(), base.addr().value() + ((third as u128) << 8));
            let prefix = Prefix::new(addr, 24);
            let a = asn();
            // Country: provider's, or (cross-border) a random other.
            let country = if rng.gen_bool(config.cross_border) {
                let all: Vec<&str> =
                    RIRS.iter().flat_map(|r| r.countries.iter().copied()).collect();
                all[rng.gen_range(0..all.len())].to_owned()
            } else {
                orgs[prov].country.clone()
            };
            let handle = format!("stub-{s}");
            let rir = rir_of_country(&country).unwrap_or(orgs[prov].rir);
            let ca_idx = cas.len();
            let sia = org_sia(&mut rng, &config, rir, &handle);
            let mut ca = CertAuthority::new(&handle, &seeded(config.seed, &handle), sia);
            let cert = cas[orgs[prov].ca]
                .issue_cert(
                    &handle,
                    ca.public_key(),
                    ResourceSet::from_prefix(prefix),
                    ca.sia().clone(),
                    now,
                )
                .expect("stub /24 within provider /16");
            ca.install_cert(cert);
            cas.push(ca);
            topology.add_provider_customer(orgs[prov].asn, a);
            orgs.push(Org {
                handle,
                kind: OrgKind::Stub,
                asn: a,
                country,
                rir,
                prefixes: vec![prefix],
                parent: ParentRef::Org(prov),
                ca: ca_idx,
                adopted_roa: rng.gen_bool(config.roa_adoption),
            });
        }

        // --- ROAs and announcements ---
        let mut announcements = Vec::new();
        let mut as_country = BTreeMap::new();
        for org in &orgs {
            as_country.insert(org.asn, org.country.clone());
            for &prefix in &org.prefixes {
                announcements.push(Announcement { prefix, origin: org.asn });
                if org.adopted_roa {
                    cas[org.ca]
                        .issue_roa(org.asn, vec![RoaPrefix::exact(prefix)], now)
                        .expect("own prefix");
                }
            }
        }

        SyntheticInternet { config, orgs, cas, topology, announcements, as_country }
    }

    /// The CA of an organisation.
    pub fn ca_of(&self, org: usize) -> &CertAuthority {
        &self.cas[self.orgs[org].ca]
    }

    /// Registers a repository for every CA and publishes everything.
    /// Returns the TAL a relying party should use.
    pub fn materialize(
        &mut self,
        net: &mut Network,
        repos: &mut RepoRegistry,
        now: Moment,
    ) -> TrustAnchorLocator {
        for ca in &self.cas {
            let host = ca.sia().host().to_owned();
            if repos.by_host(&host).is_none() {
                repos.create(net, &host);
            }
        }
        // Publish the TA certificate out of band.
        let ta_cert = self.cas[0].cert().expect("TA certified").clone();
        let ta_host = self.cas[0].sia().host().to_owned();
        let ta_dir = RepoUri::new(&ta_host, &["ta"]);
        repos.by_host_mut(&ta_host).expect("just created").publish_raw(
            &ta_dir,
            "root.cer",
            RpkiObject::Cert(ta_cert).to_bytes(),
        );
        self.publish_all(repos, now);
        TrustAnchorLocator::new(ta_dir.join("root.cer"), self.cas[0].public_key())
    }

    /// Republishes every CA's snapshot (periodic refresh).
    pub fn publish_all(&mut self, repos: &mut RepoRegistry, now: Moment) {
        for ca in &mut self.cas {
            let sia = ca.sia().clone();
            let snap = ca.publication_snapshot(now);
            if let Some(repo) = repos.by_host_mut(sia.host()) {
                repo.publish_snapshot(&sia, &snap);
            }
        }
    }

    /// Advances `engine` one step over every CA (vector order — the
    /// index the schedule is keyed on) and republishes the touched
    /// snapshots into their repositories, so the planet-scale world
    /// churns like production publication points do. Returns the
    /// engine's report.
    pub fn run_churn(
        &mut self,
        engine: &mut ChurnEngine,
        repos: &mut RepoRegistry,
        now: Moment,
    ) -> ChurnReport {
        let report = engine.step_with(self.cas.iter_mut(), now);
        for &idx in &report.touched {
            let ca = &mut self.cas[idx];
            let sia = ca.sia().clone();
            let snap = ca.publication_snapshot(now);
            if let Some(repo) = repos.by_host_mut(sia.host()) {
                repo.publish_snapshot(&sia, &snap);
            }
        }
        report
    }

    /// Count of organisations that issued ROAs.
    pub fn adopters(&self) -> usize {
        self.orgs.iter().filter(|o| o.adopted_roa).count()
    }
}

fn seeded(seed: u64, handle: &str) -> String {
    format!("topogen-{seed}-{handle}")
}

fn slug(handle: &str) -> String {
    handle
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '-' })
        .collect()
}

fn sia_of(handle: &str) -> RepoUri {
    RepoUri::new(&format!("rpki.{}.example", slug(handle)), &["repo"])
}

/// Publication point under the RIR's shared repository host, for orgs
/// that do not run their own publication server.
fn rir_hosted_sia(rir: usize, handle: &str) -> RepoUri {
    RepoUri::new(&format!("rpki.{}.example", slug(RIRS[rir].name)), &["repo", &slug(handle)])
}

/// Roll the self-hosting dice for an ordinary org: most real-world CAs
/// publish under their RIR's repository rather than running their own
/// rsync/RRDP endpoint, so `config.self_hosting` is the probability of
/// a dedicated host. One RNG draw is always consumed, keeping worlds
/// with different `self_hosting` values byte-comparable elsewhere.
fn org_sia(rng: &mut impl Rng, config: &Config, rir: usize, handle: &str) -> RepoUri {
    if rng.gen_bool(config.self_hosting) {
        sia_of(handle)
    } else {
        rir_hosted_sia(rir, handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticInternet::generate(Config::small(11));
        let b = SyntheticInternet::generate(Config::small(11));
        assert_eq!(a.orgs.len(), b.orgs.len());
        assert_eq!(a.announcements, b.announcements);
        let countries_a: Vec<&String> = a.orgs.iter().map(|o| &o.country).collect();
        let countries_b: Vec<&String> = b.orgs.iter().map(|o| &o.country).collect();
        assert_eq!(countries_a, countries_b);
        // Different seed, different world.
        let c = SyntheticInternet::generate(Config::small(12));
        let countries_c: Vec<&String> = c.orgs.iter().map(|o| &o.country).collect();
        assert_ne!(countries_a, countries_c);
    }

    #[test]
    fn structure_matches_config() {
        let cfg = Config::small(5);
        let net = SyntheticInternet::generate(cfg);
        let anchors = net.orgs.iter().filter(|o| o.kind == OrgKind::Anchor).count();
        let transits = net.orgs.iter().filter(|o| o.kind == OrgKind::Transit).count();
        assert_eq!(anchors, ANCHOR_ORGS.len());
        assert_eq!(transits, cfg.transits);
        // Stubs: the configured ones plus one per anchor-customer row.
        let anchor_customers: usize = ANCHOR_ORGS.iter().map(|a| a.customer_countries.len()).sum();
        let stubs = net.orgs.iter().filter(|o| o.kind == OrgKind::Stub).count();
        assert_eq!(stubs, cfg.stubs + anchor_customers);
        // CA count: IANA + 5 RIRs + one per org.
        assert_eq!(net.cas.len(), 6 + net.orgs.len());
        // Full adoption in the small config.
        assert_eq!(net.adopters(), net.orgs.len());
    }

    #[test]
    fn allocations_nest_properly() {
        let net = SyntheticInternet::generate(Config::small(7));
        for org in &net.orgs {
            let own: ResourceSet = org.prefixes.iter().copied().collect();
            let parent_resources = match org.parent {
                ParentRef::Rir(r) => net.cas[1 + r].resources(),
                ParentRef::Org(p) => net.orgs[p].prefixes.iter().copied().collect::<ResourceSet>(),
            };
            assert!(
                parent_resources.contains_set(&own),
                "{} not inside its parent's space",
                org.handle
            );
        }
    }

    #[test]
    fn allocations_are_disjoint_across_branches() {
        // Two orgs' prefixes may nest only along an allocation chain;
        // unrelated branches must never overlap (the collision class
        // behind the old 8/8 pool bug).
        let net = SyntheticInternet::generate(Config::small(2024));
        let is_ancestor = |mut a: usize, b: usize| -> bool {
            loop {
                if a == b {
                    return true;
                }
                match net.orgs[a].parent {
                    ParentRef::Org(p) => a = p,
                    ParentRef::Rir(_) => return false,
                }
            }
        };
        for i in 0..net.orgs.len() {
            for j in (i + 1)..net.orgs.len() {
                let related = is_ancestor(i, j) || is_ancestor(j, i);
                if related {
                    continue;
                }
                for pa in &net.orgs[i].prefixes {
                    for pb in &net.orgs[j].prefixes {
                        assert!(
                            !pa.overlaps(*pb),
                            "{} {} overlaps {} {}",
                            net.orgs[i].handle,
                            pa,
                            net.orgs[j].handle,
                            pb
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn topology_is_connected_and_acyclic() {
        let net = SyntheticInternet::generate(Config::small(9));
        assert!(net.topology.find_transit_cycle().is_none());
        // Every org AS is in the graph.
        for org in &net.orgs {
            assert!(net.topology.contains(org.asn), "{} missing", org.handle);
        }
        // Stubs have at least one provider.
        for org in net.orgs.iter().filter(|o| o.kind == OrgKind::Stub) {
            assert!(!net.topology.providers(org.asn).is_empty(), "{}", org.handle);
        }
    }

    #[test]
    fn partial_adoption_respected() {
        let mut cfg = Config::small(13);
        cfg.roa_adoption = 0.0;
        cfg.anchors = false;
        let net = SyntheticInternet::generate(cfg);
        assert_eq!(net.adopters(), 0);
        cfg.roa_adoption = 1.0;
        let net = SyntheticInternet::generate(cfg);
        assert_eq!(net.adopters(), net.orgs.len());
    }

    #[test]
    fn self_hosting_knob_controls_fanout_without_changing_vrps() {
        use rpki_rp::{DirectSource, ValidationConfig, Validator};
        use std::collections::BTreeSet;

        let vrps_and_hosts = |self_hosting: f64| {
            let mut cfg = Config::small(31);
            cfg.anchors = false;
            cfg.self_hosting = self_hosting;
            let mut world = SyntheticInternet::generate(cfg);
            let mut net = Network::new(0);
            let mut repos = RepoRegistry::new();
            let tal = world.materialize(&mut net, &mut repos, Moment(1));
            let hosts: BTreeSet<String> =
                world.cas.iter().map(|ca| ca.sia().host().to_owned()).collect();
            let mut source = DirectSource::new(&repos);
            let run = Validator::new(ValidationConfig::at(Moment(2))).run(&mut source, &[tal]);
            (run.vrps, hosts.len())
        };

        let (vrps_self, hosts_self) = vrps_and_hosts(1.0);
        let (vrps_hosted, hosts_hosted) = vrps_and_hosts(0.0);
        // Fully hosted: only IANA + the five RIR hosts exist.
        assert_eq!(hosts_hosted, 6);
        // Fully self-hosted: every org runs its own host.
        assert!(hosts_self > hosts_hosted + 50);
        // The knob only moves publication points, never the VRP set:
        // both worlds consume one dice roll per org either way.
        assert!(!vrps_self.is_empty());
        assert_eq!(vrps_self, vrps_hosted);
    }

    #[test]
    fn planet_config_is_linear_enough_to_materialize() {
        // A mid-size planet slice: generation plus materialisation must
        // stay cheap (the full bench sweep runs far larger worlds).
        let mut world = SyntheticInternet::generate(Config::planet(77, 2000));
        let mut net = Network::new(0);
        let mut repos = RepoRegistry::new();
        world.materialize(&mut net, &mut repos, Moment(1));
        // RIR-hosted fan-out: almost all orgs share the 6 infra hosts.
        use std::collections::BTreeSet;
        let hosts: BTreeSet<String> =
            world.cas.iter().map(|ca| ca.sia().host().to_owned()).collect();
        assert!(world.orgs.len() >= 2100, "{} orgs", world.orgs.len());
        assert!(hosts.len() < world.orgs.len() / 4, "{} hosts", hosts.len());
    }

    #[test]
    fn materialized_world_validates() {
        use rpki_rp::{DirectSource, ValidationConfig, Validator};
        let mut world = SyntheticInternet::generate(Config::small(21));
        let mut net = Network::new(0);
        let mut repos = RepoRegistry::new();
        let tal = world.materialize(&mut net, &mut repos, Moment(1));
        let mut source = DirectSource::new(&repos);
        let run = Validator::new(ValidationConfig::at(Moment(2)))
            .run(&mut source, std::slice::from_ref(&tal));
        // Every org is a CA on the tree (plus IANA + RIRs).
        assert_eq!(run.cas.len(), 6 + world.orgs.len());
        // One VRP per adopted prefix.
        let expected: usize =
            world.orgs.iter().filter(|o| o.adopted_roa).map(|o| o.prefixes.len()).sum();
        assert_eq!(run.vrps.len(), expected);
    }

    #[test]
    fn cross_border_knob_moves_the_needle() {
        let mut low_cfg = Config::small(31);
        low_cfg.cross_border = 0.0;
        low_cfg.anchors = false;
        let low = SyntheticInternet::generate(low_cfg);
        let mismatched = |net: &SyntheticInternet| {
            net.orgs
                .iter()
                .filter(|o| matches!(o.parent, ParentRef::Org(_)))
                .filter(|o| {
                    let ParentRef::Org(p) = o.parent else { unreachable!() };
                    net.orgs[p].country != o.country
                })
                .count()
        };
        assert_eq!(mismatched(&low), 0);
        let mut high_cfg = low_cfg;
        high_cfg.cross_border = 0.9;
        let high = SyntheticInternet::generate(high_cfg);
        assert!(mismatched(&high) > low_cfg.stubs / 3, "got {}", mismatched(&high));
    }
}
