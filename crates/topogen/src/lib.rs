//! Seeded synthetic Internet generation.
//!
//! The paper's Table 4 is built from BGP dumps, RIR allocation files,
//! and RIR AS-to-country mappings. Those datasets are point-in-time
//! snapshots that cannot ship with a reproduction, so this crate grows
//! a synthetic Internet with the same *structure* (see DESIGN.md's
//! substitution table):
//!
//! - an AS graph with Gao–Rexford roles: a tier-1 clique, transit
//!   ISPs attached by preferential attachment, stubs at the edge;
//! - the allocation hierarchy: IANA → five RIRs → ISPs/LIRs →
//!   customers, realised as actual `rpki-ca` authorities so every
//!   downstream experiment (validation, whacking, monitoring) runs on
//!   the generated world unmodified;
//! - country assignments with deliberate **cross-border
//!   suballocation** — the phenomenon Table 4 measures — including
//!   anchor organisations mirroring the paper's own rows (Level3,
//!   Cogent, Verizon, Sprint, …);
//! - partial ROA adoption, calibrated by a single `roa_adoption` knob
//!   (the paper notes production had ~1200–1400 ROAs, under 1% of
//!   projected deployment).
//!
//! Everything is driven by one `u64` seed: same seed, same Internet
//! (DESIGN.md invariant 8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod gen;

pub use data::{rir_of_country, AnchorOrg, ANCHOR_ORGS, RIRS};
pub use gen::{Config, Org, OrgKind, ParentRef, SyntheticInternet};
