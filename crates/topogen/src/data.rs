//! Static reference data: RIR service regions and the paper's Table 4
//! anchor organisations.

/// One Regional Internet Registry and the country codes it serves.
/// The lists are representative subsets, enough to make jurisdiction
/// questions meaningful; adding codes does not change any algorithm.
#[derive(Debug, Clone, Copy)]
pub struct Rir {
    /// Registry name.
    pub name: &'static str,
    /// ISO-3166 alpha-2 codes of member countries.
    pub countries: &'static [&'static str],
    /// First octet of the /8 pool this registry draws from in the
    /// synthetic allocation plan.
    pub base_octet: u8,
}

/// The five RIRs.
pub const RIRS: [Rir; 5] = [
    Rir { name: "ARIN", countries: &["US", "CA", "GU", "AS", "PR"], base_octet: 11 },
    Rir {
        name: "RIPE",
        countries: &["GB", "FR", "NL", "DE", "ES", "IT", "RU", "SE", "YE", "AE", "EU"],
        base_octet: 62,
    },
    Rir {
        name: "APNIC",
        countries: &["CN", "JP", "IN", "AU", "TW", "HK", "PH", "SG", "MH"],
        base_octet: 110,
    },
    Rir {
        name: "LACNIC",
        countries: &["BR", "CO", "EC", "BO", "GT", "HN", "NI", "MX", "AN"],
        base_octet: 160,
    },
    Rir { name: "AFRINIC", countries: &["ZA", "ZW", "NG", "KE", "EG"], base_octet: 196 },
];

/// The RIR index whose region contains `country`, if any.
pub fn rir_of_country(country: &str) -> Option<usize> {
    RIRS.iter().position(|r| r.countries.contains(&country))
}

/// An anchor organisation: a Table 4 row planted verbatim into the
/// synthetic Internet so the jurisdiction analysis reproduces the
/// paper's own examples. `customer_countries` are the countries the
/// paper found covered by each RC.
#[derive(Debug, Clone, Copy)]
pub struct AnchorOrg {
    /// Organisation handle.
    pub name: &'static str,
    /// Home country (determines its RIR).
    pub home: &'static str,
    /// The RC prefix from Table 4.
    pub rc_prefix: &'static str,
    /// Countries of the descendants under that RC (Table 4, col. 3).
    pub customer_countries: &'static [&'static str],
}

/// The rows of the paper's Table 4.
pub const ANCHOR_ORGS: [AnchorOrg; 9] = [
    AnchorOrg {
        name: "Level3",
        home: "US",
        rc_prefix: "8.0.0.0/8",
        customer_countries: &["RU", "FR", "NL", "CN", "TW", "JP", "GU", "AU", "GB", "MX"],
    },
    AnchorOrg {
        name: "Cogent",
        home: "US",
        rc_prefix: "38.0.0.0/8",
        customer_countries: &["GU", "GT", "HK", "GB", "IN", "PH", "MX"],
    },
    AnchorOrg {
        name: "Verizon",
        home: "US",
        rc_prefix: "65.192.0.0/11",
        customer_countries: &["CO", "IT", "AN", "AS", "GB", "EU", "SG"],
    },
    AnchorOrg {
        name: "Sprint-208",
        home: "US",
        rc_prefix: "208.0.0.0/11",
        customer_countries: &["AS", "BO", "CO", "ES", "EC"],
    },
    AnchorOrg {
        name: "Sprint-63",
        home: "US",
        rc_prefix: "63.160.0.0/12",
        customer_countries: &["FR", "CO", "YE", "AN", "HN"],
    },
    AnchorOrg {
        name: "Tata Comm.",
        home: "US",
        rc_prefix: "64.86.0.0/16",
        customer_countries: &["GU", "CO", "MH", "HN", "PH", "ZW"],
    },
    AnchorOrg {
        name: "Columbus",
        home: "US",
        rc_prefix: "63.245.0.0/17",
        customer_countries: &["NI", "GT", "CO", "AN", "HN", "MX"],
    },
    AnchorOrg {
        name: "Servcorp",
        home: "FR",
        rc_prefix: "61.28.192.0/19",
        customer_countries: &["FR", "AE", "CA", "US", "GB"],
    },
    AnchorOrg {
        name: "Resilans",
        home: "SE",
        rc_prefix: "192.71.0.0/16",
        customer_countries: &["US", "IN"],
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rir_lookup() {
        assert_eq!(rir_of_country("US"), Some(0));
        assert_eq!(rir_of_country("FR"), Some(1));
        assert_eq!(rir_of_country("CN"), Some(2));
        assert_eq!(rir_of_country("CO"), Some(3));
        assert_eq!(rir_of_country("ZA"), Some(4));
        assert_eq!(rir_of_country("XX"), None);
    }

    #[test]
    fn rir_pools_are_distinct() {
        let mut octets: Vec<u8> = RIRS.iter().map(|r| r.base_octet).collect();
        octets.sort_unstable();
        octets.dedup();
        assert_eq!(octets.len(), RIRS.len());
    }

    #[test]
    fn rir_pools_never_overlap_anchor_blocks() {
        // Address collisions would hand two organisations the same
        // space (and once did: ARIN's pool used to sit at 8/8, inside
        // Level3's anchor block).
        for rir in &RIRS {
            let pool = ipres::Prefix::v4(rir.base_octet, 0, 0, 0, 8);
            for org in &ANCHOR_ORGS {
                let anchor: ipres::Prefix = org.rc_prefix.parse().unwrap();
                assert!(
                    !pool.overlaps(anchor),
                    "{} pool {pool} overlaps {} anchor {anchor}",
                    rir.name,
                    org.name
                );
            }
        }
    }

    #[test]
    fn anchor_homes_resolve_to_rirs() {
        for org in &ANCHOR_ORGS {
            assert!(rir_of_country(org.home).is_some(), "{} home {}", org.name, org.home);
            // Every anchor has at least one out-of-region customer —
            // otherwise it would not be a Table 4 row.
            let home_rir = rir_of_country(org.home).unwrap();
            assert!(
                org.customer_countries.iter().any(|c| rir_of_country(c) != Some(home_rir)),
                "{} has no cross-region customer",
                org.name
            );
        }
    }

    #[test]
    fn anchor_prefixes_parse() {
        for org in &ANCHOR_ORGS {
            let p: Result<ipres::Prefix, _> = org.rc_prefix.parse();
            assert!(p.is_ok(), "{}: {}", org.name, org.rc_prefix);
        }
    }
}
