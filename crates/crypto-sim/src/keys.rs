//! Key pairs and the key-registry signature scheme.
//!
//! ## The substitution, precisely
//!
//! Production RPKI uses RSA. The simulator replaces it with a scheme
//! whose security argument is *capability-based*: a [`KeyPair`] holds a
//! 32-byte secret; its [`PublicKey`] carries `key_id = SHA-256(secret)`.
//! A signature over message `m` is the tag `SHA-256(secret ‖ m)` plus
//! the signer's key id. Verifying requires recomputing the tag, which
//! requires the secret — so [`PublicKey::verify`] consults a process-wide
//! **key registry** mapping `key_id → secret`, populated at key
//! generation.
//!
//! Within the simulation this gives exactly RSA's interface guarantees:
//!
//! - No code path can mint a valid `(key_id, tag)` pair without having
//!   held the `KeyPair` (secrets are never exposed; `KeyPair` is not
//!   `Clone`-able into attacker hands except by explicitly moving it —
//!   which *is* the paper's "compromised authority" threat model).
//! - Tampering with a signed message invalidates the tag (SHA-256).
//! - Two distinct keys collide with probability 2^-256.
//!
//! What it deliberately does not give: security against an adversary
//! outside the process inspecting registry memory. That adversary is
//! outside every threat model this workspace simulates.
//!
//! Key generation is deterministic from a caller-supplied seed so that
//! every experiment is reproducible (DESIGN.md invariant 8).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use crate::sha256::{sha256, Digest, Sha256};

/// Identifies a key: the SHA-256 of its secret (analogous to an SKI —
/// Subject Key Identifier — in X.509).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct KeyId(pub Digest);

impl KeyId {
    /// Short hex form for logs.
    pub fn short(&self) -> String {
        self.0.short()
    }
}

impl fmt::Display for KeyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key:{}", self.0.short())
    }
}

impl fmt::Debug for KeyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeyId({})", self.0.short())
    }
}

/// The public half of a key pair. Freely copyable; embedded in
/// certificates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey {
    id: KeyId,
}

impl PublicKey {
    /// Rebuilds a public key from its identifier. Public keys carry no
    /// secret material, so this is safe: verification still requires the
    /// registry to know the secret behind `id`.
    #[inline]
    pub const fn from_id(id: KeyId) -> Self {
        PublicKey { id }
    }

    /// The key identifier.
    #[inline]
    pub const fn id(&self) -> KeyId {
        self.id
    }

    /// Verifies `sig` over `message` under this key.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> Result<(), SignatureError> {
        if sig.key != self.id {
            return Err(SignatureError::WrongKey { expected: self.id, got: sig.key });
        }
        let secret = registry_lookup(self.id).ok_or(SignatureError::UnknownKey(self.id))?;
        if tag(&secret, message) != sig.tag {
            return Err(SignatureError::BadSignature);
        }
        Ok(())
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({})", self.id.short())
    }
}

/// A private signing capability. Holding a `KeyPair` *is* holding the
/// authority — handing one to attack code models a compromised or
/// coerced authority, the paper's flipped threat model.
pub struct KeyPair {
    public: PublicKey,
    secret: [u8; 32],
}

impl fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the secret.
        write!(f, "KeyPair({})", self.public.id.short())
    }
}

/// Global counter mixed into seeds so `KeyPair::generate` (the
/// convenience constructor) never repeats within a process.
static GEN_COUNTER: AtomicU64 = AtomicU64::new(0);

impl KeyPair {
    /// Deterministically derives a key pair from a seed string.
    ///
    /// Experiments derive all keys from stable names ("ARIN", "Sprint",
    /// "attacker-0") so reruns are byte-identical.
    pub fn from_seed(seed: &str) -> Self {
        let mut h = Sha256::new();
        h.update(b"rpkisim-key-v1:");
        h.update(seed.as_bytes());
        let secret = h.finalize().0;
        Self::from_secret(secret)
    }

    /// A fresh key pair with a process-unique (but run-deterministic)
    /// seed. Prefer [`KeyPair::from_seed`] in experiments.
    pub fn generate() -> Self {
        let n = GEN_COUNTER.fetch_add(1, Ordering::Relaxed);
        Self::from_seed(&format!("anonymous-{n}"))
    }

    fn from_secret(secret: [u8; 32]) -> Self {
        let id = KeyId(sha256(&secret));
        registry_insert(id, secret);
        KeyPair { public: PublicKey { id }, secret }
    }

    /// The public half.
    #[inline]
    pub const fn public(&self) -> PublicKey {
        self.public
    }

    /// The key identifier.
    #[inline]
    pub const fn id(&self) -> KeyId {
        self.public.id
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> Signature {
        Signature { key: self.public.id, tag: tag(&self.secret, message) }
    }
}

/// A signature: the signing key's id plus the authentication tag.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    key: KeyId,
    tag: Digest,
}

impl Signature {
    /// The id of the key that produced this signature.
    #[inline]
    pub const fn key(&self) -> KeyId {
        self.key
    }

    /// Splits into `(key id, tag)` for wire encoding.
    #[inline]
    pub const fn to_parts(&self) -> (KeyId, Digest) {
        (self.key, self.tag)
    }

    /// Rebuilds a signature from wire parts. Cannot be used to forge:
    /// verification recomputes the tag from the registry secret, so an
    /// invented tag simply fails [`PublicKey::verify`].
    #[inline]
    pub const fn from_parts(key: KeyId, tag: Digest) -> Self {
        Signature { key, tag }
    }

    /// A deliberately corrupted copy of this signature (flips one tag
    /// bit). Used by fault-injection tests and the Side Effect 6/7
    /// experiments.
    pub fn corrupted(&self) -> Signature {
        let mut tag = self.tag;
        tag.0[0] ^= 0x01;
        Signature { key: self.key, tag }
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature({} tag:{})", self.key.short(), self.tag.short())
    }
}

/// Why a signature failed to verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureError {
    /// The signature names a different key than the verifying one.
    WrongKey {
        /// The verifying public key's id.
        expected: KeyId,
        /// The key id the signature names.
        got: KeyId,
    },
    /// The key id is not in the registry (never generated in this
    /// process — a forged or garbage key id).
    UnknownKey(KeyId),
    /// The tag did not match: message tampered or tag forged.
    BadSignature,
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureError::WrongKey { expected, got } => {
                write!(f, "signature by {got}, expected {expected}")
            }
            SignatureError::UnknownKey(id) => write!(f, "unknown key {id}"),
            SignatureError::BadSignature => f.write_str("bad signature"),
        }
    }
}

impl std::error::Error for SignatureError {}

fn tag(secret: &[u8; 32], message: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(b"rpkisim-sig-v1:");
    h.update(secret);
    h.update(message);
    h.finalize()
}

fn registry() -> &'static Mutex<HashMap<KeyId, [u8; 32]>> {
    static REGISTRY: OnceLock<Mutex<HashMap<KeyId, [u8; 32]>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn registry_insert(id: KeyId, secret: [u8; 32]) {
    registry().lock().expect("key registry poisoned").insert(id, secret);
}

fn registry_lookup(id: KeyId) -> Option<[u8; 32]> {
    registry().lock().expect("key registry poisoned").get(&id).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let kp = KeyPair::from_seed("sprint");
        let sig = kp.sign(b"authorize AS1239 for 63.160.0.0/12");
        assert_eq!(kp.public().verify(b"authorize AS1239 for 63.160.0.0/12", &sig), Ok(()));
    }

    #[test]
    fn tampered_message_rejected() {
        let kp = KeyPair::from_seed("sprint");
        let sig = kp.sign(b"maxlen 24");
        assert_eq!(kp.public().verify(b"maxlen 25", &sig), Err(SignatureError::BadSignature));
    }

    #[test]
    fn corrupted_signature_rejected() {
        let kp = KeyPair::from_seed("sprint");
        let sig = kp.sign(b"payload").corrupted();
        assert_eq!(kp.public().verify(b"payload", &sig), Err(SignatureError::BadSignature));
    }

    #[test]
    fn cross_key_verification_rejected() {
        let a = KeyPair::from_seed("arin");
        let b = KeyPair::from_seed("ripe");
        let sig = a.sign(b"payload");
        assert!(matches!(
            b.public().verify(b"payload", &sig),
            Err(SignatureError::WrongKey { .. })
        ));
    }

    #[test]
    fn deterministic_from_seed() {
        let a = KeyPair::from_seed("etb");
        let b = KeyPair::from_seed("etb");
        assert_eq!(a.id(), b.id());
        // Identical keys produce identical signatures (the scheme is
        // deterministic, which experiments rely on).
        assert_eq!(a.sign(b"m"), b.sign(b"m"));
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        assert_ne!(KeyPair::from_seed("a").id(), KeyPair::from_seed("b").id());
    }

    #[test]
    fn generate_never_repeats() {
        let a = KeyPair::generate();
        let b = KeyPair::generate();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn signature_binds_key_identity() {
        let kp = KeyPair::from_seed("continental");
        let sig = kp.sign(b"m");
        assert_eq!(sig.key(), kp.id());
    }

    #[test]
    fn debug_never_leaks_secret() {
        let kp = KeyPair::from_seed("secret-holder");
        let shown = format!("{kp:?}");
        assert!(shown.starts_with("KeyPair("));
        assert_eq!(shown.len(), "KeyPair(".len() + 8 + 1);
    }
}
