//! Deterministic crypto substrate for the `rpki-risk` simulator.
//!
//! The HotNets '13 attacks are *authorization-semantics* attacks: a
//! manipulator never breaks a cipher, it (ab)uses powers the RPKI design
//! legitimately grants to authorities. What the rest of the workspace
//! needs from "crypto" is therefore exactly three properties:
//!
//! 1. **Integrity** — any bit-flip in a published object is detected
//!    (Side Effect 6/7 hinge on corrupted or missing objects).
//! 2. **Unforgeability within the simulation** — only the holder of a
//!    private key handle can produce a signature that verifies under the
//!    corresponding public key.
//! 3. **Key identity & rollover** — certificates name keys; RFC 6489
//!    rollover replaces a CA's key pair without renaming its objects.
//!
//! Module layout:
//!
//! - [`mod@sha256`] — a real, test-vectored SHA-256 (FIPS 180-4). Digests
//!   are real so corruption detection behaves exactly like production.
//! - [`keys`] — key pairs, key identifiers, and the signing API. The
//!   signature scheme is a *key-registry MAC*: `sig = SHA-256(secret ‖
//!   message)`, verifiable because the public key commits to the secret
//!   via `key_id = SHA-256(secret)` and verification recomputes the tag
//!   through the registry. This substitution (documented in DESIGN.md)
//!   preserves the trust/delegation semantics the paper analyses while
//!   keeping the workspace free of external crypto dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod keys;
pub mod sha256;

pub use keys::{KeyId, KeyPair, PublicKey, Signature, SignatureError};
pub use sha256::{sha256, Digest};
