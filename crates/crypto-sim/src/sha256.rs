//! SHA-256 (FIPS 180-4), implemented from the specification.
//!
//! The simulator uses real digests so that object corruption — the
//! trigger for the paper's Side Effects 6 and 7 — is detected with
//! production fidelity: flip any bit of a published ROA and the relying
//! party's manifest/hash check fails, exactly as in a deployment.
//!
//! The implementation is the straightforward 64-round compression
//! function; unit tests pin it to the NIST test vectors.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A 256-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The digest as raw bytes.
    #[inline]
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lower-case hex encoding.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// A short 8-hex-digit form for human-facing logs.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_owned()
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", self.short())
    }
}

/// Error parsing a [`Digest`] from hex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestParseError;

impl fmt::Display for DigestParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid digest hex (want 64 hex chars)")
    }
}

impl std::error::Error for DigestParseError {}

impl FromStr for Digest {
    type Err = DigestParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 64 {
            return Err(DigestParseError);
        }
        let mut out = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hex = std::str::from_utf8(chunk).map_err(|_| DigestParseError)?;
            out[i] = u8::from_str_radix(hex, 16).map_err(|_| DigestParseError)?;
        }
        Ok(Digest(out))
    }
}

/// Round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state: first 32 bits of the fractional parts of the
/// square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Streaming SHA-256 state. Most callers want the one-shot [`sha256`].
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes buffered toward the next 64-byte block.
    buffer: [u8; 64],
    buffered: usize,
    /// Total message length in bytes.
    length: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: H0, buffer: [0; 64], buffered: 0, length: 0 }
    }

    /// Feeds bytes into the hash.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length += data.len() as u64;
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Finishes the hash and returns the digest.
    pub fn finalize(mut self) -> Digest {
        // Capture the true message bit length before padding bytes pass
        // through `update` (which also counts them — harmlessly, since
        // `length` is not read again).
        let bit_len = self.length * 8;
        // Padding: 0x80, zeros to 56 (mod 64), 64-bit big-endian length.
        let rem = (self.buffered + 1) % 64;
        let zeros = if rem <= 56 { 56 - rem } else { 120 - rem };
        let mut pad = Vec::with_capacity(1 + zeros + 8);
        pad.push(0x80);
        pad.resize(1 + zeros, 0);
        pad.extend_from_slice(&bit_len.to_be_bytes());
        self.update(&pad);
        debug_assert_eq!(self.buffered, 0);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NIST FIPS 180-4 / de-facto standard vectors.
    #[test]
    fn empty_string() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0u8..=255).cycle().take(300).collect();
        let want = sha256(&data);
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 128, 200, 300] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths straddling the 55/56/64-byte padding boundaries.
        let known = [
            (55usize, "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318"),
            (56usize, "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"),
            (57usize, "f13b2d724659eb3bf47f2dd6af1accc87b81f09f59f2b75e5c0bed6589dfe8c6"),
            (64usize, "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"),
        ];
        for (len, hex) in known {
            let data = vec![b'a'; len];
            assert_eq!(sha256(&data).to_hex(), hex, "len {len}");
        }
    }

    #[test]
    fn digest_hex_round_trip() {
        let d = sha256(b"round trip");
        let parsed: Digest = d.to_hex().parse().unwrap();
        assert_eq!(parsed, d);
        assert!("zz".parse::<Digest>().is_err());
        assert!("00".repeat(31).parse::<Digest>().is_err());
    }

    #[test]
    fn short_form() {
        let d = sha256(b"abc");
        assert_eq!(d.short(), "ba7816bf");
    }
}
