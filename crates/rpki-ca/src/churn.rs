//! The CA churn engine: realistic, seeded object churn.
//!
//! Production repositories are never quiet. CAs re-sign their object
//! sets on a cadence, manifests and CRLs refresh on their own clocks,
//! and operators add and withdraw ROAs continuously — RIR-scale
//! publication points advance their RRDP serial many times per hour
//! with no attack in sight. Every earlier PR drove repository writes as
//! a *side effect* of campaign faults; this module makes background
//! churn a first-class seeded workload, so the publication-server
//! policies in `rpki-repo::pubd` can be measured under the load they
//! were designed for.
//!
//! The engine is deterministic end to end: every decision derives from
//! a SplitMix64 chain keyed on `(seed, step, CA index)`, so two engines
//! built with the same seed drive two worlds through byte-identical
//! schedules — the property the compaction/retention equivalence
//! proptest leans on. The engine itself never touches a repository; it
//! mutates [`CertAuthority`] state and reports which authorities
//! changed, and the caller republishes those snapshots (layering:
//! `rpki-ca` cannot depend on `rpki-repo`).

use std::collections::BTreeMap;

use ipres::Asn;
use rpki_objects::{Moment, RoaPrefix};
use serde::Serialize;

use crate::authority::CertAuthority;

/// Per-step churn rates and cadences, applied independently to every
/// CA the engine drives. Rates are per-mille (probability in 1/1000)
/// per CA per step; cadences are in steps, `0` disabling the behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ChurnConfig {
    /// Per-mille chance a CA renews one existing ROA this step (same
    /// content, fresh validity and EE key — the old file disappears,
    /// a new one appears).
    pub renew_per_mille: u32,
    /// Per-mille chance a CA mints one additional ROA this step.
    pub add_per_mille: u32,
    /// Per-mille chance a CA withdraws one engine-minted ROA this step
    /// (only objects the engine added are withdrawn, so a scenario's
    /// hand-built truth assertions stay stable).
    pub withdraw_per_mille: u32,
    /// Re-publish (fresh manifest + CRL) every this many steps even if
    /// no object changed — the manifest/CRL refresh clock. `0` never.
    pub refresh_every: u64,
    /// Renew *every* issued ROA every this many steps — the bulk
    /// re-sign cadence. Staggered per CA so the whole world does not
    /// re-sign on the same step. `0` never.
    pub resign_every: u64,
}

impl ChurnConfig {
    /// A steady production-like mix: occasional renewals, slow
    /// add/withdraw drift, a manifest refresh clock, and a long
    /// re-sign cadence.
    pub fn steady() -> Self {
        ChurnConfig {
            renew_per_mille: 100,
            add_per_mille: 30,
            withdraw_per_mille: 20,
            refresh_every: 8,
            resign_every: 64,
        }
    }

    /// Renewals only, at `per_mille` per CA per step: object contents
    /// never change set-shape, so the client-observed VRP set is
    /// invariant. The campaign-safe preset.
    pub fn renew_only(per_mille: u32) -> Self {
        ChurnConfig {
            renew_per_mille: per_mille,
            add_per_mille: 0,
            withdraw_per_mille: 0,
            refresh_every: 0,
            resign_every: 0,
        }
    }

    /// The rate benches call "`pct`% churn": every step, `pct`% of CAs
    /// renew one ROA. Saturates at 100%.
    pub fn renew_rate_pct(pct: u32) -> Self {
        ChurnConfig::renew_only(pct.min(100) * 10)
    }
}

/// What one [`ChurnEngine::step_with`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct ChurnReport {
    /// The step number this report describes (0-based).
    pub step: u64,
    /// Indices (iteration order) of the CAs whose publication snapshot
    /// changed — the set the caller must republish.
    pub touched: Vec<usize>,
    /// Individual ROAs renewed (excluding bulk re-signs).
    pub renewed: u64,
    /// ROAs minted.
    pub added: u64,
    /// Engine-minted ROAs withdrawn.
    pub withdrawn: u64,
    /// CAs republished purely for the manifest/CRL refresh clock.
    pub refreshed: u64,
    /// CAs that bulk re-signed their whole ROA set.
    pub resigned: u64,
}

impl ChurnReport {
    /// Total object-level operations this step.
    pub fn operations(&self) -> u64 {
        self.renewed + self.added + self.withdrawn + self.resigned
    }
}

/// SplitMix64 — the workspace's seeded stateless mixer.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic churn-decision draw: one u64 per
/// `(seed, step, CA, salt)` tuple.
fn draw(seed: u64, step: u64, ca: usize, salt: u64) -> u64 {
    splitmix64(seed ^ splitmix64(step ^ splitmix64(((ca as u64) << 8) | salt)))
}

/// The seeded churn driver. Holds no references to the CAs it drives:
/// each [`step_with`](ChurnEngine::step_with) call borrows them afresh,
/// so the same engine type drives `SyntheticRpki`'s CA vector and
/// `ModelRpki`'s named authorities alike.
#[derive(Debug, Clone)]
pub struct ChurnEngine {
    seed: u64,
    cfg: ChurnConfig,
    step: u64,
    /// `CA index → files this engine minted there` (withdraw candidates).
    minted: BTreeMap<usize, Vec<String>>,
    /// Monotone counter decorrelating successive mints.
    minted_counter: u64,
}

impl ChurnEngine {
    /// An engine at step 0.
    pub fn new(seed: u64, cfg: ChurnConfig) -> Self {
        ChurnEngine { seed, cfg, step: 0, minted: BTreeMap::new(), minted_counter: 0 }
    }

    /// The configured rates.
    pub fn config(&self) -> ChurnConfig {
        self.cfg
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Advances one step over the given authorities (iteration order is
    /// the CA index the schedule is keyed on), applying the configured
    /// mixes, and reports which CAs changed. The caller republishes the
    /// touched CAs' publication snapshots.
    pub fn step_with<'a, I>(&mut self, cas: I, now: Moment) -> ChurnReport
    where
        I: IntoIterator<Item = &'a mut CertAuthority>,
    {
        let step = self.step;
        self.step += 1;
        let mut report = ChurnReport { step, ..ChurnReport::default() };
        for (idx, ca) in cas.into_iter().enumerate() {
            let mut touched = false;

            if self.cfg.resign_every > 0
                && (step + idx as u64).is_multiple_of(self.cfg.resign_every)
            {
                let files: Vec<String> = ca.issued_roas().map(|r| r.file_name()).collect();
                for file in files {
                    let renewed =
                        ca.renew_roa(&file, now).expect("renewing an issued ROA cannot fail");
                    self.rename_minted(idx, &file, renewed.file_name());
                }
                report.resigned += 1;
                touched = true;
            } else if draw(self.seed, step, idx, 1) % 1000 < u64::from(self.cfg.renew_per_mille) {
                let files: Vec<String> = ca.issued_roas().map(|r| r.file_name()).collect();
                if !files.is_empty() {
                    let pick = draw(self.seed, step, idx, 2) as usize % files.len();
                    let file = &files[pick];
                    let renewed =
                        ca.renew_roa(file, now).expect("renewing an issued ROA cannot fail");
                    self.rename_minted(idx, file, renewed.file_name());
                    report.renewed += 1;
                    touched = true;
                }
            }

            if draw(self.seed, step, idx, 3) % 1000 < u64::from(self.cfg.add_per_mille) {
                if let Some(prefix) = self.mint_prefix(ca, idx) {
                    let asn = Asn(3_000_000_000 + idx as u32);
                    let roa = ca
                        .issue_roa(asn, vec![RoaPrefix::exact(prefix)], now)
                        .expect("minting inside the CA's own resources cannot fail");
                    self.minted.entry(idx).or_default().push(roa.file_name());
                    report.added += 1;
                    touched = true;
                }
            }

            if draw(self.seed, step, idx, 4) % 1000 < u64::from(self.cfg.withdraw_per_mille) {
                if let Some(files) = self.minted.get_mut(&idx) {
                    if let Some(file) = files.pop() {
                        ca.withdraw(&file).expect("engine-minted file must exist");
                        report.withdrawn += 1;
                        touched = true;
                    }
                }
            }

            if !touched
                && self.cfg.refresh_every > 0
                && (step + idx as u64).is_multiple_of(self.cfg.refresh_every)
            {
                // No object changed, but the refresh clock fired: the
                // caller's republish mints a fresh manifest and CRL —
                // exactly the delta a production refresh produces.
                report.refreshed += 1;
                touched = true;
            }

            if touched {
                report.touched.push(idx);
            }
        }
        report
    }

    /// Picks a deterministic subprefix of the CA's first resource block
    /// to mint a ROA for. Drawn from the upper half of an up-to-8-bit
    /// expansion so engine mints stay clear of the low-offset addresses
    /// fixtures hand out. `None` if the CA holds no prefixes.
    fn mint_prefix(&mut self, ca: &CertAuthority, idx: usize) -> Option<ipres::Prefix> {
        let base = *ca.resources().to_prefixes().first()?;
        let extra = (32u8.saturating_sub(base.len())).min(8);
        let len = base.len() + extra;
        let slots = 1u64 << extra;
        let half = (slots / 2).max(1);
        let offset = (half + (self.minted_counter ^ draw(self.seed, 0, idx, 5)) % half) % slots;
        self.minted_counter += 1;
        base.subprefixes(len).nth(offset as usize)
    }

    /// Keeps the withdraw-candidate list pointing at the renamed file a
    /// renewal produced.
    fn rename_minted(&mut self, idx: usize, old: &str, new: String) {
        if let Some(files) = self.minted.get_mut(&idx) {
            if let Some(slot) = files.iter_mut().find(|f| *f == old) {
                *slot = new;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipres::ResourceSet;
    use rpki_objects::{RepoUri, Span};

    fn ca(idx: usize) -> CertAuthority {
        let name = format!("ca{idx}");
        let sia = RepoUri::new("rpki.test.example", &["repo", &name]);
        let mut ca =
            CertAuthority::new(&format!("churn-ca-{idx}"), &format!("churn-key-{idx}"), sia);
        let resources: ResourceSet =
            format!("10.{idx}.0.0/24").parse::<ipres::Prefix>().unwrap().into();
        ca.certify_self(resources, Moment(0), Span::days(3650));
        for j in 0..3u8 {
            let prefix: ipres::Prefix = format!("10.{idx}.0.{j}/32").parse().unwrap();
            ca.issue_roa(Asn(65000 + idx as u32), vec![RoaPrefix::exact(prefix)], Moment(0))
                .unwrap();
        }
        ca
    }

    #[test]
    fn identical_seeds_drive_identical_schedules() {
        let mut a = [ca(0), ca(1), ca(2)];
        let mut b = [ca(0), ca(1), ca(2)];
        let mut ea = ChurnEngine::new(7, ChurnConfig::steady());
        let mut eb = ChurnEngine::new(7, ChurnConfig::steady());
        for step in 0..24 {
            let now = Moment(step * 86_400);
            let ra = ea.step_with(a.iter_mut(), now);
            let rb = eb.step_with(b.iter_mut(), now);
            assert_eq!(ra, rb, "same seed, same schedule");
        }
        for (x, y) in a.iter_mut().zip(b.iter_mut()) {
            let now = Moment(99 * 86_400);
            assert_eq!(
                x.publication_snapshot(now)
                    .files
                    .iter()
                    .map(|(n, _)| n.clone())
                    .collect::<Vec<_>>(),
                y.publication_snapshot(now)
                    .files
                    .iter()
                    .map(|(n, _)| n.clone())
                    .collect::<Vec<_>>(),
                "identically churned CAs publish identical file sets"
            );
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = [ca(0), ca(1), ca(2), ca(3)];
        let mut b = [ca(0), ca(1), ca(2), ca(3)];
        let mut ea = ChurnEngine::new(1, ChurnConfig::steady());
        let mut eb = ChurnEngine::new(2, ChurnConfig::steady());
        let mut diverged = false;
        for step in 0..16 {
            let now = Moment(step * 86_400);
            if ea.step_with(a.iter_mut(), now) != eb.step_with(b.iter_mut(), now) {
                diverged = true;
            }
        }
        assert!(diverged, "distinct seeds must produce distinct schedules");
    }

    #[test]
    fn renew_only_preserves_the_roa_population() {
        let mut cas = [ca(0), ca(1)];
        let before: Vec<usize> = cas.iter().map(|c| c.issued_roas().count()).collect();
        let mut engine = ChurnEngine::new(3, ChurnConfig::renew_only(1000));
        for step in 0..12 {
            let report = engine.step_with(cas.iter_mut(), Moment(step * 86_400));
            assert_eq!(report.added, 0);
            assert_eq!(report.withdrawn, 0);
            assert_eq!(report.renewed, 2, "per-mille 1000 renews every CA every step");
        }
        let after: Vec<usize> = cas.iter().map(|c| c.issued_roas().count()).collect();
        assert_eq!(before, after, "renewals must not change the population");
    }

    #[test]
    fn withdraw_only_claims_engine_minted_objects() {
        let mut cas = [ca(0)];
        let fixture_files: Vec<String> = cas[0].issued_roas().map(|r| r.file_name()).collect();
        let cfg = ChurnConfig {
            renew_per_mille: 0,
            add_per_mille: 1000,
            withdraw_per_mille: 1000,
            refresh_every: 0,
            resign_every: 0,
        };
        let mut engine = ChurnEngine::new(5, cfg);
        let mut added = 0u64;
        let mut withdrawn = 0u64;
        for step in 0..10 {
            let report = engine.step_with(cas.iter_mut(), Moment(step * 86_400));
            added += report.added;
            withdrawn += report.withdrawn;
        }
        assert!(added > 0);
        assert!(withdrawn > 0);
        for file in &fixture_files {
            assert!(
                cas[0].issued_roas().any(|r| r.file_name() == *file),
                "fixture object {file} must survive engine withdrawals"
            );
        }
    }

    #[test]
    fn resign_cadence_renews_the_full_set() {
        let mut cas = [ca(0)];
        let cfg = ChurnConfig {
            renew_per_mille: 0,
            add_per_mille: 0,
            withdraw_per_mille: 0,
            refresh_every: 0,
            resign_every: 4,
        };
        let mut engine = ChurnEngine::new(9, cfg);
        let before: Vec<String> = cas[0].issued_roas().map(|r| r.file_name()).collect();
        // Step 0: (0 + 0) % 4 == 0 — the single CA re-signs.
        let report = engine.step_with(cas.iter_mut(), Moment(86_400));
        assert_eq!(report.resigned, 1);
        let after: Vec<String> = cas[0].issued_roas().map(|r| r.file_name()).collect();
        assert_eq!(before.len(), after.len());
        for file in &before {
            assert!(!after.contains(file), "every file must be re-signed under a fresh EE key");
        }
    }
}
