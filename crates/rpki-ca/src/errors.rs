//! CA engine errors.

use std::fmt;

use ipres::ResourceSet;

/// Why an issuance request was refused by an *honest* CA. (Misbehaving
/// CAs in this workspace never need to violate these rules: every attack
/// in the paper stays within the authority's legitimate powers.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IssueError {
    /// This CA holds no certificate yet (its parent has not certified
    /// it), so it cannot issue.
    NoCertificate,
    /// The requested resources are not contained in this CA's own
    /// allocation (RFC 3779 would invalidate the child anyway).
    ResourcesNotHeld {
        /// The portion of the request outside the CA's allocation.
        excess: ResourceSet,
    },
    /// The requested validity window extends beyond the CA's own
    /// certificate validity.
    ValidityOutlivesIssuer,
    /// No issued object with the given file name exists.
    NoSuchObject(String),
}

impl fmt::Display for IssueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IssueError::NoCertificate => f.write_str("CA holds no certificate"),
            IssueError::ResourcesNotHeld { excess } => {
                write!(f, "requested resources not held: excess {excess}")
            }
            IssueError::ValidityOutlivesIssuer => {
                f.write_str("requested validity outlives issuer certificate")
            }
            IssueError::NoSuchObject(name) => write!(f, "no issued object named {name:?}"),
        }
    }
}

impl std::error::Error for IssueError {}
