//! The RPKI certification authority engine.
//!
//! A [`CertAuthority`] owns a key pair, holds the resource certificate
//! its parent issued to it, and issues objects of its own: child RCs
//! (suballocation), ROAs, a CRL, and a manifest. Its *publication
//! snapshot* is the set of files it currently serves at its publication
//! point — the unit the repository crate stores and relying parties
//! fetch.
//!
//! The engine exposes both halves of the paper's threat model:
//!
//! - **Honest operation** — issuance with RFC 3779 containment checks,
//!   CRL-based revocation, renewal, manifest regeneration, and RFC 6489
//!   key rollover.
//! - **Misbehaviour** — the same authority powers, used abusively:
//!   [`CertAuthority::withdraw`] deletes an object *without* a CRL entry
//!   (Side Effect 2, stealthy revocation); reissuing a child RC for the
//!   same subject key with shrunken resources *overwrites* the old one
//!   (Side Effect 3, targeted whacking). The attack planners in
//!   `rpki-attacks` drive exactly these methods — misbehaviour is not a
//!   separate code path, which is the paper's point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authority;
pub mod churn;
pub mod errors;

pub use authority::{AuthoritySummary, CertAuthority, PublicationSnapshot, RolloverReport};
pub use churn::{ChurnConfig, ChurnEngine, ChurnReport};
pub use errors::IssueError;
