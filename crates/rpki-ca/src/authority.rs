//! The certification authority state machine.

use std::collections::BTreeMap;

use ipres::{Asn, AsnSet, ResourceSet};
use rpki_objects::{
    CertData, Crl, CrlData, Encode, Manifest, ManifestData, Moment, RepoUri, ResourceCert, Roa,
    RoaData, RoaPrefix, RpkiObject, Span, Validity,
};
use rpkisim_crypto::{KeyId, KeyPair, PublicKey};
use serde::Serialize;

use crate::errors::IssueError;

/// Everything a CA currently serves at its publication point: issued
/// child certificates, issued ROAs, the current CRL, and the manifest
/// committing to all of them.
#[derive(Debug, Clone)]
pub struct PublicationSnapshot {
    /// `(file name, object)` pairs, manifest last.
    pub files: Vec<(String, RpkiObject)>,
}

impl PublicationSnapshot {
    /// Looks up an object by file name.
    pub fn get(&self, name: &str) -> Option<&RpkiObject> {
        self.files.iter().find(|(n, _)| n == name).map(|(_, o)| o)
    }

    /// The snapshot's manifest.
    pub fn manifest(&self) -> Option<&Manifest> {
        self.files.iter().rev().find_map(|(_, o)| match o {
            RpkiObject::Manifest(m) => Some(m),
            _ => None,
        })
    }
}

/// Result of an RFC 6489 key rollover.
#[derive(Debug)]
pub struct RolloverReport {
    /// The CA's previous key id (now retired).
    pub old_key: KeyId,
    /// The CA's new public key. The parent must issue a new certificate
    /// for it before the CA can publish again.
    pub new_key: PublicKey,
    /// How many issued objects were re-signed under the new key.
    pub resigned_objects: usize,
}

/// A certification authority.
///
/// Construction gives an un-certified CA (it has a key but no
/// resources). A trust anchor certifies itself via
/// [`CertAuthority::certify_self`]; everyone else receives a certificate
/// from a parent CA's [`CertAuthority::issue_cert`] and installs it with
/// [`CertAuthority::install_cert`].
pub struct CertAuthority {
    handle: String,
    key: KeyPair,
    /// The RC our parent issued to us (self-signed for a TA).
    cert: Option<ResourceCert>,
    /// Our publication directory (where objects *we issue* live).
    sia: RepoUri,
    next_serial: u64,
    crl_number: u64,
    manifest_number: u64,
    /// Child RCs we issued, keyed by subject key (file-name identity).
    issued_certs: BTreeMap<KeyId, ResourceCert>,
    /// ROAs we issued, keyed by file name.
    issued_roas: BTreeMap<String, Roa>,
    /// Serials revoked via CRL (the transparent path).
    revoked: Vec<u64>,
    /// Default lifetime for issued objects.
    default_lifetime: Span,
    /// CRL/manifest refresh interval.
    refresh: Span,
    /// Counter for deterministic one-time EE key seeds.
    ee_counter: u64,
}

impl CertAuthority {
    /// A new, un-certified CA with a deterministic key derived from
    /// `key_seed`.
    pub fn new(handle: &str, key_seed: &str, sia: RepoUri) -> Self {
        CertAuthority {
            handle: handle.to_owned(),
            key: KeyPair::from_seed(key_seed),
            cert: None,
            sia,
            next_serial: 1,
            crl_number: 0,
            manifest_number: 0,
            issued_certs: BTreeMap::new(),
            issued_roas: BTreeMap::new(),
            revoked: Vec::new(),
            default_lifetime: Span::days(365),
            refresh: Span::days(1),
            ee_counter: 0,
        }
    }

    /// Makes this CA a trust anchor over `resources`, self-signing its
    /// certificate.
    pub fn certify_self(&mut self, resources: ResourceSet, now: Moment, lifetime: Span) {
        let data = CertData {
            serial: self.bump_serial(),
            subject: self.handle.clone(),
            subject_key: self.key.public(),
            resources,
            as_resources: AsnSet::empty(),
            validity: Validity::starting(now, lifetime),
            issuer_key: self.key.id(),
            sia: self.sia.clone(),
            crl_dp: None,
        };
        self.cert = Some(ResourceCert::sign(data, &self.key));
    }

    /// The CA's handle (reporting only).
    pub fn handle(&self) -> &str {
        &self.handle
    }

    /// The CA's current public key.
    pub fn public_key(&self) -> PublicKey {
        self.key.public()
    }

    /// The CA's key id.
    pub fn key_id(&self) -> KeyId {
        self.key.id()
    }

    /// The CA's publication directory.
    pub fn sia(&self) -> &RepoUri {
        &self.sia
    }

    /// The certificate this CA currently holds, if any.
    pub fn cert(&self) -> Option<&ResourceCert> {
        self.cert.as_ref()
    }

    /// The resources this CA may allocate (empty if uncertified).
    pub fn resources(&self) -> ResourceSet {
        self.cert.as_ref().map(|c| c.data().resources.clone()).unwrap_or_default()
    }

    /// Where this CA publishes its CRL.
    pub fn crl_uri(&self) -> RepoUri {
        self.sia.join(&format!("{}.crl", self.key.id().short()))
    }

    /// Sets the lifetime of subsequently issued certificates and ROAs
    /// (default 365 days; always clamped to this CA's own window).
    pub fn set_default_lifetime(&mut self, lifetime: Span) {
        self.default_lifetime = lifetime;
    }

    /// Sets the CRL/manifest refresh interval — how long published
    /// CRLs and manifests stay fresh before relying parties treat them
    /// as stale (default 1 day). Short intervals are one of the paper's
    /// operational hazards: miss one refresh and Side Effect 6 fires.
    pub fn set_refresh_interval(&mut self, refresh: Span) {
        self.refresh = refresh;
    }

    /// Installs a certificate received from the parent. Replaces any
    /// previous one (renewal, rollover, or a parent's overwrite).
    pub fn install_cert(&mut self, cert: ResourceCert) {
        assert_eq!(
            cert.data().subject_key.id(),
            self.key.id(),
            "installed certificate is for a different key"
        );
        self.cert = Some(cert);
    }

    fn bump_serial(&mut self) -> u64 {
        let s = self.next_serial;
        self.next_serial += 1;
        s
    }

    fn require_cert(&self) -> Result<&ResourceCert, IssueError> {
        self.cert.as_ref().ok_or(IssueError::NoCertificate)
    }

    fn check_resources(&self, wanted: &ResourceSet) -> Result<(), IssueError> {
        let held = self.resources();
        if held.contains_set(wanted) {
            Ok(())
        } else {
            Err(IssueError::ResourcesNotHeld { excess: wanted.difference(&held) })
        }
    }

    /// The validity window for a newly issued object: `default_lifetime`
    /// from `now`, clamped to this CA's own certificate window (an
    /// issued object must not outlive its issuer). Errors if `now` falls
    /// outside the CA's own validity entirely.
    fn child_validity(&self, now: Moment) -> Result<Validity, IssueError> {
        let own = self.require_cert()?.data().validity;
        if !own.contains(now) {
            return Err(IssueError::ValidityOutlivesIssuer);
        }
        let end = (now + self.default_lifetime).min(own.not_after);
        Ok(Validity::new(now, end))
    }

    /// Issues (or reissues) a child resource certificate.
    ///
    /// If this CA already issued a certificate for `subject_key`, the
    /// new one **overwrites** it (same file name, per RFC 6487 naming) —
    /// the primitive behind targeted whacking. The overwritten
    /// certificate's serial is *not* revoked: overwriting is the
    /// non-transparent path (Side Effect 2). Call
    /// [`CertAuthority::revoke_serial`] as well for the transparent
    /// path.
    pub fn issue_cert(
        &mut self,
        subject_handle: &str,
        subject_key: PublicKey,
        resources: ResourceSet,
        subject_sia: RepoUri,
        now: Moment,
    ) -> Result<ResourceCert, IssueError> {
        let validity = self.child_validity(now)?;
        self.check_resources(&resources)?;
        let data = CertData {
            serial: self.bump_serial(),
            subject: subject_handle.to_owned(),
            subject_key,
            resources,
            as_resources: AsnSet::empty(),
            validity,
            issuer_key: self.key.id(),
            sia: subject_sia,
            crl_dp: Some(self.crl_uri()),
        };
        let cert = ResourceCert::sign(data, &self.key);
        self.issued_certs.insert(subject_key.id(), cert.clone());
        Ok(cert)
    }

    /// Issues a ROA authorising `asn` to originate `prefixes`.
    ///
    /// A fresh one-time EE key is derived deterministically from this
    /// CA's key seed and an internal counter.
    pub fn issue_roa(
        &mut self,
        asn: Asn,
        prefixes: Vec<RoaPrefix>,
        now: Moment,
    ) -> Result<Roa, IssueError> {
        let validity = self.child_validity(now)?;
        let resources = ResourceSet::from_prefixes(prefixes.iter().map(|rp| rp.prefix));
        self.check_resources(&resources)?;
        let ee_seed = format!("{}-ee-{}", self.handle, self.ee_counter);
        self.ee_counter += 1;
        let ee_key = KeyPair::from_seed(&ee_seed);
        let serial = self.bump_serial();
        let roa = Roa::issue(RoaData { asn, prefixes }, serial, validity, &self.key, &ee_key);
        self.issued_roas.insert(roa.file_name(), roa.clone());
        Ok(roa)
    }

    /// Renews an issued ROA: same content, fresh validity and EE key.
    /// The old ROA's file disappears from the publication point and the
    /// new one appears — normal churn the monitor must not flag.
    pub fn renew_roa(&mut self, file_name: &str, now: Moment) -> Result<Roa, IssueError> {
        let old = self
            .issued_roas
            .remove(file_name)
            .ok_or_else(|| IssueError::NoSuchObject(file_name.to_owned()))?;
        self.issue_roa(old.data().asn, old.data().prefixes.clone(), now)
    }

    /// Revokes a serial via the CRL — the transparent, auditable path
    /// (Side Effect 1). Also drops any issued object carrying that
    /// serial from the publication set.
    pub fn revoke_serial(&mut self, serial: u64) {
        if !self.revoked.contains(&serial) {
            self.revoked.push(serial);
        }
        self.issued_certs.retain(|_, c| c.data().serial != serial);
        self.issued_roas.retain(|_, r| r.serial() != serial);
    }

    /// **Stealthy revocation** (Side Effect 2): silently removes an
    /// issued object from the publication set without any CRL entry.
    /// From a relying party's perspective the object is simply missing
    /// at the next sync; distinguishing this from churn is the
    /// monitoring problem the paper poses.
    pub fn withdraw(&mut self, file_name: &str) -> Result<RpkiObject, IssueError> {
        if let Some(roa) = self.issued_roas.remove(file_name) {
            return Ok(RpkiObject::Roa(roa));
        }
        let key =
            self.issued_certs.iter().find(|(_, c)| c.file_name() == file_name).map(|(k, _)| *k);
        if let Some(k) = key {
            let cert = self.issued_certs.remove(&k).expect("key just found");
            return Ok(RpkiObject::Cert(cert));
        }
        Err(IssueError::NoSuchObject(file_name.to_owned()))
    }

    /// The child certificate currently issued for `subject_key`, if any.
    pub fn issued_cert_for(&self, subject_key: KeyId) -> Option<&ResourceCert> {
        self.issued_certs.get(&subject_key)
    }

    /// All currently issued child certificates.
    pub fn issued_certs(&self) -> impl Iterator<Item = &ResourceCert> {
        self.issued_certs.values()
    }

    /// All currently issued ROAs.
    pub fn issued_roas(&self) -> impl Iterator<Item = &Roa> {
        self.issued_roas.values()
    }

    /// Issued ROAs whose validity ends within `horizon` of `now` —
    /// the renewal worklist. Delayed renewal is one of the paper's
    /// missing-ROA triggers (Side Effect 6).
    pub fn expiring_roas(&self, now: Moment, horizon: Span) -> Vec<&Roa> {
        self.issued_roas.values().filter(|r| r.validity().not_after <= now + horizon).collect()
    }

    /// Generates the current CRL.
    pub fn generate_crl(&mut self, now: Moment) -> Crl {
        self.crl_number += 1;
        Crl::sign(
            CrlData {
                issuer_key: self.key.id(),
                number: self.crl_number,
                this_update: now,
                next_update: now + self.refresh,
                revoked: self.revoked.clone(),
            },
            &self.key,
        )
    }

    /// Produces the complete publication snapshot: issued certs and
    /// ROAs, a fresh CRL, and a manifest committing to all their bytes.
    pub fn publication_snapshot(&mut self, now: Moment) -> PublicationSnapshot {
        let mut files: Vec<(String, RpkiObject)> = Vec::new();
        for cert in self.issued_certs.values() {
            files.push((cert.file_name(), RpkiObject::Cert(cert.clone())));
        }
        for roa in self.issued_roas.values() {
            files.push((roa.file_name(), RpkiObject::Roa(roa.clone())));
        }
        let crl = self.generate_crl(now);
        files.push((crl.file_name(), RpkiObject::Crl(crl)));

        self.manifest_number += 1;
        let entries =
            files.iter().map(|(name, obj)| Manifest::entry_for(name, &obj.to_bytes())).collect();
        let manifest = Manifest::sign(
            ManifestData {
                issuer_key: self.key.id(),
                number: self.manifest_number,
                this_update: now,
                next_update: now + self.refresh,
                entries,
            },
            &self.key,
        );
        files.push((manifest.file_name(), RpkiObject::Manifest(manifest)));
        PublicationSnapshot { files }
    }

    /// RFC 6489 key rollover: adopts a new key and re-signs every issued
    /// object under it. Returns the new public key; the *parent* must
    /// certify it (and the old certificate becomes garbage) before
    /// relying parties will accept the re-signed objects.
    pub fn roll_key(&mut self, new_key_seed: &str, now: Moment) -> RolloverReport {
        let old_key = self.key.id();
        self.key = KeyPair::from_seed(new_key_seed);
        self.cert = None; // parent must re-certify
        let mut resigned = 0;

        let old_certs: Vec<ResourceCert> = self.issued_certs.values().cloned().collect();
        self.issued_certs.clear();
        for c in old_certs {
            let data = CertData {
                serial: self.bump_serial(),
                issuer_key: self.key.id(),
                crl_dp: Some(self.crl_uri()),
                ..c.data().clone()
            };
            let cert = ResourceCert::sign(data, &self.key);
            self.issued_certs.insert(cert.subject_key_id(), cert);
            resigned += 1;
        }

        let old_roas: Vec<Roa> = self.issued_roas.values().cloned().collect();
        self.issued_roas.clear();
        for r in old_roas {
            let ee_seed = format!("{}-ee-{}", self.handle, self.ee_counter);
            self.ee_counter += 1;
            let ee_key = KeyPair::from_seed(&ee_seed);
            let serial = self.bump_serial();
            let roa = Roa::issue(r.data().clone(), serial, r.validity(), &self.key, &ee_key);
            self.issued_roas.insert(roa.file_name(), roa);
            resigned += 1;
        }
        let _ = now; // reserved: staged rollover would keep both keys until `now + grace`
        RolloverReport { old_key, new_key: self.key.public(), resigned_objects: resigned }
    }

    /// Hands out the private key. This is the "compromised / coerced
    /// authority" capability transfer — the flipped threat model in one
    /// method. Misbehaviour experiments use the returned reference to
    /// drive this same engine.
    pub fn key_for_attack(&self) -> &KeyPair {
        &self.key
    }
}

impl std::fmt::Debug for CertAuthority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CertAuthority")
            .field("handle", &self.handle)
            .field("key", &self.key.id())
            .field("certified", &self.cert.is_some())
            .field("issued_certs", &self.issued_certs.len())
            .field("issued_roas", &self.issued_roas.len())
            .finish()
    }
}

/// Serialisable summary of a CA, for experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct AuthoritySummary {
    /// The CA's handle.
    pub handle: String,
    /// Its resources, as prefix strings.
    pub resources: Vec<String>,
    /// Number of issued child certificates.
    pub issued_certs: usize,
    /// Number of issued ROAs.
    pub issued_roas: usize,
}

impl From<&CertAuthority> for AuthoritySummary {
    fn from(ca: &CertAuthority) -> Self {
        AuthoritySummary {
            handle: ca.handle().to_owned(),
            resources: ca.resources().to_prefixes().iter().map(|p| p.to_string()).collect(),
            issued_certs: ca.issued_certs.len(),
            issued_roas: ca.issued_roas.len(),
        }
    }
}
