//! Tests for the CA engine, including the paper's Figure 2 hierarchy as
//! a working three-level RPKI.

use ipres::{Asn, Prefix, ResourceSet};
use rpki_ca::{CertAuthority, IssueError};
use rpki_objects::{Moment, RepoUri, RoaPrefix, RpkiObject, Span};

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

fn rs(s: &str) -> ResourceSet {
    ResourceSet::from_prefix_strs(s)
}

fn uri(host: &str) -> RepoUri {
    RepoUri::new(host, &["repo"])
}

/// Builds the ARIN → Sprint portion of Figure 2.
fn arin_and_sprint() -> (CertAuthority, CertAuthority) {
    let mut arin = CertAuthority::new("ARIN", "test-arin", uri("rpki.arin.example"));
    arin.certify_self(rs("0.0.0.0/2, 63.0.0.0/8, 208.0.0.0/4"), Moment(0), Span::days(3650));
    let mut sprint = CertAuthority::new("Sprint", "test-sprint", uri("rpki.sprint.example"));
    let rc = arin
        .issue_cert(
            "Sprint",
            sprint.public_key(),
            rs("63.160.0.0/12, 208.0.0.0/11"),
            sprint.sia().clone(),
            Moment(0),
        )
        .unwrap();
    sprint.install_cert(rc);
    (arin, sprint)
}

#[test]
fn trust_anchor_self_certifies() {
    let mut ta = CertAuthority::new("IANA", "test-iana", uri("rpki.iana.example"));
    assert!(ta.cert().is_none());
    assert!(ta.resources().is_empty());
    ta.certify_self(rs("0.0.0.0/0"), Moment(0), Span::days(3650));
    let cert = ta.cert().unwrap();
    assert!(cert.is_self_signed());
    assert_eq!(cert.verify(&ta.public_key()), Ok(()));
}

#[test]
fn uncertified_ca_cannot_issue() {
    let mut ca = CertAuthority::new("Nobody", "test-nobody", uri("h"));
    let err = ca.issue_roa(Asn(1), vec![RoaPrefix::exact(p("10.0.0.0/8"))], Moment(0));
    assert_eq!(err.unwrap_err(), IssueError::NoCertificate);
}

#[test]
fn issuance_enforces_containment() {
    let (_, mut sprint) = arin_and_sprint();
    // In-range succeeds.
    let roa = sprint
        .issue_roa(Asn(1239), vec![RoaPrefix::up_to(p("63.160.64.0/20"), 24)], Moment(0))
        .unwrap();
    assert_eq!(roa.verify(&sprint.public_key()), Ok(()));
    // Out-of-range is refused with the precise excess.
    let err =
        sprint.issue_roa(Asn(1239), vec![RoaPrefix::exact(p("8.0.0.0/8"))], Moment(0)).unwrap_err();
    match err {
        IssueError::ResourcesNotHeld { excess } => {
            assert_eq!(excess, rs("8.0.0.0/8"));
        }
        other => panic!("wrong error: {other:?}"),
    }
}

#[test]
fn child_cert_chain_verifies() {
    let (arin, sprint) = arin_and_sprint();
    let rc = sprint.cert().unwrap();
    assert_eq!(rc.verify(&arin.public_key()), Ok(()));
    assert!(arin.resources().contains_set(&rc.data().resources));
}

#[test]
fn validity_clamped_to_issuer_window() {
    let mut ta = CertAuthority::new("TA", "test-ta-short", uri("h"));
    ta.certify_self(rs("10.0.0.0/8"), Moment(0), Span::days(10));
    let child = CertAuthority::new("C", "test-c-short", uri("h2"));
    // Default child lifetime (365d) exceeds the TA's 10-day window: the
    // issued window is clamped, never extended past the issuer's.
    let rc =
        ta.issue_cert("C", child.public_key(), rs("10.0.0.0/16"), uri("h2"), Moment(0)).unwrap();
    assert_eq!(rc.data().validity.not_after, Moment(0) + Span::days(10));
    let roa = ta.issue_roa(Asn(5), vec![RoaPrefix::exact(p("10.0.0.0/16"))], Moment(5)).unwrap();
    assert_eq!(roa.validity().not_after, Moment(0) + Span::days(10));
    // Issuing after the issuer itself expired is refused outright.
    let err = ta
        .issue_roa(Asn(5), vec![RoaPrefix::exact(p("10.0.0.0/16"))], Moment(0) + Span::days(11))
        .unwrap_err();
    assert_eq!(err, IssueError::ValidityOutlivesIssuer);
}

#[test]
fn reissue_overwrites_same_file_name() {
    let (mut arin, sprint) = arin_and_sprint();
    let first = arin.issued_cert_for(sprint.key_id()).unwrap().clone();
    // ARIN shrinks Sprint's allocation — same subject key, same file
    // name, different resources: an overwrite.
    let second = arin
        .issue_cert(
            "Sprint",
            sprint.public_key(),
            rs("63.160.0.0/12"),
            sprint.sia().clone(),
            Moment(100),
        )
        .unwrap();
    assert_eq!(first.file_name(), second.file_name());
    assert_ne!(first.data().resources, second.data().resources);
    // Only one issued cert remains for that key.
    assert_eq!(arin.issued_certs().count(), 1);
    assert_eq!(arin.issued_cert_for(sprint.key_id()).unwrap(), &second);
}

#[test]
fn revocation_is_transparent() {
    let (_, mut sprint) = arin_and_sprint();
    let roa =
        sprint.issue_roa(Asn(1239), vec![RoaPrefix::exact(p("63.160.0.0/20"))], Moment(0)).unwrap();
    sprint.revoke_serial(roa.serial());
    // The ROA is gone from the issued set...
    assert_eq!(sprint.issued_roas().count(), 0);
    // ...and the CRL says so.
    let crl = sprint.generate_crl(Moment(10));
    assert!(crl.is_revoked(roa.serial()));
}

#[test]
fn withdraw_is_stealthy() {
    let (_, mut sprint) = arin_and_sprint();
    let roa =
        sprint.issue_roa(Asn(1239), vec![RoaPrefix::exact(p("63.160.0.0/20"))], Moment(0)).unwrap();
    let taken = sprint.withdraw(&roa.file_name()).unwrap();
    assert!(matches!(taken, RpkiObject::Roa(_)));
    assert_eq!(sprint.issued_roas().count(), 0);
    // Crucially: no CRL trace (Side Effect 2).
    let crl = sprint.generate_crl(Moment(10));
    assert!(!crl.is_revoked(roa.serial()));
    // Withdrawing twice fails.
    assert!(matches!(sprint.withdraw(&roa.file_name()), Err(IssueError::NoSuchObject(_))));
}

#[test]
fn publication_snapshot_is_complete_and_hash_consistent() {
    use rpki_objects::Encode;
    let (_, mut sprint) = arin_and_sprint();
    sprint
        .issue_roa(Asn(1239), vec![RoaPrefix::up_to(p("63.160.64.0/20"), 24)], Moment(0))
        .unwrap();
    sprint.issue_roa(Asn(1239), vec![RoaPrefix::exact(p("208.24.0.0/16"))], Moment(0)).unwrap();
    let snap = sprint.publication_snapshot(Moment(5));
    // 2 ROAs + CRL + manifest.
    assert_eq!(snap.files.len(), 4);
    let mft = snap.manifest().expect("snapshot carries a manifest");
    // Manifest lists everything except itself, with matching hashes
    // (DESIGN.md invariant 7).
    assert_eq!(mft.data().entries.len(), 3);
    for (name, obj) in &snap.files {
        if name == &mft.file_name() {
            continue;
        }
        let listed = mft.hash_of(name).expect("file listed in manifest");
        assert_eq!(listed, rpkisim_crypto::sha256(&obj.to_bytes()));
    }
}

#[test]
fn crl_and_manifest_never_share_revoked_serials() {
    // DESIGN.md invariant 7 (second half): nothing on the manifest is
    // revoked.
    let (_, mut sprint) = arin_and_sprint();
    let keep =
        sprint.issue_roa(Asn(1239), vec![RoaPrefix::exact(p("63.160.0.0/20"))], Moment(0)).unwrap();
    let kill =
        sprint.issue_roa(Asn(1239), vec![RoaPrefix::exact(p("63.161.0.0/20"))], Moment(0)).unwrap();
    sprint.revoke_serial(kill.serial());
    let snap = sprint.publication_snapshot(Moment(5));
    let mft = snap.manifest().unwrap();
    assert!(mft.hash_of(&keep.file_name()).is_some());
    assert!(mft.hash_of(&kill.file_name()).is_none());
}

#[test]
fn renewal_is_same_content_new_identity() {
    let (_, mut sprint) = arin_and_sprint();
    let old = sprint
        .issue_roa(Asn(1239), vec![RoaPrefix::up_to(p("63.160.64.0/20"), 24)], Moment(0))
        .unwrap();
    // Not yet expiring with a huge window? It is, with horizon = lifetime.
    assert_eq!(sprint.expiring_roas(Moment(0), Span::days(366)).len(), 1);
    assert_eq!(sprint.expiring_roas(Moment(0), Span::days(30)).len(), 0);
    let new = sprint.renew_roa(&old.file_name(), Moment(1000)).unwrap();
    assert_eq!(new.data(), old.data());
    assert_ne!(new.file_name(), old.file_name()); // fresh EE key
    assert!(new.validity().not_before > old.validity().not_before);
    assert!(new.validity().not_after >= old.validity().not_after);
    assert_eq!(sprint.issued_roas().count(), 1);
    // Renewing a nonexistent file fails.
    assert!(sprint.renew_roa("nope.roa", Moment(0)).is_err());
}

#[test]
fn key_rollover_resigns_everything() {
    let (mut arin, mut sprint) = arin_and_sprint();
    sprint.issue_roa(Asn(1239), vec![RoaPrefix::exact(p("63.160.0.0/20"))], Moment(0)).unwrap();
    let mut etb = CertAuthority::new("ETB", "test-etb", uri("rpki.etb.example"));
    let rc = sprint
        .issue_cert("ETB", etb.public_key(), rs("208.24.0.0/16"), etb.sia().clone(), Moment(0))
        .unwrap();
    etb.install_cert(rc);

    let old_key = sprint.key_id();
    let report = sprint.roll_key("test-sprint-key2", Moment(50));
    assert_eq!(report.old_key, old_key);
    assert_ne!(report.new_key.id(), old_key);
    assert_eq!(report.resigned_objects, 2); // 1 cert + 1 ROA
                                            // Sprint is uncertified until ARIN re-certifies the new key.
    assert!(sprint.cert().is_none());
    let rc2 = arin
        .issue_cert(
            "Sprint",
            report.new_key,
            rs("63.160.0.0/12, 208.0.0.0/11"),
            sprint.sia().clone(),
            Moment(50),
        )
        .unwrap();
    sprint.install_cert(rc2);
    // Re-signed objects verify under the new key.
    for roa in sprint.issued_roas() {
        assert_eq!(roa.verify(&sprint.public_key()), Ok(()));
    }
    for cert in sprint.issued_certs() {
        assert_eq!(cert.verify(&sprint.public_key()), Ok(()));
        // Subject keys are unchanged — children keep their identity.
        assert_eq!(cert.subject_key_id(), etb.key_id());
    }
}

#[test]
fn configurable_lifetime_and_refresh() {
    let mut ta = CertAuthority::new("TA", "test-ta-cfg", uri("h"));
    ta.certify_self(rs("10.0.0.0/8"), Moment(0), Span::days(3650));
    ta.set_default_lifetime(Span::days(30));
    let roa = ta.issue_roa(Asn(1), vec![RoaPrefix::exact(p("10.0.0.0/16"))], Moment(0)).unwrap();
    assert_eq!(roa.validity().not_after, Moment(0) + Span::days(30));
    ta.set_refresh_interval(Span::hours(8));
    let crl = ta.generate_crl(Moment(100));
    assert_eq!(crl.data().next_update, Moment(100) + Span::hours(8));
    assert!(crl.is_stale_at(Moment(101) + Span::hours(8)));
    let snap = ta.publication_snapshot(Moment(200));
    let mft = snap.manifest().unwrap();
    assert_eq!(mft.data().next_update, Moment(200) + Span::hours(8));
}

#[test]
fn snapshot_reflects_overwrite_not_just_delete() {
    // Sprint carves space out of a child RC: the snapshot must carry the
    // *new* cert under the *old* file name.
    let (_, mut sprint) = arin_and_sprint();
    let mut cb = CertAuthority::new("Continental", "test-cb", uri("rpki.continental.example"));
    sprint
        .issue_cert(
            "Continental",
            cb.public_key(),
            rs("63.174.16.0/20"),
            cb.sia().clone(),
            Moment(0),
        )
        .unwrap();
    let before = sprint.publication_snapshot(Moment(1));
    let carved = rs("63.174.16.0/20").difference(&rs("63.174.24.0/24"));
    sprint
        .issue_cert("Continental", cb.public_key(), carved.clone(), cb.sia().clone(), Moment(2))
        .unwrap();
    let after = sprint.publication_snapshot(Moment(3));
    let name = format!("{}.cer", cb.key_id().short());
    let old_obj = before.get(&name).unwrap();
    let new_obj = after.get(&name).unwrap();
    assert_ne!(old_obj, new_obj);
    match new_obj {
        RpkiObject::Cert(c) => assert_eq!(c.data().resources, carved),
        _ => panic!("expected cert"),
    }
    let _ = &mut cb;
}
