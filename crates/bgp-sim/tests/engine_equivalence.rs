//! Equivalence property: the worklist engine is bit-for-bit identical
//! to the synchronous full-scan reference oracle.
//!
//! Random Gao–Rexford topologies × all three `RpkiPolicy` variants ×
//! hijack announcement mixes (exact-prefix and subprefix hijacks, with
//! and without covering ROAs). `RoutingState` derives `PartialEq`, so
//! the assertion covers every AS's selected routes: prefixes, origins,
//! full AS paths, learned-from relationships, and validities.

use bgp_sim::{propagate_with_stats, reference, Announcement, RpkiPolicy, Topology};
use ipres::{Asn, Prefix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpki_rp::{Vrp, VrpCache};

/// A random Gao–Rexford-shaped topology: a 3-clique of tier-1s, then
/// `extra` ASes each buying transit from 1–2 earlier ASes, with a few
/// random peerings among non-tier-1s. (Same generator as
/// `propagation_properties.rs`; bgp-sim cannot depend on topogen.)
fn random_topology(seed: u64, extra: usize) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Topology::new();
    let asn = |i: usize| Asn(100 + i as u32);
    for i in 0..3 {
        for j in (i + 1)..3 {
            t.add_peering(asn(i), asn(j));
        }
    }
    let mut count = 3;
    for _ in 0..extra {
        let me = asn(count);
        let providers = 1 + rng.gen_range(0..2usize);
        let mut picked = Vec::new();
        for _ in 0..providers {
            let p = asn(rng.gen_range(0..count));
            if !picked.contains(&p) {
                t.add_provider_customer(p, me);
                picked.push(p);
            }
        }
        count += 1;
    }
    // A few lateral peerings.
    for _ in 0..extra / 4 {
        let a = asn(3 + rng.gen_range(0..extra.max(1)).min(count - 4));
        let b = asn(3 + rng.gen_range(0..extra.max(1)).min(count - 4));
        if a != b && t.relationship(a, b).is_none() {
            t.add_peering(a, b);
        }
    }
    t
}

/// Runs both engines and asserts byte-identical states plus the
/// rounds bound (worklist ≤ reference).
fn assert_equivalent(
    t: &Topology,
    anns: &[Announcement],
    policy: RpkiPolicy,
    cache: &VrpCache,
) -> Result<(), TestCaseError> {
    let (state, stats) = propagate_with_stats(t, anns, policy, cache).expect("converges");
    let (oracle, oracle_rounds) = reference::propagate(t, anns, policy, cache).expect("converges");
    prop_assert_eq!(&state, &oracle, "engines diverged under {:?}", policy);
    prop_assert!(
        stats.rounds <= oracle_rounds,
        "worklist took {} rounds, reference {} under {:?}",
        stats.rounds,
        oracle_rounds,
        policy
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: random topology, a victim, an
    /// exact-prefix hijacker, and a subprefix hijacker; every policy;
    /// four cache flavours (empty, victim ROA, victim ROA + covering
    /// ROA, wrong-origin ROA only).
    #[test]
    fn worklist_matches_reference(
        seed in 0u64..100_000,
        extra in 4usize..36,
        cache_pick in 0u8..4,
    ) {
        let t = random_topology(seed, extra);
        let all: Vec<Asn> = t.ases().collect();
        let victim = all[0];
        let attacker = all[all.len() - 1];
        let bystander = all[all.len() / 2];

        let p16: Prefix = "10.0.0.0/16".parse().unwrap();
        let p24: Prefix = "10.0.1.0/24".parse().unwrap();
        let other: Prefix = "20.0.0.0/16".parse().unwrap();
        let anns = vec![
            Announcement { prefix: p16, origin: victim },
            // Exact-prefix hijack.
            Announcement { prefix: p16, origin: attacker },
            // Subprefix hijack.
            Announcement { prefix: p24, origin: attacker },
            // Unrelated background announcement.
            Announcement { prefix: other, origin: bystander },
        ];
        let cache: VrpCache = match cache_pick {
            0 => VrpCache::new(),
            1 => [Vrp::new(p16, 16, victim)].into_iter().collect(),
            2 => [
                Vrp::new(p16, 16, victim),
                Vrp::new("10.0.0.0/8".parse().unwrap(), 16, bystander),
            ]
            .into_iter()
            .collect(),
            _ => [Vrp::new("10.0.0.0/8".parse().unwrap(), 8, bystander)].into_iter().collect(),
        };

        for policy in [RpkiPolicy::Ignore, RpkiPolicy::DropInvalid, RpkiPolicy::DeprefInvalid] {
            assert_equivalent(&t, &anns, policy, &cache)?;
        }
    }

    /// Origins off the topology, duplicate announcements, and a prefix
    /// announced by everyone — the degenerate shapes.
    #[test]
    fn worklist_matches_reference_on_degenerate_inputs(
        seed in 0u64..100_000,
        extra in 4usize..20,
    ) {
        let t = random_topology(seed, extra);
        let all: Vec<Asn> = t.ases().collect();
        let p16: Prefix = "10.0.0.0/16".parse().unwrap();
        let mut anns = vec![
            // An origin nobody is connected to.
            Announcement { prefix: p16, origin: Asn(9999) },
            // Duplicates of a real announcement.
            Announcement { prefix: p16, origin: all[0] },
            Announcement { prefix: p16, origin: all[0] },
        ];
        // Everyone announces the same prefix: all cells origin-locked.
        for &a in &all {
            anns.push(Announcement { prefix: p16, origin: a });
        }
        let cache: VrpCache = [Vrp::new(p16, 16, all[0])].into_iter().collect();
        for policy in [RpkiPolicy::Ignore, RpkiPolicy::DropInvalid, RpkiPolicy::DeprefInvalid] {
            assert_equivalent(&t, &anns, policy, &cache)?;
        }
    }

    /// Transit cycles (the reference's worst case) still agree.
    #[test]
    fn worklist_matches_reference_on_transit_cycles(seed in 0u64..100_000, n in 3usize..8) {
        let mut t = Topology::new();
        for i in 0..n {
            t.add_provider_customer(Asn(1 + i as u32), Asn(1 + ((i + 1) % n) as u32));
        }
        prop_assert!(t.find_transit_cycle().is_some());
        let anns = vec![Announcement {
            prefix: "10.0.0.0/16".parse().unwrap(),
            origin: Asn(1 + (seed as usize % n) as u32),
        }];
        for policy in [RpkiPolicy::Ignore, RpkiPolicy::DropInvalid, RpkiPolicy::DeprefInvalid] {
            assert_equivalent(&t, &anns, policy, &VrpCache::new())?;
        }
    }
}
