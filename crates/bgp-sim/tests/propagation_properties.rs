//! Property tests for the BGP substrate: every selected route in a
//! converged state must be a sane, valley-free path. Runs over
//! seed-randomised synthetic topologies built inline (bgp-sim cannot
//! depend on topogen — that would be a cycle — so a small preferential
//! generator lives here).

use bgp_sim::{propagate, Announcement, Relationship, RpkiPolicy, Topology};
use ipres::{Asn, Prefix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpki_rp::{Vrp, VrpCache};

/// A random Gao–Rexford-shaped topology: a 3-clique of tier-1s, then
/// `extra` ASes each buying transit from 1–2 earlier ASes, with a few
/// random peerings among non-tier-1s.
fn random_topology(seed: u64, extra: usize) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Topology::new();
    let asn = |i: usize| Asn(100 + i as u32);
    for i in 0..3 {
        for j in (i + 1)..3 {
            t.add_peering(asn(i), asn(j));
        }
    }
    let mut count = 3;
    for _ in 0..extra {
        let me = asn(count);
        let providers = 1 + rng.gen_range(0..2usize);
        let mut picked = Vec::new();
        for _ in 0..providers {
            let p = asn(rng.gen_range(0..count));
            if !picked.contains(&p) {
                t.add_provider_customer(p, me);
                picked.push(p);
            }
        }
        count += 1;
    }
    // A few lateral peerings.
    for _ in 0..extra / 4 {
        let a = asn(3 + rng.gen_range(0..extra.max(1)).min(count - 4));
        let b = asn(3 + rng.gen_range(0..extra.max(1)).min(count - 4));
        if a != b && t.relationship(a, b).is_none() {
            t.add_peering(a, b);
        }
    }
    t
}

/// Checks the classic valley-free condition on the relationship
/// sequence of a path (uphill customer→provider edges, at most one
/// peer edge, then downhill provider→customer edges).
fn valley_free(t: &Topology, selecting: Asn, path: &[Asn]) -> bool {
    // Edge sequence as traversed by the ROUTE (origin → selecting AS):
    // reverse the forwarding path and classify each hop from the
    // perspective of the sender of the announcement.
    let mut nodes = vec![selecting];
    nodes.extend_from_slice(path);
    nodes.reverse(); // origin first
    #[derive(PartialEq, PartialOrd)]
    enum Phase {
        Up,
        Peer,
        Down,
    }
    let mut phase = Phase::Up;
    for w in nodes.windows(2) {
        let (from, to) = (w[0], w[1]);
        // Relationship of `to` as seen from `from`.
        let rel = match t.relationship(from, to) {
            Some(r) => r,
            None => return false, // non-adjacent hop
        };
        match rel {
            Relationship::Provider => {
                // going up: only allowed while still in Up phase
                if phase != Phase::Up {
                    return false;
                }
            }
            Relationship::Peer => {
                if phase != Phase::Up {
                    return false;
                }
                phase = Phase::Peer;
            }
            Relationship::Customer => {
                phase = Phase::Down;
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn selected_paths_are_sane_and_valley_free(
        seed in 0u64..10_000,
        extra in 4usize..40,
        policy_pick in 0u8..3,
    ) {
        let t = random_topology(seed, extra);
        let policy = match policy_pick {
            0 => RpkiPolicy::Ignore,
            1 => RpkiPolicy::DropInvalid,
            _ => RpkiPolicy::DeprefInvalid,
        };
        // Three origins announce distinct prefixes; one also has a VRP.
        let all: Vec<Asn> = t.ases().collect();
        let origins = [all[0], all[all.len() / 2], all[all.len() - 1]];
        let prefixes: Vec<Prefix> =
            ["10.0.0.0/16", "20.0.0.0/16", "30.0.0.0/16"].iter().map(|s| s.parse().unwrap()).collect();
        let anns: Vec<Announcement> = origins
            .iter()
            .zip(&prefixes)
            .map(|(&origin, &prefix)| Announcement { prefix, origin })
            .collect();
        let cache: VrpCache = [Vrp::new(prefixes[0], 16, origins[0])].into_iter().collect();

        let state = propagate(&t, &anns, policy, &cache).expect("converges");

        for asn in t.ases() {
            for route in state.table(asn) {
                // Path sanity: ends at the route's origin, no repeats,
                // selecting AS not on its own path.
                if route.path.is_empty() {
                    prop_assert_eq!(route.origin, asn);
                    continue;
                }
                prop_assert_eq!(*route.path.last().unwrap(), route.origin);
                prop_assert!(!route.path.contains(&asn));
                let mut dedup = route.path.clone();
                dedup.sort_unstable();
                dedup.dedup();
                prop_assert_eq!(dedup.len(), route.path.len(), "looped path");
                // Adjacency + valley-freeness.
                prop_assert!(
                    valley_free(&t, asn, &route.path),
                    "valley in path {:?} selected by {}",
                    route.path,
                    asn
                );
            }
        }
    }

    /// Under DropInvalid, no AS ever selects a route whose (prefix,
    /// origin) is invalid; under any policy, origins keep their own
    /// announcements.
    #[test]
    fn drop_invalid_never_selects_invalid(seed in 0u64..10_000, extra in 4usize..30) {
        let t = random_topology(seed, extra);
        let all: Vec<Asn> = t.ases().collect();
        let victim = all[0];
        let attacker = all[all.len() - 1];
        let prefix: Prefix = "10.0.0.0/16".parse().unwrap();
        let anns = vec![
            Announcement { prefix, origin: victim },
            Announcement { prefix, origin: attacker },
        ];
        let cache: VrpCache = [Vrp::new(prefix, 16, victim)].into_iter().collect();
        let state = propagate(&t, &anns, RpkiPolicy::DropInvalid, &cache).expect("converges");
        for asn in t.ases() {
            if let Some(route) = state.best_route(asn, prefix) {
                if asn == attacker {
                    // The liar keeps its own announcement.
                    prop_assert_eq!(route.origin, attacker);
                } else {
                    prop_assert_eq!(route.origin, victim, "AS{} accepted the hijack", asn.0);
                }
            }
        }
    }
}
