//! An AS-level BGP route-propagation simulator with RPKI policies.
//!
//! The paper's Sections 4–6 all end at the same question: *given some
//! RPKI state, which packets still arrive?* Answering it needs a BGP
//! substrate with three specific capabilities, which this crate
//! provides:
//!
//! - **Policy routing** ([`propagate()`]) — Gao–Rexford economics
//!   (prefer customer routes over peer over provider; export customer
//!   routes to everyone, everything else only to customers), shortest
//!   AS path, deterministic tie-breaks; computed to a fixed point.
//! - **RPKI local policy** ([`RpkiPolicy`]) — the two plausible
//!   policies of Section 5, `DropInvalid` and `DeprefInvalid`, plus an
//!   `Ignore` baseline, applied against an `rpki_rp::VrpCache`.
//! - **Longest-prefix-match forwarding** ([`RoutingState::forward`]) —
//!   the data plane, because subprefix hijacks are won at forwarding
//!   time, not in the RIB.
//!
//! Attack announcements (prefix and subprefix hijacks) are just extra
//! [`Announcement`]s — the simulator is agnostic about who is lying.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forward;
pub mod propagate;
pub mod topology;

pub use forward::ForwardOutcome;
pub use propagate::{
    propagate, propagate_with_stats, reference, Announcement, ConvergenceError, ConvergenceStats,
    RoutingState, RpkiPolicy, SelectedRoute,
};
pub use topology::{Relationship, Topology, TopologyIndex};
