//! AS-level topology with Gao–Rexford business relationships.

use std::collections::BTreeMap;

use ipres::Asn;
use serde::{Deserialize, Serialize};

/// How a neighbour relates to *this* AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Relationship {
    /// The neighbour pays us for transit.
    Customer,
    /// Settlement-free peer.
    Peer,
    /// We pay the neighbour for transit.
    Provider,
}

impl Relationship {
    /// Preference rank: lower is better (customer routes earn money).
    pub fn rank(self) -> u8 {
        match self {
            Relationship::Customer => 0,
            Relationship::Peer => 1,
            Relationship::Provider => 2,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct AsNode {
    providers: Vec<Asn>,
    customers: Vec<Asn>,
    peers: Vec<Asn>,
}

/// The AS graph.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: BTreeMap<Asn, AsNode>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Ensures `asn` exists (isolated if no links are added).
    pub fn add_as(&mut self, asn: Asn) {
        self.nodes.entry(asn).or_default();
    }

    /// Whether `asn` is in the graph.
    pub fn contains(&self, asn: Asn) -> bool {
        self.nodes.contains_key(&asn)
    }

    /// All ASes, ascending.
    pub fn ases(&self) -> impl Iterator<Item = Asn> + '_ {
        self.nodes.keys().copied()
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of links (provider-customer plus peering).
    pub fn link_count(&self) -> usize {
        let pc: usize = self.nodes.values().map(|n| n.customers.len()).sum();
        let peers: usize = self.nodes.values().map(|n| n.peers.len()).sum();
        pc + peers / 2
    }

    /// Adds a provider→customer link (money flows customer→provider).
    ///
    /// # Panics
    ///
    /// Panics on self-links or duplicate links.
    pub fn add_provider_customer(&mut self, provider: Asn, customer: Asn) {
        assert_ne!(provider, customer, "self transit link at {provider}");
        self.add_as(provider);
        self.add_as(customer);
        let p = self.nodes.get_mut(&provider).expect("just added");
        assert!(!p.customers.contains(&customer), "duplicate link {provider}→{customer}");
        p.customers.push(customer);
        let c = self.nodes.get_mut(&customer).expect("just added");
        c.providers.push(provider);
    }

    /// Adds a settlement-free peering.
    ///
    /// # Panics
    ///
    /// Panics on self-peerings or duplicates.
    pub fn add_peering(&mut self, a: Asn, b: Asn) {
        assert_ne!(a, b, "self peering at {a}");
        self.add_as(a);
        self.add_as(b);
        let na = self.nodes.get_mut(&a).expect("just added");
        assert!(!na.peers.contains(&b), "duplicate peering {a}—{b}");
        na.peers.push(b);
        self.nodes.get_mut(&b).expect("just added").peers.push(a);
    }

    /// This AS's customers.
    pub fn customers(&self, asn: Asn) -> &[Asn] {
        self.nodes.get(&asn).map(|n| n.customers.as_slice()).unwrap_or(&[])
    }

    /// This AS's providers.
    pub fn providers(&self, asn: Asn) -> &[Asn] {
        self.nodes.get(&asn).map(|n| n.providers.as_slice()).unwrap_or(&[])
    }

    /// This AS's peers.
    pub fn peers(&self, asn: Asn) -> &[Asn] {
        self.nodes.get(&asn).map(|n| n.peers.as_slice()).unwrap_or(&[])
    }

    /// Every neighbour with its relationship *to `asn`* (i.e. the role
    /// the neighbour plays from `asn`'s point of view).
    pub fn neighbors(&self, asn: Asn) -> Vec<(Asn, Relationship)> {
        let Some(node) = self.nodes.get(&asn) else { return Vec::new() };
        let mut out =
            Vec::with_capacity(node.customers.len() + node.peers.len() + node.providers.len());
        for &c in &node.customers {
            out.push((c, Relationship::Customer));
        }
        for &p in &node.peers {
            out.push((p, Relationship::Peer));
        }
        for &p in &node.providers {
            out.push((p, Relationship::Provider));
        }
        out
    }

    /// The relationship of `neighbor` from `asn`'s point of view, if
    /// adjacent.
    pub fn relationship(&self, asn: Asn, neighbor: Asn) -> Option<Relationship> {
        let node = self.nodes.get(&asn)?;
        if node.customers.contains(&neighbor) {
            Some(Relationship::Customer)
        } else if node.peers.contains(&neighbor) {
            Some(Relationship::Peer)
        } else if node.providers.contains(&neighbor) {
            Some(Relationship::Provider)
        } else {
            None
        }
    }

    /// Checks the provider-customer hierarchy is acyclic (Gao–Rexford
    /// stability needs this). Returns an example cycle if one exists.
    pub fn find_transit_cycle(&self) -> Option<Vec<Asn>> {
        // DFS over provider→customer edges.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks: BTreeMap<Asn, Mark> = self.ases().map(|a| (a, Mark::White)).collect();
        let mut stack_path: Vec<Asn> = Vec::new();

        fn dfs(
            topo: &Topology,
            at: Asn,
            marks: &mut BTreeMap<Asn, Mark>,
            path: &mut Vec<Asn>,
        ) -> Option<Vec<Asn>> {
            marks.insert(at, Mark::Grey);
            path.push(at);
            for &c in topo.customers(at) {
                match marks[&c] {
                    Mark::Grey => {
                        let start = path.iter().position(|&x| x == c).unwrap_or(0);
                        let mut cycle = path[start..].to_vec();
                        cycle.push(c);
                        return Some(cycle);
                    }
                    Mark::White => {
                        if let Some(cycle) = dfs(topo, c, marks, path) {
                            return Some(cycle);
                        }
                    }
                    Mark::Black => {}
                }
            }
            path.pop();
            marks.insert(at, Mark::Black);
            None
        }

        for asn in self.ases().collect::<Vec<_>>() {
            if marks[&asn] == Mark::White {
                if let Some(cycle) = dfs(self, asn, &mut marks, &mut stack_path) {
                    return Some(cycle);
                }
            }
        }
        None
    }
}

/// A dense-index view of a [`Topology`] for propagation hot loops.
///
/// Interns every AS into a `u32` index (ascending ASN order, so index
/// order equals `Topology::ases` order) and resolves each neighbour
/// list to indices once, replacing per-round `BTreeMap` lookups with
/// array indexing. Neighbour order is preserved from
/// [`Topology::neighbors`]: customers, then peers, then providers,
/// each in insertion order — selection tie-breaks depend on it.
#[derive(Debug, Clone)]
pub struct TopologyIndex {
    ases: Vec<Asn>,
    neighbors: Vec<Vec<(u32, Relationship)>>,
}

impl TopologyIndex {
    /// Indexes `topology`.
    pub fn new(topology: &Topology) -> Self {
        Self::with_extra(topology, std::iter::empty())
    }

    /// Indexes `topology` plus `extra` ASes that may not be in the
    /// graph (announcement origins can sit outside it); extras get
    /// empty neighbour lists.
    pub fn with_extra(topology: &Topology, extra: impl IntoIterator<Item = Asn>) -> Self {
        let mut ases: Vec<Asn> = topology.ases().chain(extra).collect();
        ases.sort_unstable();
        ases.dedup();
        let neighbors = ases
            .iter()
            .map(|&asn| {
                topology
                    .neighbors(asn)
                    .into_iter()
                    .map(|(n, rel)| {
                        let idx = ases.binary_search(&n).expect("neighbor is interned");
                        (idx as u32, rel)
                    })
                    .collect()
            })
            .collect();
        TopologyIndex { ases, neighbors }
    }

    /// Number of interned ASes.
    pub fn len(&self) -> usize {
        self.ases.len()
    }

    /// Whether no AS is interned.
    pub fn is_empty(&self) -> bool {
        self.ases.is_empty()
    }

    /// The ASN at `idx`.
    pub fn asn(&self, idx: u32) -> Asn {
        self.ases[idx as usize]
    }

    /// The index of `asn`, if interned.
    pub fn index_of(&self, asn: Asn) -> Option<u32> {
        self.ases.binary_search(&asn).ok().map(|i| i as u32)
    }

    /// Neighbour indices of the AS at `idx`, role-annotated from its
    /// point of view, in [`Topology::neighbors`] order.
    pub fn neighbors(&self, idx: u32) -> &[(u32, Relationship)] {
        &self.neighbors[idx as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u32) -> Asn {
        Asn(n)
    }

    #[test]
    fn build_and_query() {
        let mut t = Topology::new();
        t.add_provider_customer(a(1), a(2));
        t.add_provider_customer(a(1), a(3));
        t.add_peering(a(2), a(3));
        assert_eq!(t.len(), 3);
        assert_eq!(t.link_count(), 3);
        assert_eq!(t.customers(a(1)), &[a(2), a(3)]);
        assert_eq!(t.providers(a(2)), &[a(1)]);
        assert_eq!(t.peers(a(2)), &[a(3)]);
        assert_eq!(t.relationship(a(1), a(2)), Some(Relationship::Customer));
        assert_eq!(t.relationship(a(2), a(1)), Some(Relationship::Provider));
        assert_eq!(t.relationship(a(2), a(3)), Some(Relationship::Peer));
        assert_eq!(t.relationship(a(2), a(9)), None);
    }

    #[test]
    fn neighbors_are_role_annotated() {
        let mut t = Topology::new();
        t.add_provider_customer(a(1), a(2));
        t.add_peering(a(2), a(3));
        t.add_provider_customer(a(2), a(4));
        let mut n = t.neighbors(a(2));
        n.sort();
        assert_eq!(
            n,
            vec![
                (a(1), Relationship::Provider),
                (a(3), Relationship::Peer),
                (a(4), Relationship::Customer),
            ]
        );
    }

    #[test]
    fn relationship_ranks() {
        assert!(Relationship::Customer.rank() < Relationship::Peer.rank());
        assert!(Relationship::Peer.rank() < Relationship::Provider.rank());
    }

    #[test]
    fn transit_cycle_detection() {
        let mut t = Topology::new();
        t.add_provider_customer(a(1), a(2));
        t.add_provider_customer(a(2), a(3));
        assert!(t.find_transit_cycle().is_none());
        t.add_provider_customer(a(3), a(1));
        let cycle = t.find_transit_cycle().expect("cycle exists");
        assert!(cycle.len() >= 3);
        assert_eq!(cycle.first(), cycle.last());
    }

    #[test]
    fn isolated_as_has_no_neighbors() {
        let mut t = Topology::new();
        t.add_as(a(9));
        assert!(t.contains(a(9)));
        assert!(t.neighbors(a(9)).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_transit_rejected() {
        let mut t = Topology::new();
        t.add_provider_customer(a(1), a(2));
        t.add_provider_customer(a(1), a(2));
    }

    #[test]
    #[should_panic(expected = "self peering")]
    fn self_peering_rejected() {
        let mut t = Topology::new();
        t.add_peering(a(1), a(1));
    }

    #[test]
    fn index_matches_topology_view() {
        let mut t = Topology::new();
        t.add_provider_customer(a(10), a(20));
        t.add_peering(a(20), a(30));
        t.add_provider_customer(a(20), a(40));
        let idx = TopologyIndex::new(&t);
        assert_eq!(idx.len(), 4);
        // Index order is ascending ASN order.
        let interned: Vec<Asn> = (0..idx.len() as u32).map(|i| idx.asn(i)).collect();
        assert_eq!(interned, t.ases().collect::<Vec<_>>());
        // Neighbour lists resolve back to the Topology view, in order.
        for asn in t.ases() {
            let i = idx.index_of(asn).unwrap();
            let via_index: Vec<(Asn, Relationship)> =
                idx.neighbors(i).iter().map(|&(n, rel)| (idx.asn(n), rel)).collect();
            assert_eq!(via_index, t.neighbors(asn), "neighbor mismatch at {asn}");
        }
        assert_eq!(idx.index_of(a(99)), None);
    }

    #[test]
    fn index_with_extra_origins() {
        let mut t = Topology::new();
        t.add_provider_customer(a(1), a(2));
        let idx = TopologyIndex::with_extra(&t, [a(66), a(2)]);
        assert_eq!(idx.len(), 3);
        let i66 = idx.index_of(a(66)).unwrap();
        assert_eq!(idx.asn(i66), a(66));
        assert!(idx.neighbors(i66).is_empty());
    }
}
