//! Route propagation to a Gao–Rexford fixed point, with RPKI policies.
//!
//! Two engines compute the same fixed point:
//!
//! - [`propagate`] / [`propagate_with_stats`] — the production
//!   **worklist engine**: ASes and prefixes are interned into dense
//!   indices, per-AS tables live in flat `Vec`s, and each round
//!   re-evaluates only the `(AS, prefix)` pairs whose neighbours'
//!   selections changed in the previous round. Origin validation is
//!   memoized per `(prefix, origin)` — validity is round-invariant —
//!   and AS-path tails are shared through an `Arc` cons list, so a
//!   candidate evaluation allocates nothing and a route update
//!   allocates one path node.
//! - [`mod@reference`] — the original synchronous full-scan engine, kept
//!   as the oracle the equivalence property tests pin the worklist
//!   engine against (see DESIGN.md "Routing engine" for the
//!   determinism and equivalence argument).
//!
//! Both iterate *synchronised rounds* reading only previous-round
//! state, which makes the computation order-independent and therefore
//! deterministic; the worklist engine's dirty set is a `BTreeSet`, so
//! even its internal evaluation order is reproducible.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

use ipres::{Asn, Prefix};
use rpki_rp::{Route, RouteValidity, VrpCache};
use serde::Serialize;

use crate::topology::{Relationship, Topology, TopologyIndex};

/// One origination: `origin` claims to be the destination for `prefix`.
/// Hijacks are simply announcements whose origin is not the legitimate
/// holder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Announcement {
    /// The announced prefix.
    pub prefix: Prefix,
    /// The announcing origin AS.
    pub origin: Asn,
}

/// The relying party's local policy for using route validity in BGP —
/// the paper's Section 5 / Table 6 knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum RpkiPolicy {
    /// Origin validation off (the pre-RPKI Internet).
    Ignore,
    /// Never select an invalid route.
    DropInvalid,
    /// Prefer valid over unknown over invalid, but still use invalid
    /// routes when nothing better exists for that exact prefix.
    DeprefInvalid,
}

/// A route selected by some AS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SelectedRoute {
    /// The route's prefix.
    pub prefix: Prefix,
    /// The origin AS of the announcement.
    pub origin: Asn,
    /// AS path from (excluding) the selecting AS to the origin:
    /// `path[0]` is the next hop; `path.last()` is the origin. Empty
    /// for the origin itself.
    pub path: Vec<Asn>,
    /// Relationship of the next hop to the selecting AS (`None` for
    /// self-originated routes).
    pub learned_from: Option<Relationship>,
    /// RFC 6811 state of `(prefix, origin)` under the cache in force.
    pub validity: RouteValidity,
}

impl SelectedRoute {
    fn pref_key(&self, policy: RpkiPolicy) -> (u8, u8, usize, u32) {
        let rel_rank = self.learned_from.map(Relationship::rank).unwrap_or(0);
        let next_hop = self.path.first().map(|a| a.0).unwrap_or(0);
        (validity_rank(policy, self.validity), rel_rank, self.path.len(), next_hop)
    }
}

/// Position of `validity` in the selection order under `policy`: only
/// `DeprefInvalid` lets validity influence preference.
fn validity_rank(policy: RpkiPolicy, validity: RouteValidity) -> u8 {
    match (policy, validity) {
        (RpkiPolicy::DeprefInvalid, RouteValidity::Valid) => 0,
        (RpkiPolicy::DeprefInvalid, RouteValidity::Unknown) => 1,
        (RpkiPolicy::DeprefInvalid, RouteValidity::Invalid) => 2,
        _ => 0,
    }
}

/// The converged routing state of the whole topology.
///
/// Compares bit-for-bit (`PartialEq`): the equivalence property tests
/// assert the worklist engine and the [`mod@reference`] oracle produce
/// equal states.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct RoutingState {
    /// `AS → prefix → selected route`. ASes holding no route for any
    /// prefix have no entry.
    tables: BTreeMap<Asn, BTreeMap<Prefix, SelectedRoute>>,
    /// The policy the state was computed under.
    policy: Option<RpkiPolicy>,
}

impl RoutingState {
    /// The route `asn` selected for exactly `prefix`, if any.
    pub fn best_route(&self, asn: Asn, prefix: Prefix) -> Option<&SelectedRoute> {
        self.tables.get(&asn)?.get(&prefix)
    }

    /// All selected routes at `asn`.
    pub fn table(&self, asn: Asn) -> impl Iterator<Item = &SelectedRoute> {
        self.tables.get(&asn).into_iter().flat_map(|t| t.values())
    }

    /// The policy in force when this state was computed.
    pub fn policy(&self) -> Option<RpkiPolicy> {
        self.policy
    }

    /// ASes holding at least one route.
    pub fn ases_with_routes(&self) -> usize {
        self.tables.values().filter(|t| !t.is_empty()).count()
    }
}

/// Work done by a propagation run. Callers report these next to their
/// experiment output, and the scale tests assert the worklist engine
/// never runs more rounds than the [`mod@reference`] oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ConvergenceStats {
    /// Synchronised rounds executed (rounds in which at least one
    /// `(AS, prefix)` pair was re-evaluated). The reference engine
    /// additionally runs a final quiescent confirmation round; the
    /// worklist engine stops as soon as the dirty set drains.
    pub rounds: usize,
    /// Route-table writes: selections that changed, including
    /// withdrawals.
    pub route_updates: usize,
    /// `(AS, prefix)` pairs re-evaluated across all rounds.
    pub pairs_evaluated: usize,
    /// Validity lookups answered from the per-call memo.
    pub memo_hits: usize,
    /// Validity lookups that ran RFC 6811 classification.
    pub memo_misses: usize,
    /// Largest dirty set observed at the start of any round — the
    /// worklist engine's peak working-set width.
    pub peak_worklist: usize,
}

impl ConvergenceStats {
    /// Accumulates another run's counters — for experiments that
    /// propagate several times and report the total work.
    pub fn absorb(&mut self, other: ConvergenceStats) {
        self.rounds += other.rounds;
        self.route_updates += other.route_updates;
        self.pairs_evaluated += other.pairs_evaluated;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.peak_worklist = self.peak_worklist.max(other.peak_worklist);
    }

    /// Emits this run's work counters into an observability recorder at
    /// simulated time `at`: one `convergence` event plus counters and a
    /// rounds histogram.
    pub fn emit(&self, rec: &rpki_obs::Recorder, at: u64) {
        if !rec.is_enabled() {
            return;
        }
        rec.count("bgp.propagations", 1);
        rec.count("bgp.route_updates", self.route_updates as u64);
        rec.count("bgp.pairs_evaluated", self.pairs_evaluated as u64);
        rec.observe("bgp.rounds", self.rounds as u64);
        rec.event(at, "bgp", "convergence")
            .u64("rounds", self.rounds as u64)
            .u64("route_updates", self.route_updates as u64)
            .u64("pairs_evaluated", self.pairs_evaluated as u64)
            .u64("memo_hits", self.memo_hits as u64)
            .u64("memo_misses", self.memo_misses as u64)
            .u64("peak_worklist", self.peak_worklist as u64)
            .emit();
    }
}

/// Propagation failed to converge within the round cap — which for
/// Gao–Rexford preferences indicates a cycle in the provider→customer
/// hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ConvergenceError {
    /// The round cap that was exhausted.
    pub rounds: usize,
    /// A provider→customer cycle in the topology, if one exists (first
    /// AS repeated at the end, as returned by
    /// [`Topology::find_transit_cycle`]).
    pub cycle: Option<Vec<Asn>>,
}

impl fmt::Display for ConvergenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BGP propagation failed to converge in {} rounds", self.rounds)?;
        match &self.cycle {
            Some(cycle) => {
                write!(f, "; transit cycle:")?;
                for asn in cycle {
                    write!(f, " {asn}")?;
                }
                Ok(())
            }
            None => write!(f, "; no transit cycle found (policy oscillation?)"),
        }
    }
}

impl std::error::Error for ConvergenceError {}

/// Propagates `announcements` over `topology` under `policy`, using
/// `cache` for origin validation, and returns the converged state.
///
/// Event-driven: only `(AS, prefix)` pairs whose inputs changed are
/// re-evaluated, but the result is bit-for-bit identical to the
/// synchronous full-scan [`mod@reference`] engine (pinned by the
/// equivalence property tests). Returns [`ConvergenceError`] —
/// carrying the transit cycle, if one exists — instead of looping
/// forever when the round cap is exhausted.
pub fn propagate(
    topology: &Topology,
    announcements: &[Announcement],
    policy: RpkiPolicy,
    cache: &VrpCache,
) -> Result<RoutingState, ConvergenceError> {
    propagate_with_stats(topology, announcements, policy, cache).map(|(state, _)| state)
}

/// [`propagate`], also returning the work done ([`ConvergenceStats`]).
pub fn propagate_with_stats(
    topology: &Topology,
    announcements: &[Announcement],
    policy: RpkiPolicy,
    cache: &VrpCache,
) -> Result<(RoutingState, ConvergenceStats), ConvergenceError> {
    Worklist::new(topology, announcements, policy, cache).run(announcements)
}

/// A selected route in the worklist engine's internal representation:
/// the AS path is an immutable cons list whose tail is shared with the
/// neighbour route it was learned from, so extending a path costs one
/// allocation and paths common to many ASes are stored once.
#[derive(Debug, Clone)]
struct WorkRoute {
    origin: Asn,
    learned_from: Option<Relationship>,
    /// Cached length of `path` (hops to the origin).
    path_len: u32,
    path: PathRef,
}

type PathRef = Option<Arc<PathNode>>;

/// Candidate preference key: (validity rank, relationship rank, path
/// length, next-hop ASN), lower wins. Distinct neighbours differ in
/// the last component, so the key totally orders candidates.
type CandidateKey = (u8, u8, u32, u32);

#[derive(Debug)]
struct PathNode {
    /// The AS at this hop; the head of a route's list is its next hop.
    head: Asn,
    tail: PathRef,
}

/// Whether `path` contains `asn` (loop prevention).
fn path_contains(path: &PathRef, asn: Asn) -> bool {
    let mut cur = path;
    while let Some(node) = cur {
        if node.head == asn {
            return true;
        }
        cur = &node.tail;
    }
    false
}

/// Structural path equality. Shared tails make the common case — the
/// neighbour's route object is unchanged — a pointer comparison.
fn paths_equal(a: &PathRef, b: &PathRef) -> bool {
    let (mut a, mut b) = (a, b);
    loop {
        match (a, b) {
            (None, None) => return true,
            (Some(x), Some(y)) => {
                if Arc::ptr_eq(x, y) {
                    return true;
                }
                if x.head != y.head {
                    return false;
                }
                a = &x.tail;
                b = &y.tail;
            }
            _ => return false,
        }
    }
}

/// Copies a cons-list path into the `Vec<Asn>` form of
/// [`SelectedRoute`].
fn materialize_path(path: &PathRef, len: u32) -> Vec<Asn> {
    let mut out = Vec::with_capacity(len as usize);
    let mut cur = path;
    while let Some(node) = cur {
        out.push(node.head);
        cur = &node.tail;
    }
    debug_assert_eq!(out.len(), len as usize);
    out
}

/// Per-call memo for RFC 6811 classification. Validity depends only on
/// `(prefix, origin)` and the fixed VRP cache, never on the round, so
/// each distinct pair is classified at most once per propagation.
struct ValidityMemo<'a> {
    cache: &'a VrpCache,
    /// Keyed by (interned prefix index, raw origin ASN).
    memo: HashMap<(u32, u32), RouteValidity>,
    hits: usize,
    misses: usize,
}

impl<'a> ValidityMemo<'a> {
    fn new(cache: &'a VrpCache) -> Self {
        ValidityMemo { cache, memo: HashMap::new(), hits: 0, misses: 0 }
    }

    fn classify(&mut self, prefix_idx: u32, prefix: Prefix, origin: Asn) -> RouteValidity {
        match self.memo.entry((prefix_idx, origin.0)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits += 1;
                *e.get()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.misses += 1;
                *e.insert(self.cache.classify(Route::new(prefix, origin)))
            }
        }
    }
}

struct Worklist<'a> {
    topology: &'a Topology,
    policy: RpkiPolicy,
    index: TopologyIndex,
    /// Interned announced prefixes, sorted.
    prefixes: Vec<Prefix>,
    /// Flattened route tables: `[as_idx * prefixes.len() + prefix_idx]`.
    tables: Vec<Option<WorkRoute>>,
    /// Cells holding their own announcement; never re-evaluated.
    origin_locked: Vec<bool>,
    memo: ValidityMemo<'a>,
    stats: ConvergenceStats,
}

impl<'a> Worklist<'a> {
    fn new(
        topology: &'a Topology,
        announcements: &[Announcement],
        policy: RpkiPolicy,
        cache: &'a VrpCache,
    ) -> Self {
        let index = TopologyIndex::with_extra(topology, announcements.iter().map(|a| a.origin));
        let mut prefixes: Vec<Prefix> = announcements.iter().map(|a| a.prefix).collect();
        prefixes.sort_unstable();
        prefixes.dedup();
        let cells = index.len() * prefixes.len();
        Worklist {
            topology,
            policy,
            index,
            prefixes,
            tables: vec![None; cells],
            origin_locked: vec![false; cells],
            memo: ValidityMemo::new(cache),
            stats: ConvergenceStats::default(),
        }
    }

    fn run(
        mut self,
        announcements: &[Announcement],
    ) -> Result<(RoutingState, ConvergenceStats), ConvergenceError> {
        let mut dirty = self.seed(announcements);

        // Same cap as the reference engine. A worklist round is the
        // synchronous round restricted to the pairs that could change,
        // so the worklist engine never needs more rounds.
        let cap = 2 * self.topology.len() + 10;
        let mut updates: Vec<(u32, u32, Option<WorkRoute>)> = Vec::new();
        while !dirty.is_empty() {
            self.stats.rounds += 1;
            self.stats.peak_worklist = self.stats.peak_worklist.max(dirty.len());
            if self.stats.rounds > cap {
                return Err(ConvergenceError {
                    rounds: cap,
                    cycle: self.topology.find_transit_cycle(),
                });
            }
            // Evaluate every dirty pair against previous-round state,
            // buffering writes: the round stays synchronous, so the
            // BTreeSet iteration order can't influence the outcome.
            updates.clear();
            for &(as_idx, prefix_idx) in &dirty {
                self.stats.pairs_evaluated += 1;
                if let Some(new_route) = self.evaluate(as_idx, prefix_idx) {
                    updates.push((as_idx, prefix_idx, new_route));
                }
            }
            // Apply, and mark the neighbours of every changed pair
            // dirty for the next round.
            let npfx = self.prefixes.len();
            let mut next_dirty = BTreeSet::new();
            for (as_idx, prefix_idx, route) in updates.drain(..) {
                self.tables[as_idx as usize * npfx + prefix_idx as usize] = route;
                self.stats.route_updates += 1;
                for &(nbr, _) in self.index.neighbors(as_idx) {
                    if !self.origin_locked[nbr as usize * npfx + prefix_idx as usize] {
                        next_dirty.insert((nbr, prefix_idx));
                    }
                }
            }
            dirty = next_dirty;
        }

        let state = self.materialize();
        self.stats.memo_hits = self.memo.hits;
        self.stats.memo_misses = self.memo.misses;
        Ok((state, self.stats))
    }

    /// Seeds origin routes and returns the initial dirty set: every
    /// non-origin neighbour cell of an origin. An origin always
    /// carries its own announcement, whatever the RPKI says — it is
    /// lying deliberately or it is the legitimate holder; either way
    /// it announces — so origin cells are locked and never
    /// re-evaluated.
    fn seed(&mut self, announcements: &[Announcement]) -> BTreeSet<(u32, u32)> {
        let npfx = self.prefixes.len();
        for ann in announcements {
            let as_idx = self.index.index_of(ann.origin).expect("origin was interned");
            let prefix_idx = self.prefixes.binary_search(&ann.prefix).expect("prefix interned");
            let cell = as_idx as usize * npfx + prefix_idx;
            self.tables[cell] =
                Some(WorkRoute { origin: ann.origin, learned_from: None, path_len: 0, path: None });
            self.origin_locked[cell] = true;
        }
        // Second pass, once all locks are set: a neighbour that is
        // itself an origin for the same prefix must not enter the
        // worklist.
        let mut dirty = BTreeSet::new();
        for ann in announcements {
            let as_idx = self.index.index_of(ann.origin).expect("origin was interned");
            let prefix_idx =
                self.prefixes.binary_search(&ann.prefix).expect("prefix interned") as u32;
            for &(nbr, _) in self.index.neighbors(as_idx) {
                if !self.origin_locked[nbr as usize * npfx + prefix_idx as usize] {
                    dirty.insert((nbr, prefix_idx));
                }
            }
        }
        dirty
    }

    /// Re-runs best-route selection for one `(AS, prefix)` cell against
    /// current (previous-round) tables. Returns `None` when the
    /// selection is unchanged, `Some(new)` — possibly a withdrawal —
    /// when it changed. Only a changed selection allocates (one path
    /// node).
    fn evaluate(&mut self, as_idx: u32, prefix_idx: u32) -> Option<Option<WorkRoute>> {
        let npfx = self.prefixes.len();
        let asn = self.index.asn(as_idx);
        let prefix = self.prefixes[prefix_idx as usize];

        // Best candidate so far, as (pref_key, neighbour index, role).
        // The key is computed from the neighbour's stored route without
        // materialising the candidate: validity depends only on
        // (prefix, origin), the candidate's path length is the
        // neighbour's plus one, and its next hop is the neighbour.
        let mut best: Option<(CandidateKey, u32, Relationship)> = None;
        for &(nbr, rel) in self.index.neighbors(as_idx) {
            let Some(route) = &self.tables[nbr as usize * npfx + prefix_idx as usize] else {
                continue;
            };
            // Export rule at the neighbour: routes learned from
            // customers (or self-originated) go to everyone;
            // peer/provider routes go to customers only. From `asn`'s
            // view `rel` is the neighbour's role; the neighbour sees
            // `asn` as a customer iff `rel` is Provider.
            let exported = match route.learned_from {
                None | Some(Relationship::Customer) => true,
                Some(Relationship::Peer) | Some(Relationship::Provider) => {
                    rel == Relationship::Provider
                }
            };
            if !exported {
                continue;
            }
            // Loop prevention.
            if route.origin == asn || path_contains(&route.path, asn) {
                continue;
            }
            // Import filter and validity preference. Under Ignore,
            // validity never influences selection, so classification is
            // deferred until materialisation.
            let vrank = match self.policy {
                RpkiPolicy::Ignore => 0,
                RpkiPolicy::DropInvalid => {
                    if self.memo.classify(prefix_idx, prefix, route.origin)
                        == RouteValidity::Invalid
                    {
                        continue;
                    }
                    0
                }
                RpkiPolicy::DeprefInvalid => {
                    validity_rank(self.policy, self.memo.classify(prefix_idx, prefix, route.origin))
                }
            };
            let key = (vrank, rel.rank(), route.path_len + 1, self.index.asn(nbr).0);
            // Strictly-less-than keeps the first of equals, exactly
            // like the reference engine — and since the key totally
            // orders candidates (distinct neighbours differ in the
            // next-hop component), "first" can never matter.
            if best.as_ref().is_none_or(|(bk, _, _)| key < *bk) {
                best = Some((key, nbr, rel));
            }
        }

        let current = &self.tables[as_idx as usize * npfx + prefix_idx as usize];
        match best {
            // Withdrawal iff something was selected before.
            None => current.is_some().then_some(None),
            Some((_, nbr, rel)) => {
                let nbr_asn = self.index.asn(nbr);
                let nbr_route = self.tables[nbr as usize * npfx + prefix_idx as usize]
                    .as_ref()
                    .expect("best candidate came from this cell");
                let unchanged = matches!(current, Some(cur)
                    if cur.learned_from == Some(rel)
                        && cur.origin == nbr_route.origin
                        && cur.path_len == nbr_route.path_len + 1
                        && matches!(&cur.path, Some(node)
                            if node.head == nbr_asn && paths_equal(&node.tail, &nbr_route.path)));
                if unchanged {
                    return None;
                }
                Some(Some(WorkRoute {
                    origin: nbr_route.origin,
                    learned_from: Some(rel),
                    path_len: nbr_route.path_len + 1,
                    path: Some(Arc::new(PathNode { head: nbr_asn, tail: nbr_route.path.clone() })),
                }))
            }
        }
    }

    /// Converts the flat tables into the public [`RoutingState`] form,
    /// classifying each selected route's validity — from the memo, or
    /// for the first time under `Ignore`, where selection never needed
    /// it.
    fn materialize(&mut self) -> RoutingState {
        let npfx = self.prefixes.len();
        let mut tables: BTreeMap<Asn, BTreeMap<Prefix, SelectedRoute>> = BTreeMap::new();
        if npfx == 0 {
            return RoutingState { tables, policy: Some(self.policy) };
        }
        for (as_idx, row) in self.tables.chunks(npfx).enumerate() {
            let mut table = BTreeMap::new();
            for (prefix_idx, cell) in row.iter().enumerate() {
                let Some(route) = cell else { continue };
                let prefix = self.prefixes[prefix_idx];
                let validity = self.memo.classify(prefix_idx as u32, prefix, route.origin);
                table.insert(
                    prefix,
                    SelectedRoute {
                        prefix,
                        origin: route.origin,
                        path: materialize_path(&route.path, route.path_len),
                        learned_from: route.learned_from,
                        validity,
                    },
                );
            }
            if !table.is_empty() {
                tables.insert(self.index.asn(as_idx as u32), table);
            }
        }
        RoutingState { tables, policy: Some(self.policy) }
    }
}

pub mod reference {
    //! The original synchronous full-scan engine, kept (plus the typed
    //! convergence error) as the oracle for the worklist engine: every
    //! round, every `(AS, prefix)` pair re-selects from neighbours'
    //! previous-round tables, stopping after a round with no change.
    //!
    //! The only divergence from the historical implementation is that
    //! empty per-AS tables left behind by insert-then-withdraw
    //! sequences are pruned before returning, so [`RoutingState`]
    //! equality is structural rather than historical.

    use super::*;

    /// Synchronous full-scan propagation; returns the converged state
    /// and the number of rounds (including the final quiescent
    /// confirmation round the worklist engine skips).
    pub fn propagate(
        topology: &Topology,
        announcements: &[Announcement],
        policy: RpkiPolicy,
        cache: &VrpCache,
    ) -> Result<(RoutingState, usize), ConvergenceError> {
        let mut state = RoutingState { tables: BTreeMap::new(), policy: Some(policy) };

        // Seed origins. An origin always carries its own announcement,
        // whatever the RPKI says (it is lying deliberately or it is the
        // legitimate holder; either way it announces).
        let prefixes: BTreeSet<Prefix> = announcements.iter().map(|a| a.prefix).collect();
        for ann in announcements {
            let validity = cache.classify(Route::new(ann.prefix, ann.origin));
            state.tables.entry(ann.origin).or_default().insert(
                ann.prefix,
                SelectedRoute {
                    prefix: ann.prefix,
                    origin: ann.origin,
                    path: Vec::new(),
                    learned_from: None,
                    validity,
                },
            );
        }

        let cap = 2 * topology.len() + 10;
        let mut rounds = 0;
        loop {
            rounds += 1;
            if rounds > cap {
                return Err(ConvergenceError { rounds: cap, cycle: topology.find_transit_cycle() });
            }
            let mut changed = false;

            // Synchronous round: every AS re-selects from neighbours'
            // *previous-round* tables, which keeps the computation
            // deterministic and order-independent.
            let mut next = state.tables.clone();
            for asn in topology.ases() {
                for &prefix in &prefixes {
                    let current = state.tables.get(&asn).and_then(|t| t.get(&prefix));
                    // Origins never replace their own announcement.
                    if matches!(current, Some(r) if r.learned_from.is_none()) {
                        continue;
                    }
                    let mut best: Option<SelectedRoute> = None;
                    for (neighbor, rel) in topology.neighbors(asn) {
                        let Some(route) = state.tables.get(&neighbor).and_then(|t| t.get(&prefix))
                        else {
                            continue;
                        };
                        // Export rule at the neighbour: routes learned
                        // from customers (or self-originated) go to
                        // everyone; peer/provider routes go to
                        // customers only.
                        let exported = match route.learned_from {
                            None | Some(Relationship::Customer) => true,
                            Some(Relationship::Peer) | Some(Relationship::Provider) => {
                                rel == Relationship::Provider
                            }
                        };
                        if !exported {
                            continue;
                        }
                        // Loop prevention.
                        if route.path.contains(&asn) || route.origin == asn {
                            continue;
                        }
                        let mut path = Vec::with_capacity(route.path.len() + 1);
                        path.push(neighbor);
                        path.extend_from_slice(&route.path);
                        let candidate = SelectedRoute {
                            prefix,
                            origin: route.origin,
                            path,
                            learned_from: Some(rel),
                            validity: cache.classify(Route::new(prefix, route.origin)),
                        };
                        // Import filter.
                        if policy == RpkiPolicy::DropInvalid
                            && candidate.validity == RouteValidity::Invalid
                        {
                            continue;
                        }
                        let better = match &best {
                            None => true,
                            Some(b) => candidate.pref_key(policy) < b.pref_key(policy),
                        };
                        if better {
                            best = Some(candidate);
                        }
                    }
                    if best.as_ref() != current {
                        changed = true;
                        let table = next.entry(asn).or_default();
                        match best {
                            Some(route) => {
                                table.insert(prefix, route);
                            }
                            None => {
                                table.remove(&prefix);
                            }
                        }
                    }
                }
            }
            state.tables = next;
            if !changed {
                break;
            }
        }
        // Insert-then-withdraw leaves empty per-AS maps behind; prune
        // them so state comparison is structural, not historical.
        state.tables.retain(|_, t| !t.is_empty());
        Ok((state, rounds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpki_rp::Vrp;

    fn a(n: u32) -> Asn {
        Asn(n)
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Runs both engines, asserts they agree bit-for-bit and that the
    /// worklist engine never needs more rounds, and returns the state.
    fn propagate_checked(
        topology: &Topology,
        announcements: &[Announcement],
        policy: RpkiPolicy,
        cache: &VrpCache,
    ) -> RoutingState {
        let (state, stats) = propagate_with_stats(topology, announcements, policy, cache).unwrap();
        let (oracle, oracle_rounds) =
            reference::propagate(topology, announcements, policy, cache).unwrap();
        assert_eq!(state, oracle, "worklist and reference engines diverged");
        assert!(
            stats.rounds <= oracle_rounds,
            "worklist took {} rounds, reference only {oracle_rounds}",
            stats.rounds,
        );
        state
    }

    /// A line: 1 ← 2 ← 3 (1 is 2's provider, 2 is 3's provider).
    fn chain() -> Topology {
        let mut t = Topology::new();
        t.add_provider_customer(a(1), a(2));
        t.add_provider_customer(a(2), a(3));
        t
    }

    #[test]
    fn routes_propagate_up_and_down() {
        let t = chain();
        let state = propagate_checked(
            &t,
            &[Announcement { prefix: p("10.0.0.0/8"), origin: a(3) }],
            RpkiPolicy::Ignore,
            &VrpCache::new(),
        );
        let r1 = state.best_route(a(1), p("10.0.0.0/8")).unwrap();
        assert_eq!(r1.path, vec![a(2), a(3)]);
        assert_eq!(r1.learned_from, Some(Relationship::Customer));
        let r3 = state.best_route(a(3), p("10.0.0.0/8")).unwrap();
        assert!(r3.path.is_empty());
        assert_eq!(state.ases_with_routes(), 3);
    }

    #[test]
    fn valley_free_export_blocks_peer_to_peer_transit() {
        // 2 — 3 peers; 4 is 3's peer too. A route from 2 must not cross
        // 3 to reach 4 (peer routes are not exported to peers).
        let mut t = Topology::new();
        t.add_peering(a(2), a(3));
        t.add_peering(a(3), a(4));
        let state = propagate_checked(
            &t,
            &[Announcement { prefix: p("10.0.0.0/8"), origin: a(2) }],
            RpkiPolicy::Ignore,
            &VrpCache::new(),
        );
        assert!(state.best_route(a(3), p("10.0.0.0/8")).is_some());
        assert!(state.best_route(a(4), p("10.0.0.0/8")).is_none());
    }

    #[test]
    fn customer_route_preferred_over_peer_and_provider() {
        // AS 1 hears 10/8 from its customer 2, its peer 3, and its
        // provider 4 — all of whom hear it from origin 5.
        let mut t = Topology::new();
        t.add_provider_customer(a(1), a(2));
        t.add_peering(a(1), a(3));
        t.add_provider_customer(a(4), a(1));
        t.add_provider_customer(a(2), a(5));
        t.add_provider_customer(a(3), a(5));
        t.add_provider_customer(a(4), a(5));
        let state = propagate_checked(
            &t,
            &[Announcement { prefix: p("10.0.0.0/8"), origin: a(5) }],
            RpkiPolicy::Ignore,
            &VrpCache::new(),
        );
        let r = state.best_route(a(1), p("10.0.0.0/8")).unwrap();
        assert_eq!(r.learned_from, Some(Relationship::Customer));
        assert_eq!(r.path, vec![a(2), a(5)]);
    }

    #[test]
    fn shorter_path_wins_within_class() {
        // Two customer paths: 1←2←origin and 1←3←4←origin.
        let mut t = Topology::new();
        t.add_provider_customer(a(1), a(2));
        t.add_provider_customer(a(1), a(3));
        t.add_provider_customer(a(3), a(4));
        t.add_provider_customer(a(2), a(9));
        t.add_provider_customer(a(4), a(9));
        let state = propagate_checked(
            &t,
            &[Announcement { prefix: p("10.0.0.0/8"), origin: a(9) }],
            RpkiPolicy::Ignore,
            &VrpCache::new(),
        );
        let r = state.best_route(a(1), p("10.0.0.0/8")).unwrap();
        assert_eq!(r.path, vec![a(2), a(9)]);
    }

    #[test]
    fn drop_invalid_filters_hijack() {
        // Origin 3 holds the ROA; 66 announces the same prefix.
        let t = {
            let mut t = chain();
            t.add_provider_customer(a(1), a(66));
            t
        };
        let cache: VrpCache = [Vrp::new(p("10.0.0.0/8"), 8, a(3))].into_iter().collect();
        let hijack = [
            Announcement { prefix: p("10.0.0.0/8"), origin: a(3) },
            Announcement { prefix: p("10.0.0.0/8"), origin: a(66) },
        ];
        let state = propagate_checked(&t, &hijack, RpkiPolicy::DropInvalid, &cache);
        // AS 1 is adjacent to the hijacker (customer, path length 1 —
        // normally irresistible) but drops the invalid route.
        let r = state.best_route(a(1), p("10.0.0.0/8")).unwrap();
        assert_eq!(r.origin, a(3));
        // Under Ignore, the hijacker's shorter customer route wins.
        let state = propagate_checked(&t, &hijack, RpkiPolicy::Ignore, &cache);
        let r = state.best_route(a(1), p("10.0.0.0/8")).unwrap();
        assert_eq!(r.origin, a(66));
    }

    #[test]
    fn depref_prefers_valid_but_keeps_invalid_as_last_resort() {
        let t = {
            let mut t = chain();
            t.add_provider_customer(a(1), a(66));
            t
        };
        let cache: VrpCache = [Vrp::new(p("10.0.0.0/8"), 8, a(3))].into_iter().collect();
        // Hijack scenario: valid route exists → preferred despite the
        // hijacker's shorter path.
        let both = [
            Announcement { prefix: p("10.0.0.0/8"), origin: a(3) },
            Announcement { prefix: p("10.0.0.0/8"), origin: a(66) },
        ];
        let state = propagate_checked(&t, &both, RpkiPolicy::DeprefInvalid, &cache);
        assert_eq!(state.best_route(a(1), p("10.0.0.0/8")).unwrap().origin, a(3));
        // Manipulation scenario: only the (now-invalid) legitimate route
        // exists — depref still uses it, drop would not.
        let cache_whacked: VrpCache = [Vrp::new(p("10.0.0.0/8"), 8, a(42))].into_iter().collect(); // covering, not matching
        let legit_only = [Announcement { prefix: p("10.0.0.0/8"), origin: a(3) }];
        let state = propagate_checked(&t, &legit_only, RpkiPolicy::DeprefInvalid, &cache_whacked);
        assert_eq!(state.best_route(a(1), p("10.0.0.0/8")).unwrap().origin, a(3));
        let state = propagate_checked(&t, &legit_only, RpkiPolicy::DropInvalid, &cache_whacked);
        assert!(state.best_route(a(1), p("10.0.0.0/8")).is_none());
    }

    #[test]
    fn deterministic_tie_break() {
        // Two equal-length customer paths; lower next-hop ASN wins.
        let mut t = Topology::new();
        t.add_provider_customer(a(1), a(2));
        t.add_provider_customer(a(1), a(3));
        t.add_provider_customer(a(2), a(9));
        t.add_provider_customer(a(3), a(9));
        let state = propagate_checked(
            &t,
            &[Announcement { prefix: p("10.0.0.0/8"), origin: a(9) }],
            RpkiPolicy::Ignore,
            &VrpCache::new(),
        );
        assert_eq!(state.best_route(a(1), p("10.0.0.0/8")).unwrap().path[0], a(2));
    }

    #[test]
    fn multiple_prefixes_propagate_independently() {
        let t = chain();
        let state = propagate_checked(
            &t,
            &[
                Announcement { prefix: p("10.0.0.0/8"), origin: a(3) },
                Announcement { prefix: p("20.0.0.0/8"), origin: a(1) },
            ],
            RpkiPolicy::Ignore,
            &VrpCache::new(),
        );
        assert_eq!(state.best_route(a(1), p("10.0.0.0/8")).unwrap().origin, a(3));
        assert_eq!(state.best_route(a(3), p("20.0.0.0/8")).unwrap().origin, a(1));
    }

    #[test]
    fn converges_even_on_odd_topologies() {
        // A transit cycle (1→2→3→1) is economic nonsense but must not
        // hang the fixed point: loop prevention bounds the paths and the
        // synchronous iteration settles.
        let mut t = Topology::new();
        t.add_provider_customer(a(1), a(2));
        t.add_provider_customer(a(2), a(3));
        t.add_provider_customer(a(3), a(1));
        assert!(t.find_transit_cycle().is_some());
        let state = propagate_checked(
            &t,
            &[Announcement { prefix: p("10.0.0.0/8"), origin: a(1) }],
            RpkiPolicy::Ignore,
            &VrpCache::new(),
        );
        assert_eq!(state.ases_with_routes(), 3);
    }

    #[test]
    fn empty_announcements_converge_in_zero_rounds() {
        let t = chain();
        let (state, stats) =
            propagate_with_stats(&t, &[], RpkiPolicy::Ignore, &VrpCache::new()).unwrap();
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.route_updates, 0);
        assert_eq!(state.ases_with_routes(), 0);
        let (oracle, _) =
            reference::propagate(&t, &[], RpkiPolicy::Ignore, &VrpCache::new()).unwrap();
        assert_eq!(state, oracle);
    }

    #[test]
    fn origin_outside_topology_keeps_its_route_but_propagates_nothing() {
        let t = chain();
        let state = propagate_checked(
            &t,
            &[Announcement { prefix: p("10.0.0.0/8"), origin: a(99) }],
            RpkiPolicy::Ignore,
            &VrpCache::new(),
        );
        assert!(state.best_route(a(99), p("10.0.0.0/8")).is_some());
        assert_eq!(state.ases_with_routes(), 1);
    }

    #[test]
    fn stats_count_memoized_validity_lookups() {
        // Under DeprefInvalid every candidate evaluation consults the
        // memo; with one (prefix, origin) pair there is exactly one
        // miss, and at least one hit on any multi-AS topology.
        let t = chain();
        let cache: VrpCache = [Vrp::new(p("10.0.0.0/8"), 8, a(3))].into_iter().collect();
        let (_, stats) = propagate_with_stats(
            &t,
            &[Announcement { prefix: p("10.0.0.0/8"), origin: a(3) }],
            RpkiPolicy::DeprefInvalid,
            &cache,
        )
        .unwrap();
        assert_eq!(stats.memo_misses, 1);
        assert!(stats.memo_hits >= 1);
        assert!(stats.rounds >= 2);
        assert!(stats.route_updates >= 2);
        assert!(stats.pairs_evaluated >= stats.route_updates);
    }

    #[test]
    fn ignore_policy_defers_validity_to_materialisation() {
        // One (prefix, origin) pair → exactly one classification in
        // total under Ignore, and the stored validity still reflects
        // the cache.
        let t = chain();
        let cache: VrpCache = [Vrp::new(p("10.0.0.0/8"), 8, a(42))].into_iter().collect();
        let (state, stats) = propagate_with_stats(
            &t,
            &[Announcement { prefix: p("10.0.0.0/8"), origin: a(3) }],
            RpkiPolicy::Ignore,
            &cache,
        )
        .unwrap();
        assert_eq!(stats.memo_misses, 1);
        assert_eq!(
            state.best_route(a(1), p("10.0.0.0/8")).unwrap().validity,
            RouteValidity::Invalid
        );
    }

    #[test]
    fn convergence_error_reports_cycle() {
        let err = ConvergenceError { rounds: 16, cycle: Some(vec![a(1), a(2), a(1)]) };
        let text = err.to_string();
        assert!(text.contains("16 rounds"), "{text}");
        assert!(text.contains("transit cycle: AS1 AS2 AS1"), "{text}");
        let err = ConvergenceError { rounds: 16, cycle: None };
        assert!(err.to_string().contains("no transit cycle"), "{}", err);
    }
}
