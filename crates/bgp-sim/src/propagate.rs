//! Route propagation to a Gao–Rexford fixed point, with RPKI policies.

use std::collections::{BTreeMap, BTreeSet};

use ipres::{Asn, Prefix};
use rpki_rp::{Route, RouteValidity, VrpCache};
use serde::Serialize;

use crate::topology::{Relationship, Topology};

/// One origination: `origin` claims to be the destination for `prefix`.
/// Hijacks are simply announcements whose origin is not the legitimate
/// holder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Announcement {
    /// The announced prefix.
    pub prefix: Prefix,
    /// The announcing origin AS.
    pub origin: Asn,
}

/// The relying party's local policy for using route validity in BGP —
/// the paper's Section 5 / Table 6 knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum RpkiPolicy {
    /// Origin validation off (the pre-RPKI Internet).
    Ignore,
    /// Never select an invalid route.
    DropInvalid,
    /// Prefer valid over unknown over invalid, but still use invalid
    /// routes when nothing better exists for that exact prefix.
    DeprefInvalid,
}

/// A route selected by some AS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SelectedRoute {
    /// The route's prefix.
    pub prefix: Prefix,
    /// The origin AS of the announcement.
    pub origin: Asn,
    /// AS path from (excluding) the selecting AS to the origin:
    /// `path[0]` is the next hop; `path.last()` is the origin. Empty
    /// for the origin itself.
    pub path: Vec<Asn>,
    /// Relationship of the next hop to the selecting AS (`None` for
    /// self-originated routes).
    pub learned_from: Option<Relationship>,
    /// RFC 6811 state of `(prefix, origin)` under the cache in force.
    pub validity: RouteValidity,
}

impl SelectedRoute {
    fn pref_key(&self, policy: RpkiPolicy) -> (u8, u8, usize, u32) {
        let validity_rank = match (policy, self.validity) {
            (RpkiPolicy::DeprefInvalid, RouteValidity::Valid) => 0,
            (RpkiPolicy::DeprefInvalid, RouteValidity::Unknown) => 1,
            (RpkiPolicy::DeprefInvalid, RouteValidity::Invalid) => 2,
            _ => 0,
        };
        let rel_rank = self.learned_from.map(Relationship::rank).unwrap_or(0);
        let next_hop = self.path.first().map(|a| a.0).unwrap_or(0);
        (validity_rank, rel_rank, self.path.len(), next_hop)
    }
}

/// The converged routing state of the whole topology.
#[derive(Debug, Default)]
pub struct RoutingState {
    /// `AS → prefix → selected route`.
    tables: BTreeMap<Asn, BTreeMap<Prefix, SelectedRoute>>,
    /// The policy the state was computed under.
    policy: Option<RpkiPolicy>,
}

impl RoutingState {
    /// The route `asn` selected for exactly `prefix`, if any.
    pub fn best_route(&self, asn: Asn, prefix: Prefix) -> Option<&SelectedRoute> {
        self.tables.get(&asn)?.get(&prefix)
    }

    /// All selected routes at `asn`.
    pub fn table(&self, asn: Asn) -> impl Iterator<Item = &SelectedRoute> {
        self.tables.get(&asn).into_iter().flat_map(|t| t.values())
    }

    /// The policy in force when this state was computed.
    pub fn policy(&self) -> Option<RpkiPolicy> {
        self.policy
    }

    /// ASes holding at least one route.
    pub fn ases_with_routes(&self) -> usize {
        self.tables.values().filter(|t| !t.is_empty()).count()
    }
}

/// Propagates `announcements` over `topology` under `policy`, using
/// `cache` for origin validation, and returns the converged state.
///
/// Iterates synchronous rounds to a fixed point (Gao–Rexford graphs
/// converge; a cycle in the transit hierarchy would not, so the round
/// count is capped).
///
/// # Panics
///
/// Panics if the computation has not converged after an iteration cap
/// proportional to the AS count — which indicates a transit cycle; call
/// [`Topology::find_transit_cycle`] to locate it.
pub fn propagate(
    topology: &Topology,
    announcements: &[Announcement],
    policy: RpkiPolicy,
    cache: &VrpCache,
) -> RoutingState {
    let mut state = RoutingState { tables: BTreeMap::new(), policy: Some(policy) };

    // Seed origins. An origin always carries its own announcement,
    // whatever the RPKI says (it is lying deliberately or it is the
    // legitimate holder; either way it announces).
    let prefixes: BTreeSet<Prefix> = announcements.iter().map(|a| a.prefix).collect();
    for ann in announcements {
        let validity = cache.classify(Route::new(ann.prefix, ann.origin));
        state.tables.entry(ann.origin).or_default().insert(
            ann.prefix,
            SelectedRoute {
                prefix: ann.prefix,
                origin: ann.origin,
                path: Vec::new(),
                learned_from: None,
                validity,
            },
        );
    }

    let cap = 2 * topology.len() + 10;
    let mut rounds = 0;
    loop {
        rounds += 1;
        assert!(
            rounds <= cap,
            "BGP propagation failed to converge in {cap} rounds; transit cycle?"
        );
        let mut changed = false;

        // Synchronous round: every AS re-selects from neighbours'
        // *previous-round* tables, which keeps the computation
        // deterministic and order-independent.
        let mut next = state.tables.clone();
        for asn in topology.ases() {
            for &prefix in &prefixes {
                let current = state.tables.get(&asn).and_then(|t| t.get(&prefix));
                // Origins never replace their own announcement.
                if matches!(current, Some(r) if r.learned_from.is_none()) {
                    continue;
                }
                let mut best: Option<SelectedRoute> = None;
                for (neighbor, rel) in topology.neighbors(asn) {
                    let Some(route) = state.tables.get(&neighbor).and_then(|t| t.get(&prefix))
                    else {
                        continue;
                    };
                    // Export rule at the neighbour: routes learned from
                    // customers (or self-originated) go to everyone;
                    // peer/provider routes go to customers only. From
                    // `asn`'s view, `rel` is the neighbour's role; the
                    // neighbour sees `asn` as a customer iff `rel` is
                    // Provider.
                    let exported = match route.learned_from {
                        None | Some(Relationship::Customer) => true,
                        Some(Relationship::Peer) | Some(Relationship::Provider) => {
                            rel == Relationship::Provider
                        }
                    };
                    if !exported {
                        continue;
                    }
                    // Loop prevention.
                    if route.path.contains(&asn) || route.origin == asn {
                        continue;
                    }
                    let mut path = Vec::with_capacity(route.path.len() + 1);
                    path.push(neighbor);
                    path.extend_from_slice(&route.path);
                    let candidate = SelectedRoute {
                        prefix,
                        origin: route.origin,
                        path,
                        learned_from: Some(rel),
                        validity: cache.classify(Route::new(prefix, route.origin)),
                    };
                    // Import filter.
                    if policy == RpkiPolicy::DropInvalid
                        && candidate.validity == RouteValidity::Invalid
                    {
                        continue;
                    }
                    let better = match &best {
                        None => true,
                        Some(b) => candidate.pref_key(policy) < b.pref_key(policy),
                    };
                    if better {
                        best = Some(candidate);
                    }
                }
                if best.as_ref() != current {
                    changed = true;
                    let table = next.entry(asn).or_default();
                    match best {
                        Some(route) => {
                            table.insert(prefix, route);
                        }
                        None => {
                            table.remove(&prefix);
                        }
                    }
                }
            }
        }
        state.tables = next;
        if !changed {
            break;
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpki_rp::Vrp;

    fn a(n: u32) -> Asn {
        Asn(n)
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// A line: 1 ← 2 ← 3 (1 is 2's provider, 2 is 3's provider).
    fn chain() -> Topology {
        let mut t = Topology::new();
        t.add_provider_customer(a(1), a(2));
        t.add_provider_customer(a(2), a(3));
        t
    }

    #[test]
    fn routes_propagate_up_and_down() {
        let t = chain();
        let state = propagate(
            &t,
            &[Announcement { prefix: p("10.0.0.0/8"), origin: a(3) }],
            RpkiPolicy::Ignore,
            &VrpCache::new(),
        );
        let r1 = state.best_route(a(1), p("10.0.0.0/8")).unwrap();
        assert_eq!(r1.path, vec![a(2), a(3)]);
        assert_eq!(r1.learned_from, Some(Relationship::Customer));
        let r3 = state.best_route(a(3), p("10.0.0.0/8")).unwrap();
        assert!(r3.path.is_empty());
        assert_eq!(state.ases_with_routes(), 3);
    }

    #[test]
    fn valley_free_export_blocks_peer_to_peer_transit() {
        // 2 — 3 peers; 4 is 3's peer too. A route from 2 must not cross
        // 3 to reach 4 (peer routes are not exported to peers).
        let mut t = Topology::new();
        t.add_peering(a(2), a(3));
        t.add_peering(a(3), a(4));
        let state = propagate(
            &t,
            &[Announcement { prefix: p("10.0.0.0/8"), origin: a(2) }],
            RpkiPolicy::Ignore,
            &VrpCache::new(),
        );
        assert!(state.best_route(a(3), p("10.0.0.0/8")).is_some());
        assert!(state.best_route(a(4), p("10.0.0.0/8")).is_none());
    }

    #[test]
    fn customer_route_preferred_over_peer_and_provider() {
        // AS 1 hears 10/8 from its customer 2, its peer 3, and its
        // provider 4 — all of whom hear it from origin 5.
        let mut t = Topology::new();
        t.add_provider_customer(a(1), a(2));
        t.add_peering(a(1), a(3));
        t.add_provider_customer(a(4), a(1));
        t.add_provider_customer(a(2), a(5));
        t.add_provider_customer(a(3), a(5));
        t.add_provider_customer(a(4), a(5));
        let state = propagate(
            &t,
            &[Announcement { prefix: p("10.0.0.0/8"), origin: a(5) }],
            RpkiPolicy::Ignore,
            &VrpCache::new(),
        );
        let r = state.best_route(a(1), p("10.0.0.0/8")).unwrap();
        assert_eq!(r.learned_from, Some(Relationship::Customer));
        assert_eq!(r.path, vec![a(2), a(5)]);
    }

    #[test]
    fn shorter_path_wins_within_class() {
        // Two customer paths: 1←2←origin and 1←3←4←origin.
        let mut t = Topology::new();
        t.add_provider_customer(a(1), a(2));
        t.add_provider_customer(a(1), a(3));
        t.add_provider_customer(a(3), a(4));
        t.add_provider_customer(a(2), a(9));
        t.add_provider_customer(a(4), a(9));
        let state = propagate(
            &t,
            &[Announcement { prefix: p("10.0.0.0/8"), origin: a(9) }],
            RpkiPolicy::Ignore,
            &VrpCache::new(),
        );
        let r = state.best_route(a(1), p("10.0.0.0/8")).unwrap();
        assert_eq!(r.path, vec![a(2), a(9)]);
    }

    #[test]
    fn drop_invalid_filters_hijack() {
        // Origin 3 holds the ROA; 66 announces the same prefix.
        let t = {
            let mut t = chain();
            t.add_provider_customer(a(1), a(66));
            t
        };
        let cache: VrpCache = [Vrp::new(p("10.0.0.0/8"), 8, a(3))].into_iter().collect();
        let hijack = [
            Announcement { prefix: p("10.0.0.0/8"), origin: a(3) },
            Announcement { prefix: p("10.0.0.0/8"), origin: a(66) },
        ];
        let state = propagate(&t, &hijack, RpkiPolicy::DropInvalid, &cache);
        // AS 1 is adjacent to the hijacker (customer, path length 1 —
        // normally irresistible) but drops the invalid route.
        let r = state.best_route(a(1), p("10.0.0.0/8")).unwrap();
        assert_eq!(r.origin, a(3));
        // Under Ignore, the hijacker's shorter customer route wins.
        let state = propagate(&t, &hijack, RpkiPolicy::Ignore, &cache);
        let r = state.best_route(a(1), p("10.0.0.0/8")).unwrap();
        assert_eq!(r.origin, a(66));
    }

    #[test]
    fn depref_prefers_valid_but_keeps_invalid_as_last_resort() {
        let t = {
            let mut t = chain();
            t.add_provider_customer(a(1), a(66));
            t
        };
        let cache: VrpCache = [Vrp::new(p("10.0.0.0/8"), 8, a(3))].into_iter().collect();
        // Hijack scenario: valid route exists → preferred despite the
        // hijacker's shorter path.
        let both = [
            Announcement { prefix: p("10.0.0.0/8"), origin: a(3) },
            Announcement { prefix: p("10.0.0.0/8"), origin: a(66) },
        ];
        let state = propagate(&t, &both, RpkiPolicy::DeprefInvalid, &cache);
        assert_eq!(state.best_route(a(1), p("10.0.0.0/8")).unwrap().origin, a(3));
        // Manipulation scenario: only the (now-invalid) legitimate route
        // exists — depref still uses it, drop would not.
        let cache_whacked: VrpCache =
            [Vrp::new(p("10.0.0.0/8"), 8, a(42))].into_iter().collect(); // covering, not matching
        let legit_only = [Announcement { prefix: p("10.0.0.0/8"), origin: a(3) }];
        let state = propagate(&t, &legit_only, RpkiPolicy::DeprefInvalid, &cache_whacked);
        assert_eq!(state.best_route(a(1), p("10.0.0.0/8")).unwrap().origin, a(3));
        let state = propagate(&t, &legit_only, RpkiPolicy::DropInvalid, &cache_whacked);
        assert!(state.best_route(a(1), p("10.0.0.0/8")).is_none());
    }

    #[test]
    fn deterministic_tie_break() {
        // Two equal-length customer paths; lower next-hop ASN wins.
        let mut t = Topology::new();
        t.add_provider_customer(a(1), a(2));
        t.add_provider_customer(a(1), a(3));
        t.add_provider_customer(a(2), a(9));
        t.add_provider_customer(a(3), a(9));
        let state = propagate(
            &t,
            &[Announcement { prefix: p("10.0.0.0/8"), origin: a(9) }],
            RpkiPolicy::Ignore,
            &VrpCache::new(),
        );
        assert_eq!(state.best_route(a(1), p("10.0.0.0/8")).unwrap().path[0], a(2));
    }

    #[test]
    fn multiple_prefixes_propagate_independently() {
        let t = chain();
        let state = propagate(
            &t,
            &[
                Announcement { prefix: p("10.0.0.0/8"), origin: a(3) },
                Announcement { prefix: p("20.0.0.0/8"), origin: a(1) },
            ],
            RpkiPolicy::Ignore,
            &VrpCache::new(),
        );
        assert_eq!(state.best_route(a(1), p("10.0.0.0/8")).unwrap().origin, a(3));
        assert_eq!(state.best_route(a(3), p("20.0.0.0/8")).unwrap().origin, a(1));
    }

    #[test]
    fn converges_even_on_odd_topologies() {
        // A transit cycle (1→2→3→1) is economic nonsense but must not
        // hang the fixed point: loop prevention bounds the paths and the
        // synchronous iteration settles.
        let mut t = Topology::new();
        t.add_provider_customer(a(1), a(2));
        t.add_provider_customer(a(2), a(3));
        t.add_provider_customer(a(3), a(1));
        assert!(t.find_transit_cycle().is_some());
        let state = propagate(
            &t,
            &[Announcement { prefix: p("10.0.0.0/8"), origin: a(1) }],
            RpkiPolicy::Ignore,
            &VrpCache::new(),
        );
        assert_eq!(state.ases_with_routes(), 3);
    }
}
