//! Data-plane forwarding: longest-prefix match over selected routes.
//!
//! Subprefix hijacks are won here, not in the RIB: a router holding a
//! perfectly good /16 route still sends the packet toward whoever
//! announced the covering /24 (the paper's "Design Decision: retaining
//! BGP's subprefix semantics"). [`RoutingState::forward`] walks a packet
//! hop by hop, each hop doing LPM over that AS's own table.

use ipres::{Addr, Asn, PrefixTrie};
use serde::Serialize;

use crate::propagate::RoutingState;

/// Where a packet ended up.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum ForwardOutcome {
    /// The packet reached the AS that originated the best-matching
    /// route — which may be a hijacker, not the rightful holder.
    Delivered {
        /// The origin AS the packet landed at.
        at: Asn,
        /// The ASes traversed, source first, destination last.
        path: Vec<Asn>,
    },
    /// Some AS on the way had no route covering the address.
    NoRoute {
        /// The AS that had to drop the packet.
        at: Asn,
        /// ASes traversed up to and including `at`.
        path: Vec<Asn>,
    },
    /// Forwarding looped (inconsistent tables — possible while tables
    /// disagree about LPM winners mid-attack).
    Loop {
        /// ASes traversed until the repeat was detected.
        path: Vec<Asn>,
    },
}

impl ForwardOutcome {
    /// Whether the packet was delivered to `asn`.
    pub fn delivered_to(&self, asn: Asn) -> bool {
        matches!(self, ForwardOutcome::Delivered { at, .. } if *at == asn)
    }
}

impl RoutingState {
    /// Forwards a packet for `addr` from `src`, hop by hop, each hop
    /// using longest-prefix match over its own selected routes.
    pub fn forward(&self, src: Asn, addr: Addr) -> ForwardOutcome {
        let mut path = vec![src];
        let mut current = src;
        loop {
            // LPM over this AS's table.
            let mut trie: PrefixTrie<&crate::propagate::SelectedRoute> = PrefixTrie::new();
            for route in self.table(current) {
                trie.insert(route.prefix, route);
            }
            let Some((_, routes)) = trie.longest_match(addr) else {
                return ForwardOutcome::NoRoute { at: current, path };
            };
            let route = routes[0];
            if route.path.is_empty() {
                // We are the origin of the best-matching route.
                return ForwardOutcome::Delivered { at: current, path };
            }
            let next = route.path[0];
            if path.contains(&next) {
                path.push(next);
                return ForwardOutcome::Loop { path };
            }
            path.push(next);
            current = next;
        }
    }

    /// Fraction of ASes in `ases` whose packets for `addr` reach
    /// `destination`. The headline number of the paper's Table 6.
    pub fn reachability_of(
        &self,
        ases: impl Iterator<Item = Asn>,
        addr: Addr,
        destination: Asn,
    ) -> f64 {
        let mut total = 0usize;
        let mut ok = 0usize;
        for asn in ases {
            total += 1;
            if self.forward(asn, addr).delivered_to(destination) {
                ok += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            ok as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate::{propagate, Announcement, RpkiPolicy};
    use crate::topology::Topology;
    use ipres::Prefix;
    use rpki_rp::{Vrp, VrpCache};

    fn a(n: u32) -> Asn {
        Asn(n)
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> Addr {
        s.parse().unwrap()
    }

    /// 1 is the Tier-1 provider of 2 (victim) and 66 (attacker); 4 is a
    /// bystander customer of 1.
    fn diamond() -> Topology {
        let mut t = Topology::new();
        t.add_provider_customer(a(1), a(2));
        t.add_provider_customer(a(1), a(66));
        t.add_provider_customer(a(1), a(4));
        t
    }

    #[test]
    fn normal_delivery() {
        let t = diamond();
        let state = propagate(
            &t,
            &[Announcement { prefix: p("10.0.0.0/16"), origin: a(2) }],
            RpkiPolicy::Ignore,
            &VrpCache::new(),
        )
        .unwrap();
        let out = state.forward(a(4), addr("10.0.1.1"));
        assert!(out.delivered_to(a(2)));
        match out {
            ForwardOutcome::Delivered { path, .. } => assert_eq!(path, vec![a(4), a(1), a(2)]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_route_outcome() {
        let t = diamond();
        let state = propagate(
            &t,
            &[Announcement { prefix: p("10.0.0.0/16"), origin: a(2) }],
            RpkiPolicy::Ignore,
            &VrpCache::new(),
        )
        .unwrap();
        match state.forward(a(4), addr("99.0.0.1")) {
            ForwardOutcome::NoRoute { at, .. } => assert_eq!(at, a(4)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn subprefix_hijack_wins_at_forwarding_without_rpki() {
        // Victim announces /16, attacker announces a /24 inside it.
        let t = diamond();
        let anns = [
            Announcement { prefix: p("10.0.0.0/16"), origin: a(2) },
            Announcement { prefix: p("10.0.1.0/24"), origin: a(66) },
        ];
        let state = propagate(&t, &anns, RpkiPolicy::Ignore, &VrpCache::new()).unwrap();
        // Traffic to the hijacked /24 goes to the attacker, the rest of
        // the /16 still reaches the victim.
        assert!(state.forward(a(4), addr("10.0.1.1")).delivered_to(a(66)));
        assert!(state.forward(a(4), addr("10.0.2.1")).delivered_to(a(2)));
    }

    #[test]
    fn drop_invalid_stops_subprefix_hijack() {
        // The victim's ROA (10.0.0.0/16-16, AS2) makes the /24 invalid.
        let t = diamond();
        let cache: VrpCache = [Vrp::new(p("10.0.0.0/16"), 16, a(2))].into_iter().collect();
        let anns = [
            Announcement { prefix: p("10.0.0.0/16"), origin: a(2) },
            Announcement { prefix: p("10.0.1.0/24"), origin: a(66) },
        ];
        let state = propagate(&t, &anns, RpkiPolicy::DropInvalid, &cache).unwrap();
        assert!(state.forward(a(4), addr("10.0.1.1")).delivered_to(a(2)));
    }

    #[test]
    fn depref_does_not_stop_subprefix_hijack() {
        // Table 6's key asymmetry: depref compares routes for the SAME
        // prefix; the hijacker's /24 has no valid competitor at /24, so
        // LPM still sends traffic to the attacker.
        let t = diamond();
        let cache: VrpCache = [Vrp::new(p("10.0.0.0/16"), 16, a(2))].into_iter().collect();
        let anns = [
            Announcement { prefix: p("10.0.0.0/16"), origin: a(2) },
            Announcement { prefix: p("10.0.1.0/24"), origin: a(66) },
        ];
        let state = propagate(&t, &anns, RpkiPolicy::DeprefInvalid, &cache).unwrap();
        assert!(state.forward(a(4), addr("10.0.1.1")).delivered_to(a(66)));
    }

    #[test]
    fn reachability_fraction() {
        let t = diamond();
        let state = propagate(
            &t,
            &[Announcement { prefix: p("10.0.0.0/16"), origin: a(2) }],
            RpkiPolicy::Ignore,
            &VrpCache::new(),
        )
        .unwrap();
        let frac = state.reachability_of(t.ases(), addr("10.0.0.1"), a(2));
        assert_eq!(frac, 1.0);
        let frac = state.reachability_of(t.ases(), addr("10.0.0.1"), a(66));
        assert_eq!(frac, 0.0);
    }

    #[test]
    fn empty_iterator_reachability_is_zero() {
        let t = diamond();
        let state = propagate(&t, &[], RpkiPolicy::Ignore, &VrpCache::new()).unwrap();
        assert_eq!(state.reachability_of(std::iter::empty(), addr("10.0.0.1"), a(2)), 0.0);
    }
}
