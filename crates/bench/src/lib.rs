//! Support library for the experiment harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index). They all print a
//! human-readable table to stdout and, with `--json`, a machine-
//! readable record to stderr — EXPERIMENTS.md is built from these
//! outputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

/// A minimal fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Display>(header: &[S]) -> Self {
        Table { header: header.iter().map(|h| h.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Display>(&mut self, cells: &[S]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout with a title.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==\n");
        print!("{}", self.render());
    }
}

/// Whether `--json` was passed to the binary.
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Emits a JSON record to stderr when `--json` was requested.
pub fn emit_json<T: serde::Serialize>(label: &str, value: &T) {
    if json_requested() {
        eprintln!("{}", serde_json::json!({ "experiment": label, "data": value }));
    }
}

/// Parses `--scale N` (experiment size multiplier; default 1).
pub fn scale_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "n"]);
        t.row(&["alpha", "1"]);
        t.row(&["b", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("alpha  1"));
        assert!(lines[3].starts_with("b      22"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one"]);
    }
}
