//! Support library for the experiment harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index). They all print a
//! human-readable table to stdout and, with `--json`, a machine-
//! readable record to stderr — EXPERIMENTS.md is built from these
//! outputs.
//!
//! Rendering goes through the `rpki-obs` summary pipeline: [`Table`]
//! is a thin wrapper over [`SummaryTable`], and the richer binaries
//! build a full [`Summary`] document. With `--trace PATH` (or the
//! `BENCH_TRACE` environment variable) a binary that supports tracing
//! also writes its recorder's JSONL event trace to `PATH`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

pub use rpki_obs::{Recorder, Summary, SummaryTable};

/// A minimal fixed-width table printer — a wrapper over
/// [`SummaryTable`] keeping the historical `print(title)` shape.
#[derive(Debug, Default)]
pub struct Table {
    inner: SummaryTable,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Display>(header: &[S]) -> Self {
        Table { inner: SummaryTable::new(header) }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Display>(&mut self, cells: &[S]) -> &mut Self {
        self.inner.row(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        self.inner.render()
    }

    /// Prints the table to stdout with a title.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==\n");
        print!("{}", self.render());
    }
}

/// The JSONL trace destination: `--trace PATH` or `BENCH_TRACE`.
pub fn trace_path() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| std::env::var("BENCH_TRACE").ok())
}

/// A recorder that is live exactly when a trace destination was given,
/// so untraced runs pay only the disabled-path branch.
pub fn trace_recorder() -> Recorder {
    if trace_path().is_some() {
        Recorder::new()
    } else {
        Recorder::disabled()
    }
}

/// Writes the recorder's JSONL trace to the requested destination (a
/// no-op without `--trace`/`BENCH_TRACE`); returns the path written.
pub fn write_trace(recorder: &Recorder) -> Option<String> {
    let path = trace_path()?;
    std::fs::write(&path, recorder.trace_jsonl()).expect("write trace file");
    Some(path)
}

/// A minimal JSON-Schema subset checker for the committed `schemas/`
/// files: supports `type` (null/boolean/integer/number/string/array/
/// object), `required`, `properties`, and `items`. Enough to pin the
/// shape of the `BENCH_*.json` exports in CI without a new dependency.
pub mod schema {
    use serde_json::Json;

    /// Checks `value` against `schema`; the error names the failing
    /// JSON-pointer-ish path and what was expected.
    pub fn check(value: &Json, schema: &Json) -> Result<(), String> {
        walk(value, schema, "$")
    }

    fn type_name(value: &Json) -> &'static str {
        match value {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    fn is_integer(num: &str) -> bool {
        !num.contains(['.', 'e', 'E'])
    }

    fn walk(value: &Json, schema: &Json, path: &str) -> Result<(), String> {
        if let Some(expected) = schema.get("type").and_then(Json::as_str) {
            let ok = match (expected, value) {
                ("integer", Json::Num(n)) => is_integer(n),
                ("number", Json::Num(_)) => true,
                (want, got) => want == type_name(got),
            };
            if !ok {
                return Err(format!("{path}: expected {expected}, got {}", type_name(value)));
            }
        }
        if let Some(required) = schema.get("required").and_then(Json::as_array) {
            for key in required {
                let key = key.as_str().ok_or_else(|| format!("{path}: bad required entry"))?;
                if value.get(key).is_none() {
                    return Err(format!("{path}: missing required field {key:?}"));
                }
            }
        }
        if let Some(Json::Object(props)) = schema.get("properties") {
            for (key, sub) in props {
                if let Some(field) = value.get(key) {
                    walk(field, sub, &format!("{path}.{key}"))?;
                }
            }
        }
        if let Some(items) = schema.get("items") {
            if let Some(elems) = value.as_array() {
                for (i, elem) in elems.iter().enumerate() {
                    walk(elem, items, &format!("{path}[{i}]"))?;
                }
            }
        }
        Ok(())
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn parse(s: &str) -> Json {
            serde_json::from_str(s).expect("test JSON parses")
        }

        #[test]
        fn accepts_matching_document() {
            let schema = parse(
                r#"{"type":"array","items":{"type":"object",
                    "required":["n","name"],
                    "properties":{"n":{"type":"integer"},"name":{"type":"string"}}}}"#,
            );
            let doc = parse(r#"[{"n":1,"name":"a"},{"n":2,"name":"b","extra":true}]"#);
            assert_eq!(check(&doc, &schema), Ok(()));
        }

        #[test]
        fn rejects_missing_required_field() {
            let schema = parse(r#"{"type":"object","required":["n"]}"#);
            let err = check(&parse("{}"), &schema).unwrap_err();
            assert!(err.contains("missing required field"), "{err}");
        }

        #[test]
        fn rejects_wrong_type_with_path() {
            let schema = parse(
                r#"{"type":"array","items":{"type":"object",
                    "properties":{"n":{"type":"integer"}}}}"#,
            );
            let err = check(&parse(r#"[{"n":1},{"n":1.5}]"#), &schema).unwrap_err();
            assert_eq!(err, "$[1].n: expected integer, got number");
        }

        #[test]
        fn number_accepts_floats_and_integers() {
            let schema = parse(r#"{"type":"number"}"#);
            assert_eq!(check(&parse("1.5"), &schema), Ok(()));
            assert_eq!(check(&parse("3"), &schema), Ok(()));
        }
    }
}

/// Whether `--json` was passed to the binary.
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Emits a JSON record to stderr when `--json` was requested.
pub fn emit_json<T: serde::Serialize>(label: &str, value: &T) {
    if json_requested() {
        eprintln!("{}", serde_json::json!({ "experiment": label, "data": value }));
    }
}

/// Parses `--scale N` (experiment size multiplier; default 1).
pub fn scale_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "n"]);
        t.row(&["alpha", "1"]);
        t.row(&["b", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("alpha  1"));
        assert!(lines[3].starts_with("b      22"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one"]);
    }
}
