//! Table 4: RCs and the countries they cover outside the jurisdiction
//! of their parent RIR.
//!
//! Runs the Section 3.2 measurement over a seeded synthetic Internet
//! carrying the paper's anchor organisations (Level3, Cogent, Verizon,
//! Sprint, …) plus random cross-border suballocation. `--scale N`
//! multiplies the world size.

use rpki_risk::jurisdiction_report;
use rpki_risk_bench::{emit_json, scale_arg, Table};
use topogen::{Config, SyntheticInternet};

fn main() {
    let scale = scale_arg();
    let config = Config {
        seed: 2013,
        transits: 25 * scale,
        stubs: 200 * scale,
        roa_adoption: 1.0,
        cross_border: 0.15,
        anchors: true,
        self_hosting: 1.0,
    };
    println!(
        "Table 4 — cross-jurisdiction certification (synthetic Internet, seed {}, {} transits, {} stubs)",
        config.seed, config.transits, config.stubs
    );

    let world = SyntheticInternet::generate(config);
    let report = jurisdiction_report(&world);

    // The paper's table: the planted anchors, with their foreign
    // coverage as measured on the generated world.
    let mut table = Table::new(&["Holder", "RC", "RIR", "Countries outside RIR jurisdiction"]);
    for row in
        report.rows.iter().filter(|r| topogen::ANCHOR_ORGS.iter().any(|a| a.name == r.holder))
    {
        table.row(&[
            row.holder.clone(),
            row.rc.join(", "),
            row.rir.to_owned(),
            row.foreign_countries.join(","),
        ]);
    }
    table.print("Anchor rows (the paper's Table 4)");

    // The aggregate claim: "cross-country certification is not
    // uncommon".
    let organic: Vec<_> = report
        .rows
        .iter()
        .filter(|r| !topogen::ANCHOR_ORGS.iter().any(|a| a.name == r.holder))
        .collect();
    let mut agg = Table::new(&["metric", "value"]);
    agg.row(&["RCs examined".to_owned(), report.rcs_examined.to_string()]);
    agg.row(&[
        "RCs covering foreign countries".to_owned(),
        report.rcs_crossing_borders.to_string(),
    ]);
    agg.row(&["…of which organic (non-anchor)".to_owned(), organic.len().to_string()]);
    agg.row(&[
        "fraction crossing borders".to_owned(),
        format!("{:.1}%", 100.0 * report.rcs_crossing_borders as f64 / report.rcs_examined as f64),
    ]);
    agg.print("Aggregates");

    // Section 3.2's per-registry claim: "ARIN can whack ROAs for Europe
    // and the Middle East; RIPE can whack ROAs in Asia and the
    // Americas."
    let reach = rpki_risk::rir_reach(&world);
    let mut reach_table = Table::new(&["RIR", "foreign orgs under it", "countries it could whack"]);
    for r in &reach {
        if r.foreign_orgs == 0 {
            continue;
        }
        reach_table.row(&[
            r.rir.to_owned(),
            r.foreign_orgs.to_string(),
            r.whackable_foreign_countries.join(","),
        ]);
    }
    reach_table.print("Whacking reach across legal borders, per RIR");

    assert!(
        report.rcs_crossing_borders >= topogen::ANCHOR_ORGS.len(),
        "anchors must appear in the report"
    );
    let arin = reach.iter().find(|r| r.rir == "ARIN").expect("ARIN row");
    assert!(
        arin.whackable_foreign_countries.iter().any(|c| c == "FR" || c == "RU"),
        "ARIN must reach into RIPE's region through its anchors"
    );
    println!("\nOK: cross-country certification is not uncommon (shape of Section 3.2 holds).");

    emit_json("tab4_rows", &report.rows);
}
