//! Ablation (Side Effect 4): whacking cost vs target depth.
//!
//! "ROAs below grandchild level can also be whacked without collateral
//! damage. However … this whacking requires more suspiciously-reissued
//! objects, and could be easier to detect."
//!
//! Builds linear delegation chains of increasing depth
//! (TA → CA₁ → CA₂ → … → CAₙ, each CA also holding one sibling ROA),
//! whacks the leaf's ROA from the TA, and measures: suspicious
//! reissues, monitor alarms, and residual collateral (always zero).

use ipres::{Addr, Asn, Prefix, ResourceSet};
use netsim::Network;
use rpki_attacks::{damage_between, plan_whack, probes_for, CaView, Monitor, MonitorSnapshot};
use rpki_ca::CertAuthority;
use rpki_objects::{Encode, Moment, RepoUri, RoaPrefix, RpkiObject, Span, TrustAnchorLocator};
use rpki_repo::RepoRegistry;
use rpki_risk_bench::{emit_json, Table};
use rpki_rp::{DirectSource, ValidationConfig, Validator};
use serde::Serialize;

#[derive(Serialize)]
struct DepthRow {
    depth: usize,
    suspicious_reissues: usize,
    monitor_flags: usize,
    collateral: usize,
}

struct Chain {
    repos: RepoRegistry,
    cas: Vec<CertAuthority>, // [0] = TA
    tal: TrustAnchorLocator,
}

/// Builds a chain of `depth` CAs below the TA. CAᵢ holds a /(<16+4i>)
/// block, issues one sibling ROA in its upper half and delegates the
/// lower half onward; the last CA issues the target ROA.
fn build_chain(depth: usize) -> Chain {
    let mut net = Network::new(0);
    let mut repos = RepoRegistry::new();
    let host = |i: usize| format!("ca{i}.example");
    repos.create(&mut net, "ta.example");
    for i in 1..=depth {
        repos.create(&mut net, &host(i));
    }

    let mut cas = Vec::new();
    let mut ta = CertAuthority::new(
        "TA",
        &format!("depth-ta-{depth}"),
        RepoUri::new("ta.example", &["repo"]),
    );
    ta.certify_self(ResourceSet::from_prefix_strs("10.0.0.0/8"), Moment(0), Span::days(3650));
    cas.push(ta);

    let mut space = Prefix::new(Addr::v4(10 << 24), 12); // 10.0.0.0/12 to CA1
    for i in 1..=depth {
        let mut ca = CertAuthority::new(
            &format!("CA{i}"),
            &format!("depth-{depth}-ca-{i}"),
            RepoUri::new(&host(i), &["repo"]),
        );
        let sia = ca.sia().clone();
        let key = ca.public_key();
        let handle = format!("CA{i}");
        let parent = cas.last_mut().expect("TA exists");
        let rc = parent
            .issue_cert(&handle, key, ResourceSet::from_prefix(space), sia, Moment(0))
            .expect("nested space");
        ca.install_cert(rc);

        let (lower, upper) = space.children().expect("splittable");
        // Sibling ROA in the upper half (origin 1000+i).
        ca.issue_roa(Asn(1000 + i as u32), vec![RoaPrefix::exact(upper)], Moment(0))
            .expect("own space");
        if i == depth {
            // The target ROA at the leaf, in the lower half.
            ca.issue_roa(Asn(42), vec![RoaPrefix::exact(lower)], Moment(0)).expect("own space");
        }
        space = Prefix::new(lower.addr(), lower.len() + 1); // delegate deeper
        cas.push(ca);
    }

    let tal = TrustAnchorLocator::new(
        RepoUri::new("ta.example", &["ta", "root.cer"]),
        cas[0].public_key(),
    );
    let mut chain = Chain { repos, cas, tal };
    publish(&mut chain);
    chain
}

fn publish(c: &mut Chain) {
    let ta_cert = c.cas[0].cert().expect("certified").clone();
    let ta_dir = RepoUri::new("ta.example", &["ta"]);
    c.repos.by_host_mut("ta.example").expect("exists").publish_raw(
        &ta_dir,
        "root.cer",
        RpkiObject::Cert(ta_cert).to_bytes(),
    );
    for ca in &mut c.cas {
        let sia = ca.sia().clone();
        let snap = ca.publication_snapshot(Moment(1));
        if let Some(repo) = c.repos.by_host_mut(sia.host()) {
            repo.publish_snapshot(&sia, &snap);
        }
    }
}

fn main() {
    println!("Ablation — whacking cost vs target depth (Side Effect 4)\n");
    let mut rows = Vec::new();

    for depth in 1..=5usize {
        let mut c = build_chain(depth);
        let mut source = DirectSource::new(&c.repos);
        let before = Validator::new(ValidationConfig::at(Moment(2)))
            .run(&mut source, std::slice::from_ref(&c.tal));
        assert_eq!(before.vrps.len(), depth + 1, "depth {depth} world incomplete");

        let mut monitor = Monitor::new();
        monitor.observe(MonitorSnapshot::capture(&c.repos, Moment(2)));

        // The TA's chain of views down to the leaf.
        let mut views = Vec::new();
        for i in 1..=depth {
            let parent = &c.cas[i - 1];
            let rc = parent.issued_cert_for(c.cas[i].key_id()).expect("issued").clone();
            views.push(CaView::from_repos(&rc, &c.repos));
        }
        let target_file = views
            .last()
            .expect("non-empty")
            .roas
            .iter()
            .find(|r| r.asn() == Asn(42))
            .expect("target present")
            .file_name();

        let plan = plan_whack(&views, &target_file).expect("plannable");
        plan.execute(&mut c.cas[0], Moment(3)).expect("executable");
        // Re-publish (the TA's point gained objects; the child's RC
        // changed).
        for ca in &mut c.cas {
            let sia = ca.sia().clone();
            let snap = ca.publication_snapshot(Moment(3));
            if let Some(repo) = c.repos.by_host_mut(sia.host()) {
                repo.publish_snapshot(&sia, &snap);
            }
        }
        let ta_cert = c.cas[0].cert().expect("certified").clone();
        let ta_dir = RepoUri::new("ta.example", &["ta"]);
        c.repos.by_host_mut("ta.example").expect("exists").publish_raw(
            &ta_dir,
            "root.cer",
            RpkiObject::Cert(ta_cert).to_bytes(),
        );

        let mut source = DirectSource::new(&c.repos);
        let after = Validator::new(ValidationConfig::at(Moment(4)))
            .run(&mut source, std::slice::from_ref(&c.tal));
        let damage = damage_between(&before.vrps, &after.vrps, &probes_for(&before.vrps));
        let collateral = damage.routes_degraded.iter().filter(|(r, _)| r.origin != Asn(42)).count();

        let events = monitor.observe(MonitorSnapshot::capture(&c.repos, Moment(3)));
        let flags = events.iter().filter(|e| e.classification.is_suspicious()).count();

        rows.push(DepthRow {
            depth,
            suspicious_reissues: plan.reissued,
            monitor_flags: flags,
            collateral,
        });
    }

    let mut table = Table::new(&[
        "target depth below manipulator",
        "suspicious reissues",
        "monitor flags",
        "collateral",
    ]);
    for r in &rows {
        table.row(&[
            (r.depth + 1).to_string(), // grandchild = depth 1 chain
            r.suspicious_reissues.to_string(),
            r.monitor_flags.to_string(),
            r.collateral.to_string(),
        ]);
    }
    table.print("Cost of depth");

    // Shape: zero collateral everywhere; reissues strictly grow with
    // depth (one per intermediate CA); the monitor sees more at depth.
    assert!(rows.iter().all(|r| r.collateral == 0));
    assert_eq!(rows[0].suspicious_reissues, 0, "grandchild carve is free");
    for w in rows.windows(2) {
        assert!(
            w[1].suspicious_reissues > w[0].suspicious_reissues,
            "reissues must grow with depth"
        );
    }
    assert!(rows.last().expect("rows").monitor_flags >= rows[0].monitor_flags);
    println!(
        "\nOK: depth costs exactly one suspicious reissue per intermediate CA and zero \
         collateral — Side Effect 4's detectability/depth tradeoff, quantified."
    );
    emit_json("depth_sweep", &rows);

    // ---- The RFC 8360 twist ----
    // Under "validation reconsidered" (trim over-claims instead of
    // rejecting subtrees), a *naive* carve — one RC overwrite, zero
    // reissues — becomes surgical at ANY depth: the robustness fix
    // makes the targeted attack stealthier.
    println!();
    let mut twist_rows = Vec::new();
    for depth in 1..=5usize {
        let mut c = build_chain(depth);
        let mut source = DirectSource::new(&c.repos);
        let before = Validator::new(ValidationConfig::at(Moment(2)))
            .run(&mut source, std::slice::from_ref(&c.tal));

        // Naive carve: the TA overwrites only its DIRECT child's RC,
        // removing the target's space; no make-before-break.
        let child_key = c.cas[1].public_key();
        let child_sia = c.cas[1].sia().clone();
        let child_resources =
            c.cas[0].issued_cert_for(c.cas[1].key_id()).expect("issued").data().resources.clone();
        // The target ROA's actual space, read from the leaf CA.
        let target_space = c.cas[depth]
            .issued_roas()
            .find(|r| r.asn() == Asn(42))
            .expect("target at the leaf")
            .resources();
        c.cas[0]
            .issue_cert(
                "CA1",
                child_key,
                child_resources.difference(&target_space),
                child_sia,
                Moment(3),
            )
            .expect("carve");
        publish(&mut c);

        let count = |config: ValidationConfig| {
            let mut source = DirectSource::new(&c.repos);
            let after = Validator::new(config).run(&mut source, std::slice::from_ref(&c.tal));
            let damage = damage_between(&before.vrps, &after.vrps, &probes_for(&before.vrps));
            let target_dead = !after.vrps.iter().any(|v| v.asn == Asn(42));
            let collateral =
                damage.routes_degraded.iter().filter(|(r, _)| r.origin != Asn(42)).count();
            (target_dead, collateral)
        };
        let (strict_dead, strict_coll) = count(ValidationConfig::at(Moment(4)));
        let (trim_dead, trim_coll) = count(ValidationConfig::reconsidered_at(Moment(4)));
        twist_rows.push((depth, strict_dead, strict_coll, trim_dead, trim_coll));
    }

    let mut twist =
        Table::new(&["depth", "naive carve under RFC 6487 (strict)", "…under RFC 8360 (trim)"]);
    for (depth, sd, sc, td, tc) in &twist_rows {
        twist.row(&[
            (depth + 1).to_string(),
            format!("target dead: {sd}, collateral: {sc}"),
            format!("target dead: {td}, collateral: {tc}"),
        ]);
    }
    twist.print("A single RC overwrite, no reissues, two validation policies");

    for (depth, strict_dead, strict_coll, trim_dead, trim_coll) in &twist_rows {
        assert!(*strict_dead && *trim_dead, "carve must kill the target either way");
        assert_eq!(*trim_coll, 0, "trim makes the naive carve surgical at depth {depth}");
        if *depth > 1 {
            assert!(
                *strict_coll > 0,
                "strict kills the subtree below the overwritten RC at depth {depth}"
            );
        }
    }
    println!(
        "\nOK: RFC 8360 'validation reconsidered' removes the make-before-break cost of deep \
         whacks entirely — hardening against accidental over-claims also removes the paper's \
         collateral-damage deterrent."
    );
    emit_json("depth_sweep_rfc8360", &twist_rows);
}
