//! RTR fan-out benchmark: serial-diff fan-out vs naive full-sweep
//! refresh, across router counts and VRP churn rates, exported to
//! `BENCH_rtr.json`.
//!
//! One relying-party cache ([`RtrFabric`]) serves N routers over
//! netsim. Every round a fixed fraction of the VRP set churns (origin
//! ASN renewals), and the cache pushes the new state two ways:
//!
//! - **fan-out** — the framed serial-diff path: one `publish` fans a
//!   `SerialNotify` to every router, and each router pulls only the
//!   delta since its own acknowledged serial. Frames per router scale
//!   with the *delta* size (`2·changed + 4`).
//! - **naive** — the full-sweep baseline: every refresh each router
//!   re-opens its session with a `ResetQuery` and receives the complete
//!   snapshot. Frames per router scale with the *cache* size
//!   (`vrps + 3`).
//!
//! Frames come from the simulated network's send counter, so every
//! number replays exactly; per-round frame counts are asserted against
//! the closed-form expectations above, and every fan-out round asserts
//! every router's VRP set byte-identical to the cache's. The release
//! build enforces a ≥4× fan-out advantage at ≤10% churn on the largest
//! router sweep.
//!
//! ```sh
//! cargo run --release -p rpki-risk-bench --bin bench_rtr
//! ```
//!
//! `--scale N` multiplies the VRP count; `--json` mirrors the records
//! to stderr; `--trace PATH` (or `BENCH_TRACE`) writes a JSONL trace of
//! one instrumented round per configuration.

use std::time::Instant;

use ipres::{Asn, Prefix};
use netsim::Network;
use rpki_risk_bench::{emit_json, scale_arg, trace_recorder, write_trace, Summary, SummaryTable};
use rpki_rp::{pump_until, RtrEndpoint, RtrFabric, RtrRouter, Vrp, VrpUpdate};
use serde::Serialize;

/// One measured (router count, churn rate) cell.
#[derive(Debug, Serialize)]
struct Record {
    routers: usize,
    vrps: usize,
    churn_pct: usize,
    changed_per_round: usize,
    fanout_frames: u64,
    naive_frames: u64,
    fanout_frames_per_router: u64,
    naive_frames_per_router: u64,
    advantage: f64,
    fanout_ns: u128,
    naive_ns: u128,
    notifies_sent: u64,
    resets_served: u64,
}

/// The synthetic VRP universe: `n` distinct /24s under 10.0.0.0/8.
fn universe(n: usize) -> Vec<Vrp> {
    (0..n)
        .map(|i| {
            let prefix: Prefix =
                format!("10.{}.{}.0/24", (i / 256) % 256, i % 256).parse().expect("prefix");
            Vrp::new(prefix, 24, Asn(64_496 + i as u32))
        })
        .collect()
}

/// Renews the origin ASN of `changed` VRPs, rotating through the set so
/// successive rounds dirty different entries. Deterministic.
fn churn(vrps: &mut [Vrp], round: u64, changed: usize) {
    let n = vrps.len();
    for i in 0..changed {
        let idx = (round as usize * changed + i) % n;
        let old = vrps[idx];
        vrps[idx] = Vrp::new(old.prefix, old.max_len, Asn(old.asn.0 + 100_000));
    }
}

/// Builds a cache-and-routers world on a fresh seeded network.
fn world(routers: usize) -> (Network, RtrFabric, Vec<RtrRouter>) {
    let mut net = Network::new(41);
    let cache = net.add_node("rp-cache");
    let mut fabric = RtrFabric::new(cache, 1, 16);
    let routers: Vec<RtrRouter> = (0..routers)
        .map(|i| {
            let node = net.add_node(&format!("router-{i}"));
            fabric.attach(node);
            RtrRouter::new(node, cache)
        })
        .collect();
    (net, fabric, routers)
}

/// Dispatches RTR traffic until the network drains (bounded window).
fn pump(net: &mut Network, fabric: &mut RtrFabric, routers: &mut [RtrRouter]) -> u64 {
    let deadline = net.now() + 10_000;
    let mut endpoints: Vec<&mut dyn RtrEndpoint> = Vec::with_capacity(routers.len() + 1);
    endpoints.push(fabric);
    for r in routers.iter_mut() {
        endpoints.push(r);
    }
    pump_until(net, deadline, &mut endpoints)
}

fn main() {
    let scale = scale_arg().max(1);
    let n_vrps = 256 * scale;
    let mut report = Summary::new(&format!("RTR fan-out benchmark (scale {scale})"));
    let rec = trace_recorder();

    let router_counts = [10usize, 100, 1000];
    let churns = [1usize, 10];
    let rounds: u64 = if cfg!(debug_assertions) { 1 } else { 3 };

    let mut records: Vec<Record> = Vec::new();
    for routers_n in router_counts {
        for churn_pct in churns {
            let changed = (n_vrps * churn_pct / 100).max(1);

            // Fan-out world: warm every session once, then measure the
            // steady state where each round moves only the delta.
            let (mut net, mut fabric, mut routers) = world(routers_n);
            let mut vrps = universe(n_vrps);
            fabric.publish(&mut net, VrpUpdate::snapshot(vrps.clone()));
            pump(&mut net, &mut fabric, &mut routers);

            let mut fanout_frames = 0u64;
            let mut fanout_ns = u128::MAX;
            for round in 0..rounds {
                churn(&mut vrps, round, changed);
                let sent = net.stats().sent;
                let start = Instant::now();
                fabric.publish(&mut net, VrpUpdate::snapshot(vrps.clone()));
                pump(&mut net, &mut fabric, &mut routers);
                fanout_ns = fanout_ns.min(start.elapsed().as_nanos());
                let frames = net.stats().sent - sent;
                // notify + query + CacheResponse + (withdraw + announce)
                // per changed VRP + EndOfData, per router.
                assert_eq!(
                    frames,
                    routers_n as u64 * (2 * changed as u64 + 4),
                    "fan-out frames must scale with the delta size"
                );
                fanout_frames += frames;
                for r in &routers {
                    assert!(
                        r.vrps().iter().eq(fabric.server().vrps().iter()),
                        "router diverged from the cache after fan-out"
                    );
                }
            }
            fanout_frames /= rounds;

            // One extra instrumented fan-out round for the trace.
            if rec.is_enabled() {
                net.set_recorder(rec.clone());
                churn(&mut vrps, rounds, changed);
                fabric.publish(&mut net, VrpUpdate::snapshot(vrps.clone()));
                pump(&mut net, &mut fabric, &mut routers);
                net.set_recorder(rpki_risk_bench::Recorder::disabled());
            }
            let fanout_stats = fabric.stats();

            // Naive baseline: same churn schedule, but every refresh
            // each router starts over with a ResetQuery and pulls the
            // full snapshot (no serial-diff, no notify fan-out). Each
            // round gets a fresh world so nothing but the sweep itself
            // is on the wire.
            let mut vrps = universe(n_vrps);
            let mut naive_frames = 0u64;
            let mut naive_ns = u128::MAX;
            for round in 0..rounds {
                churn(&mut vrps, round, changed);
                let mut net = Network::new(41);
                let cache = net.add_node("rp-cache");
                let mut fabric = RtrFabric::new(cache, 1, 16);
                let nodes: Vec<_> =
                    (0..routers_n).map(|i| net.add_node(&format!("router-{i}"))).collect();
                fabric.publish(&mut net, VrpUpdate::snapshot(vrps.clone()));
                let mut sweep: Vec<RtrRouter> =
                    nodes.iter().map(|&n| RtrRouter::new(n, cache)).collect();
                let sent = net.stats().sent;
                let start = Instant::now();
                for r in sweep.iter_mut() {
                    r.poll(&mut net);
                }
                pump(&mut net, &mut fabric, &mut sweep);
                naive_ns = naive_ns.min(start.elapsed().as_nanos());
                let frames = net.stats().sent - sent;
                // ResetQuery + CacheResponse + every VRP + EndOfData,
                // per router: the full-sweep cost is the cache size.
                assert_eq!(
                    frames,
                    routers_n as u64 * (n_vrps as u64 + 3),
                    "naive frames must scale with the cache size"
                );
                naive_frames += frames;
            }
            naive_frames /= rounds;

            records.push(Record {
                routers: routers_n,
                vrps: n_vrps,
                churn_pct,
                changed_per_round: changed,
                fanout_frames,
                naive_frames,
                fanout_frames_per_router: fanout_frames / routers_n as u64,
                naive_frames_per_router: naive_frames / routers_n as u64,
                advantage: naive_frames as f64 / fanout_frames as f64,
                fanout_ns,
                naive_ns,
                notifies_sent: fanout_stats.notifies_sent,
                resets_served: fanout_stats.resets_served,
            });
        }
    }

    let mut out = SummaryTable::new(&[
        "routers",
        "vrps",
        "churn",
        "changed",
        "fan-out frames",
        "naive frames",
        "per-router f/n",
        "advantage",
        "fan-out (ms)",
        "naive (ms)",
    ]);
    for r in &records {
        out.row(&[
            r.routers.to_string(),
            r.vrps.to_string(),
            format!("{}%", r.churn_pct),
            r.changed_per_round.to_string(),
            r.fanout_frames.to_string(),
            r.naive_frames.to_string(),
            format!("{}/{}", r.fanout_frames_per_router, r.naive_frames_per_router),
            format!("{:.1}x", r.advantage),
            format!("{:.3}", r.fanout_ns as f64 / 1e6),
            format!("{:.3}", r.naive_ns as f64 / 1e6),
        ]);
    }
    report.table("serial-diff fan-out vs naive full-sweep refresh", out);

    let largest = records.iter().map(|r| r.routers).max().expect("records");
    let floor_advantage = records
        .iter()
        .filter(|r| r.routers == largest && r.churn_pct <= 10)
        .map(|r| r.advantage)
        .fold(f64::INFINITY, f64::min);
    report.key_vals(
        "targets",
        &[(
            format!("minimum fan-out advantage at <=10% churn with {largest} routers"),
            format!("{floor_advantage:.1}x"),
        )],
    );
    if cfg!(debug_assertions) {
        report.note("(debug build — advantage floor not enforced; run with --release)");
    } else if floor_advantage >= 4.0 {
        report.note("OK: >= 4x over the naive full sweep at <=10% churn.");
    }
    report.print();

    let json = serde_json::to_string(&records).expect("serialise records");
    std::fs::write("BENCH_rtr.json", format!("{json}\n")).expect("write BENCH_rtr.json");
    println!("\nwrote BENCH_rtr.json ({} records)", records.len());
    if let Some(path) = write_trace(&rec) {
        println!("wrote trace to {path}");
    }
    emit_json("bench_rtr", &records);
    // Enforced last so a regressed run still reports and exports the
    // numbers that explain it.
    assert!(
        cfg!(debug_assertions) || floor_advantage >= 4.0,
        "RTR fan-out regressed below the 4x floor at <=10% churn ({floor_advantage:.2}x)"
    );
}
