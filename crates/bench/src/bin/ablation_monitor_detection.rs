//! Ablation (open problem, Section 3.1): can a snapshot-diff monitor
//! tell whacking from normal churn?
//!
//! Drives the model world through seeded rounds of benign churn
//! (renewals, fresh issuance, revocations, CRL/manifest refresh) with
//! occasional injected attacks, and scores the monitor's suspicious
//! flags as a confusion matrix.

use ipres::Prefix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpki_attacks::{plan_whack, CaView, Monitor, MonitorSnapshot};
use rpki_objects::{Moment, RoaPrefix};
use rpki_risk::fixtures::asn;
use rpki_risk::ModelRpki;
use rpki_risk_bench::{emit_json, scale_arg, Table};
use serde::Serialize;

#[derive(Serialize, Default)]
struct Confusion {
    rounds: usize,
    attack_rounds: usize,
    true_positives: usize,
    false_negatives: usize,
    false_positives: usize,
    true_negatives: usize,
}

fn main() {
    let rounds = 40 * scale_arg();
    println!("Ablation — monitor detection over {rounds} rounds of churn with injected attacks");

    let mut w = ModelRpki::build();
    let mut rng = StdRng::seed_from_u64(77);
    let mut monitor = Monitor::new();
    monitor.observe(MonitorSnapshot::capture(&w.repos, Moment(1)));

    let mut conf = Confusion { rounds, ..Default::default() };
    let mut issued_extra = 0u32;

    for round in 0..rounds {
        let now = Moment(100 + round as u64 * 100);
        // Attack every ~8th round, while Continental still has a live
        // ROA to whack. Rounds where no attack could be executed count
        // as churn.
        let mut attack = round % 8 == 3;
        if attack {
            let rc = w.sprint.issued_cert_for(w.continental.key_id()).expect("issued").clone();
            let view = CaView::from_repos(&rc, &w.repos);
            // Target a ROA that is still alive (its space still inside
            // the — possibly already carved — RC), so every attack
            // round changes repository state.
            let target = view
                .roas
                .iter()
                .find(|r| view.resources.contains_set(&r.resources()))
                .map(|r| r.file_name());
            attack = false;
            if let Some(target) = target {
                if let Ok(plan) = plan_whack(std::slice::from_ref(&view), &target) {
                    if plan.execute(&mut w.sprint, now).is_ok() {
                        attack = true;
                        conf.attack_rounds += 1;
                    }
                }
            }
        }
        if !attack && round % 8 != 3 {
            // Benign churn: pick one of several operations.
            match rng.gen_range(0..4u8) {
                0 => {
                    // Renew one of Sprint's ROAs.
                    let file = w.sprint.issued_roas().next().map(|r| r.file_name());
                    if let Some(file) = file {
                        let _ = w.sprint.renew_roa(&file, now);
                    }
                }
                1 => {
                    // Fresh issuance inside ETB's block.
                    let fourth = (issued_extra % 200) as u8;
                    issued_extra += 1;
                    let p: Prefix = format!("63.166.{fourth}.0/24").parse().expect("valid");
                    let _ = w.etb.issue_roa(asn::ETB, vec![RoaPrefix::exact(p)], now);
                }
                2 => {
                    // Transparent revocation of the most recent extra
                    // ROA (if any besides the original).
                    let serial = w.etb.issued_roas().map(|r| r.serial()).max();
                    if let Some(serial) = serial {
                        if w.etb.issued_roas().count() > 1 {
                            w.etb.revoke_serial(serial);
                        }
                    }
                }
                _ => { /* pure refresh round: snapshots bump CRL/manifest */ }
            }
        }
        w.publish_all(now);
        let events = monitor.observe(MonitorSnapshot::capture(&w.repos, now));
        let flagged = events.iter().any(|e| e.classification.is_suspicious());
        match (attack, flagged) {
            (true, true) => conf.true_positives += 1,
            (true, false) => conf.false_negatives += 1,
            (false, true) => conf.false_positives += 1,
            (false, false) => conf.true_negatives += 1,
        }
    }

    let mut table = Table::new(&["metric", "count"]);
    table.row(&["rounds".to_owned(), conf.rounds.to_string()]);
    table.row(&["attack rounds".to_owned(), conf.attack_rounds.to_string()]);
    table.row(&["true positives".to_owned(), conf.true_positives.to_string()]);
    table.row(&["false negatives".to_owned(), conf.false_negatives.to_string()]);
    table.row(&["false positives (churn flagged)".to_owned(), conf.false_positives.to_string()]);
    table.row(&["true negatives".to_owned(), conf.true_negatives.to_string()]);
    table.print("Monitor confusion matrix");

    let recall = conf.true_positives as f64 / conf.attack_rounds.max(1) as f64;
    let fpr =
        conf.false_positives as f64 / (conf.false_positives + conf.true_negatives).max(1) as f64;
    println!("\nrecall = {:.0}%, false-positive rate = {:.0}%", recall * 100.0, fpr * 100.0);
    assert!(recall >= 0.9, "monitor must catch whacks: recall {recall}");
    assert!(fpr <= 0.2, "churn must mostly pass: fpr {fpr}");
    println!(
        "OK: suspicious-reissue + shrunken-cert signatures separate manipulation from churn — \
         evidence for the paper's proposed monitoring direction."
    );

    emit_json("monitor_confusion", &conf);
}
