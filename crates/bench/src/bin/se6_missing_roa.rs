//! Side Effect 6: a missing ROA can cause a route to become invalid.
//!
//! Removes each VRP of a fully-adopted synthetic Internet in turn and
//! classifies the fallout: valid → **invalid** (another ROA still
//! covers the route — the dangerous case unique to the RPKI's
//! semantics) vs valid → unknown (the merely-unauthenticated case,
//! which is all that a missing record costs in DNSSEC or the web PKI).

use rpki_risk::se6_missing_roa_impact;
use rpki_risk_bench::{emit_json, scale_arg, Table};
use rpki_rp::{Route, Vrp};
use topogen::{Config, SyntheticInternet};

fn main() {
    let scale = scale_arg();
    let config = Config {
        seed: 1300,
        transits: 10 * scale,
        stubs: 120 * scale,
        roa_adoption: 1.0,
        cross_border: 0.1,
        anchors: false,
        self_hosting: 1.0,
    };
    println!(
        "Side Effect 6 — fallout of each single missing ROA\n\
         (synthetic Internet, seed {}, full adoption; transits also cover their aggregates)",
        config.seed
    );
    let world = SyntheticInternet::generate(config);

    // VRP universe: every org's exact ROA, plus covering aggregates
    // from the transits (maxlen at their /16) — the configuration in
    // which missing leaf ROAs turn INVALID instead of unknown.
    let mut vrps: Vec<Vrp> = world
        .orgs
        .iter()
        .flat_map(|o| o.prefixes.iter().map(move |&p| Vrp::new(p, p.len(), o.asn)))
        .collect();
    let transit_covers: Vec<Vrp> = world
        .orgs
        .iter()
        .filter(|o| o.kind == topogen::OrgKind::Transit)
        .map(|o| Vrp::new(o.prefixes[0], o.prefixes[0].len(), o.asn))
        .collect();
    vrps.extend(&transit_covers); // duplicates collapse in the cache
    vrps.sort_unstable();
    vrps.dedup();
    let routes: Vec<Route> =
        world.announcements.iter().map(|a| Route::new(a.prefix, a.origin)).collect();

    let impact = se6_missing_roa_impact(&vrps, &routes);
    let to_invalid: usize = impact.rows.iter().map(|r| r.to_invalid).sum();
    let to_unknown: usize = impact.rows.iter().map(|r| r.to_unknown).sum();

    let mut table = Table::new(&["metric", "value"]);
    table.row(&["VRPs examined".to_owned(), impact.vrps_examined.to_string()]);
    table.row(&[
        "VRPs whose loss flips ≥1 route to INVALID".to_owned(),
        impact.vrps_with_invalid_fallout.to_string(),
    ]);
    table.row(&["total valid→invalid flips".to_owned(), to_invalid.to_string()]);
    table.row(&["total valid→unknown flips".to_owned(), to_unknown.to_string()]);
    table.row(&[
        "share of losses that are DANGEROUS (invalid)".to_owned(),
        format!("{:.1}%", 100.0 * to_invalid as f64 / (to_invalid + to_unknown).max(1) as f64),
    ]);
    table.print("Side Effect 6 exposure");

    // Shape: with covering aggregates deployed, most single-ROA losses
    // are the dangerous kind.
    assert!(impact.vrps_with_invalid_fallout > 0);
    assert!(to_invalid > to_unknown, "covered leaves dominate: {to_invalid} vs {to_unknown}");
    println!(
        "\nOK: under deployed covering ROAs, a missing ROA means INVALID, not unknown — \
         the RPKI is uniquely sensitive to missing information (Side Effect 6)."
    );

    emit_json("se6_impact", &impact);
}
