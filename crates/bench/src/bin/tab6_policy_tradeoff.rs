//! Table 6: prefix reachability during a routing attack vs during an
//! RPKI manipulation, under each relying-party policy.

use bgp_sim::{Announcement, RpkiPolicy};
use ipres::Asn;
use rpki_objects::Moment;
use rpki_risk::fixtures::asn;
use rpki_risk::tradeoff::TradeoffScenario;
use rpki_risk::{policy_tradeoff, ModelRpki};
use rpki_risk_bench::{emit_json, Table};
use rpki_rp::{Vrp, VrpCache};

fn main() {
    println!("Table 6 — impact of relying-party local policies");

    let mut w = ModelRpki::build();
    let attacker = Asn(666);
    w.topology.add_provider_customer(asn::SPRINT, attacker);

    // Intact cache: the Figure 2 ROAs plus the Figure 5 (right)
    // covering ROA (which is what keeps the whacked route INVALID
    // rather than unknown in the manipulation scenario).
    let covering = Vrp::new("63.160.0.0/12".parse().unwrap(), 13, asn::SPRINT);
    let mut intact: Vec<Vrp> = w.validate_direct(Moment(2)).vrps;
    intact.push(covering);
    let whacked: Vec<Vrp> = intact.iter().copied().filter(|v| v.asn != asn::CONTINENTAL).collect();
    let cache_intact: VrpCache = intact.into_iter().collect();
    let cache_whacked: VrpCache = whacked.into_iter().collect();

    let victim =
        Announcement { prefix: "63.174.16.0/20".parse().unwrap(), origin: asn::CONTINENTAL };
    let hijack = Announcement { prefix: "63.174.24.0/24".parse().unwrap(), origin: attacker };

    let table = policy_tradeoff(&TradeoffScenario {
        topology: &w.topology,
        announcements: &w.announcements,
        victim,
        probe_addr: "63.174.24.9".parse().unwrap(),
        attacker,
        hijack,
        cache_intact: &cache_intact,
        cache_whacked: &cache_whacked,
    });

    let mut out = Table::new(&[
        "relying-party policy",
        "prefix reachable during routing attack",
        "…during RPKI manipulation",
    ]);
    let cell = |f: f64| -> String {
        if f >= 1.0 {
            "yes (100%)".to_owned()
        } else if f <= 0.0 {
            "NO (0%)".to_owned()
        } else {
            format!("partial ({:.0}%)", f * 100.0)
        }
    };
    for (label, policy) in [
        ("ignore RPKI", RpkiPolicy::Ignore),
        ("drop invalid", RpkiPolicy::DropInvalid),
        ("depref invalid", RpkiPolicy::DeprefInvalid),
    ] {
        out.row(&[
            label.to_owned(),
            cell(table.get("routing attack", policy).expect("cell")),
            cell(table.get("RPKI manipulation", policy).expect("cell")),
        ]);
    }
    out.print("Table 6");

    // The paper's shape: drop-invalid ✓/✗, depref ✗(hijackable)/✓.
    assert_eq!(table.get("routing attack", RpkiPolicy::DropInvalid), Some(1.0));
    assert_eq!(table.get("RPKI manipulation", RpkiPolicy::DropInvalid), Some(0.0));
    assert!(table.get("routing attack", RpkiPolicy::DeprefInvalid).expect("cell") < 1.0);
    assert_eq!(table.get("RPKI manipulation", RpkiPolicy::DeprefInvalid), Some(1.0));
    println!(
        "\nOK: the policy best against BGP attacks is worst against RPKI manipulation \
         (Section 5's tradeoff)."
    );

    let c = table.convergence;
    println!(
        "work: {} rounds, {} route updates, {} pairs evaluated, validity memo {}/{} hits",
        c.rounds,
        c.route_updates,
        c.pairs_evaluated,
        c.memo_hits,
        c.memo_hits + c.memo_misses,
    );

    emit_json("tab6", &table.rows);
    emit_json("tab6_convergence", &c);
}
