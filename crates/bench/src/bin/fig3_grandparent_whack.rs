//! Figure 3: a ROA whacked by its grandparent.
//!
//! Runs both Section 3.1 constructions against the model world:
//! the collateral-free carve (Side Effect 3) and the make-before-break
//! reissue, printing the plans, the resulting RC (the paper's two
//! address ranges), and the measured damage.

use ipres::Asn;
use rpki_attacks::{damage_between, plan_whack, probes_for, CaView, WhackStep};
use rpki_objects::Moment;
use rpki_risk::fixtures::asn;
use rpki_risk::ModelRpki;
use rpki_risk_bench::{emit_json, Table};
use serde::Serialize;

#[derive(Serialize)]
struct WhackRecord {
    target: String,
    carved: String,
    reissued: usize,
    vrps_lost: usize,
    clean: bool,
}

fn run_whack(target_asn: Asn, label: &str) -> WhackRecord {
    let mut w = ModelRpki::build();
    let before = w.validate_direct(Moment(2));

    let rc = w.sprint.issued_cert_for(w.continental.key_id()).expect("issued");
    let view = CaView::from_repos(rc, &w.repos);
    let target_file =
        view.roas.iter().find(|r| r.asn() == target_asn).expect("target present").file_name();

    let plan = plan_whack(std::slice::from_ref(&view), &target_file).expect("plan");
    println!("\n== {label} ==");
    println!("target : {}", plan.target);
    println!("carved : {}", plan.carved);
    for step in &plan.steps {
        match step {
            WhackStep::OverwriteChildCert { handle, new_resources, .. } => {
                println!("step   : overwrite RC of {handle} → {new_resources}");
            }
            WhackStep::ReissueCertAsOwn { handle, .. } => {
                println!("step   : reissue RC of {handle} as Sprint's own (SUSPICIOUS)");
            }
            WhackStep::ReissueRoaAsOwn { asn, prefixes } => {
                let ps: Vec<String> = prefixes.iter().map(|p| p.to_string()).collect();
                println!(
                    "step   : reissue ROA ({}, {asn}) at Sprint's pub point (SUSPICIOUS)",
                    ps.join(" ")
                );
            }
        }
    }

    plan.execute(&mut w.sprint, Moment(3)).expect("execute");
    w.publish_all(Moment(3));
    let after = w.validate_direct(Moment(4));

    let damage = damage_between(&before.vrps, &after.vrps, &probes_for(&before.vrps));
    let clean = damage.clean_except(&[target_asn]);
    println!(
        "result : {} VRP(s) lost, {} reissued object(s), collateral-free: {}",
        damage.lost_vrps.len(),
        plan.reissued,
        clean
    );
    WhackRecord {
        target: plan.target,
        carved: plan.carved.to_string(),
        reissued: plan.reissued,
        vrps_lost: damage.lost_vrps.len(),
        clean,
    }
}

fn main() {
    println!("Figure 3 — targeted whacking by a grandparent (Sprint)");

    // Side Effect 3: the covering /20 ROA has free space → clean carve.
    let carve = run_whack(asn::CONTINENTAL, "Carve-out whack of (63.174.16.0/20, AS17054)");
    assert_eq!(carve.reissued, 0);
    assert!(carve.clean);

    // Figure 3 proper: the /22 customer ROA needs make-before-break.
    let mbb = run_whack(asn::CUSTOMER_A, "Make-before-break whack of (63.174.16.0/22, AS7341)");
    assert_eq!(mbb.reissued, 1);
    assert!(mbb.clean);

    let mut summary = Table::new(&["attack", "carved", "suspicious reissues", "collateral-free"]);
    summary.row(&[
        "carve-out (SE3)".to_owned(),
        carve.carved.clone(),
        carve.reissued.to_string(),
        carve.clean.to_string(),
    ]);
    summary.row(&[
        "make-before-break (Fig 3)".to_owned(),
        mbb.carved.clone(),
        mbb.reissued.to_string(),
        mbb.clean.to_string(),
    ]);
    summary.print("Summary");

    emit_json("fig3_whacks", &vec![carve, mbb]);
}
