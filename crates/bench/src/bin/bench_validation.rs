//! Incremental-validation benchmark: memoized revalidation vs the cold
//! full walk, across churn rates and tree shapes, exported to
//! `BENCH_validation.json`.
//!
//! The workload is the relying party's steady state: a synthetic CA
//! tree ([`SyntheticRpki`]) where each round dirties a fixed fraction
//! of publication points (ROA renewals — fresh manifest, CRL, and ROA
//! bytes) plus one semantic change (a ROA announced, last round's
//! retired) so the VRP delta feed is exercised. The incremental engine
//! runs in probe mode: unchanged directories are confirmed with a
//! single LIST exchange and replayed from the memo cache; every round
//! its output is asserted equal to a cold walk of the same world.
//!
//! ```sh
//! cargo run --release -p rpki-risk-bench --bin bench_validation
//! ```
//!
//! `--scale N` multiplies the per-CA ROA count; `--json` mirrors the
//! records to stderr; `--trace PATH` (or `BENCH_TRACE`) writes a JSONL
//! trace of one instrumented round per configuration.

use std::time::Instant;

use ipres::Asn;
use rpki_objects::{Moment, RoaPrefix};
use rpki_risk::SyntheticRpki;
use rpki_risk_bench::{emit_json, scale_arg, trace_recorder, write_trace, Summary, SummaryTable};
use rpki_rp::ValidationState;
use serde::Serialize;

/// One measured (tree shape, churn rate) cell.
#[derive(Debug, Serialize)]
struct Record {
    pub_points: usize,
    depth: u32,
    branching: u32,
    roas_per_ca: usize,
    vrps: usize,
    churn_pct: usize,
    dirtied_per_round: usize,
    cold_ns: u128,
    incremental_ns: u128,
    speedup: f64,
    subtrees_reused: u64,
    subtrees_rewalked: u64,
    probes: u64,
    probe_hits: u64,
    delta_announced: u64,
    delta_withdrawn: u64,
}

/// Minimum wall time of `iters` runs of `f` (after one warmup run).
fn time_min<F: FnMut()>(iters: usize, mut f: F) -> u128 {
    f();
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .min()
        .expect("at least one iteration")
}

/// Renews ROAs in `pct`% of directories, then makes one semantic
/// change at the root: retire last round's extra ROA and announce this
/// round's, so every measured delta carries one announce and one
/// withdraw. Returns the dirtied-directory count.
fn mutate(
    w: &mut SyntheticRpki,
    pct: usize,
    round: u64,
    extra: &mut Option<String>,
    now: Moment,
) -> usize {
    // Retire before churning: a churn renewal of the extra ROA would
    // otherwise rename the file out from under us.
    if let Some(file) = extra.take() {
        w.cas[0].withdraw(&file).expect("extra ROA present");
    }
    let dirtied = w.churn(pct, now);
    let third_octet = 200 + (round % 50);
    let roa = w.cas[0]
        .issue_roa(
            Asn(64999),
            vec![RoaPrefix::exact(format!("10.0.{third_octet}.0/24").parse().expect("literal"))],
            now,
        )
        .expect("inside the root's /16");
    *extra = Some(roa.file_name());
    let sia = w.cas[0].sia().clone();
    let snap = w.cas[0].publication_snapshot(now);
    w.repos.by_host_mut("rpki.bench.example").expect("exists").publish_snapshot(&sia, &snap);
    dirtied
}

fn main() {
    let scale = scale_arg().max(1);
    let mut report = Summary::new(&format!("Incremental validation benchmark (scale {scale})"));
    let rec = trace_recorder();

    // (depth, branching, roas_per_ca): 21, 40, and 156 publication
    // points — the last being the deepest tree 10.0.0.0/8 can host
    // with one /16 per CA.
    let shapes = [(2u32, 4u32, 12usize), (3, 3, 12), (3, 5, 12)];
    let churns = [1usize, 10, 50, 100];
    let rounds: u64 = if cfg!(debug_assertions) { 1 } else { 3 };

    let mut records: Vec<Record> = Vec::new();
    for (depth, branching, roas_base) in shapes {
        let roas_per_ca = roas_base * scale;
        for churn_pct in churns {
            let mut w = SyntheticRpki::build_seeded(7, depth, branching, roas_per_ca);
            let mut state = ValidationState::probe();
            let mut extra: Option<String> = None;
            // Warm-up: the first incremental run is a full walk that
            // fills the memo cache.
            w.validate_incremental(Moment(2), &mut state);

            let mut cold_ns = u128::MAX;
            let mut incremental_ns = u128::MAX;
            let mut dirtied = 0;
            for round in 0..rounds {
                let mutate_at = Moment(10 + round * 60);
                let measure_at = Moment(40 + round * 60);
                dirtied = mutate(&mut w, churn_pct, round, &mut extra, mutate_at);
                cold_ns = cold_ns.min(time_min(3, || {
                    w.validate_cold(measure_at);
                }));
                // The incremental run re-warms the cache, so each
                // round's single timed run measures the steady state.
                let start = Instant::now();
                let run = w.validate_incremental(measure_at, &mut state);
                incremental_ns = incremental_ns.min(start.elapsed().as_nanos());
                let cold = w.validate_cold(measure_at);
                assert_eq!(run, cold, "incremental output diverged from the cold walk");
            }

            // One extra instrumented round so the trace artifact shows
            // the obs counters and the delta histogram per cell.
            if rec.is_enabled() {
                w.net.set_recorder(rec.clone());
                let at = Moment(10 + rounds * 60);
                mutate(&mut w, churn_pct, rounds, &mut extra, at);
                w.validate_incremental(Moment(at.0 + 30), &mut state);
                state.stats().emit(&rec, at.0 + 30);
                w.net.set_recorder(rpki_risk_bench::Recorder::disabled());
            }

            let stats = state.stats();
            records.push(Record {
                pub_points: w.publication_points(),
                depth,
                branching,
                roas_per_ca,
                vrps: w.roa_count + 1,
                churn_pct,
                dirtied_per_round: dirtied,
                cold_ns,
                incremental_ns,
                speedup: cold_ns as f64 / incremental_ns as f64,
                subtrees_reused: stats.subtrees_reused,
                subtrees_rewalked: stats.subtrees_rewalked,
                probes: stats.probes,
                probe_hits: stats.probe_hits,
                delta_announced: stats.announced,
                delta_withdrawn: stats.withdrawn,
            });
        }
    }

    let mut out = SummaryTable::new(&[
        "points",
        "shape",
        "churn",
        "dirtied",
        "cold (ms)",
        "incremental (ms)",
        "speedup",
        "reused/rewalked",
        "probe hits",
    ]);
    for r in &records {
        out.row(&[
            r.pub_points.to_string(),
            format!("d{} b{} r{}", r.depth, r.branching, r.roas_per_ca),
            format!("{}%", r.churn_pct),
            r.dirtied_per_round.to_string(),
            format!("{:.3}", r.cold_ns as f64 / 1e6),
            format!("{:.3}", r.incremental_ns as f64 / 1e6),
            format!("{:.1}x", r.speedup),
            format!("{}/{}", r.subtrees_reused, r.subtrees_rewalked),
            format!("{}/{}", r.probe_hits, r.probes),
        ]);
    }
    report.table("incremental vs cold full walk", out);

    let largest = records.iter().map(|r| r.pub_points).max().expect("records");
    let floor_speedup = records
        .iter()
        .filter(|r| r.pub_points == largest && r.churn_pct <= 10)
        .map(|r| r.speedup)
        .fold(f64::INFINITY, f64::min);
    report.key_vals(
        "targets",
        &[(
            format!("minimum speedup at <=10% churn on the largest tree ({largest} points)"),
            format!("{floor_speedup:.1}x"),
        )],
    );
    if cfg!(debug_assertions) {
        report.note("(debug build — speedup floor not enforced; run with --release)");
    } else if floor_speedup >= 5.0 {
        report.note("OK: >= 5x over the cold walk at <=10% churn on the largest tree.");
    }
    report.print();

    let json = serde_json::to_string(&records).expect("serialise records");
    std::fs::write("BENCH_validation.json", format!("{json}\n"))
        .expect("write BENCH_validation.json");
    println!("\nwrote BENCH_validation.json ({} records)", records.len());
    if let Some(path) = write_trace(&rec) {
        println!("wrote trace to {path}");
    }
    emit_json("bench_validation", &records);
    // Enforced last so a regressed run still reports and exports the
    // numbers that explain it.
    assert!(
        cfg!(debug_assertions) || floor_speedup >= 5.0,
        "incremental engine regressed below the 5x floor at <=10% churn ({floor_speedup:.2}x)"
    );
}
