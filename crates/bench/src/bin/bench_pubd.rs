//! Publication-server benchmark: snapshot compaction × delta retention
//! × CA churn, exported to `BENCH_pubd.json`.
//!
//! The workload is the `rpki-pubd` subsystem's design target: a
//! synthetic CA tree ([`SyntheticRpki`]) driven by the seeded
//! [`ChurnEngine`] — per-step ROA renewals at a configurable rate — so
//! every publication point advances its RRDP serial like a production
//! repository. Three relying parties generate the serve load:
//!
//! - a **steady** poller syncing every step (the well-behaved RP that
//!   always rides the delta path);
//! - a **lagging** poller syncing every sixth step, and a **stale** one
//!   syncing once at the end (the RPs a short retention budget starves
//!   onto the snapshot — the §3.3.2 fallback).
//!
//! Each cell of the sweep fixes a tree shape (156 and ~1000 publication
//! points), a churn rate, a compaction interval, and a retention depth,
//! then reports the server-side ledgers *for the churn phase alone*
//! (world-build and client warm-up cost is subtracted out): snapshot
//! bytes *built* (rebuild work), bytes *served* by document kind,
//! deltas evicted, and the retained delta-log footprint. *Work per
//! serial* is the bytes the server produced or shipped as content per
//! published serial — snapshot bytes built plus snapshot and delta
//! bytes served; notification bytes are reported separately since that
//! polling overhead is fixed by the client cadence, not the serial
//! rate. Two derived results are asserted:
//!
//! - **floor** — at 10% churn, the compacted server (interval 8) does
//!   at least 2× less work per serial than the rebuild-on-demand
//!   server (interval 1);
//! - **crossover** — walking the retention depths at 10% churn exposes
//!   the point where the retained delta log outgrows the snapshot-
//!   fallback traffic it prevents, per tree shape.
//!
//! Every cell's final steady-client output is asserted byte-identical
//! to a cold rsync walk of the same world — compaction and retention
//! are server-side layout policies, never content changes.
//!
//! ```sh
//! cargo run --release -p rpki-risk-bench --bin bench_pubd
//! ```
//!
//! `--json` mirrors the records to stderr; `--trace PATH` (or
//! `BENCH_TRACE`) writes a JSONL trace of one instrumented cell.

use rpki_ca::{ChurnConfig, ChurnEngine};
use rpki_objects::Moment;
use rpki_repo::{PubdPolicy, RetentionPolicy, RrdpClientState, SyncPolicy};
use rpki_risk::SyntheticRpki;
use rpki_risk_bench::{emit_json, trace_recorder, write_trace, Summary, SummaryTable};
use rpki_rp::{RrdpSource, ValidationConfig, ValidationRun, ValidationState, Validator};
use serde::Serialize;

/// One measured (shape, churn, interval, retention) cell.
#[derive(Debug, Serialize)]
struct Record {
    pub_points: usize,
    depth: u32,
    branching: u32,
    roas_per_ca: usize,
    churn_pct: u32,
    compaction_interval: u64,
    retention: String,
    /// Retention depth in deltas (`0` encodes unbounded).
    retention_depth: u64,
    steps: u64,
    serials: u64,
    snapshot_builds: u64,
    forced_builds: u64,
    snapshot_bytes_built: u64,
    deltas_evicted: u64,
    delta_bytes_evicted: u64,
    retained_deltas: u64,
    retained_delta_bytes: u64,
    notifications_served: u64,
    notification_bytes_served: u64,
    snapshots_served: u64,
    snapshot_bytes_served: u64,
    deltas_served: u64,
    delta_bytes_served: u64,
    fallback_evicted: u64,
    fallback_chain_gap: u64,
    bridge_deltas_applied: u64,
    built_per_serial: f64,
    served_per_serial: f64,
    work_per_serial: f64,
    /// Whether this cell's snapshot-fallback traffic still exceeds its
    /// retained delta-log footprint (the pre-crossover regime).
    fallback_exceeds_storage: bool,
}

/// One RRDP-transported incremental revalidation (trusting: the
/// measurement is the RRDP serve path alone).
fn poll(
    w: &mut SyntheticRpki,
    now: Moment,
    rrdp: &mut RrdpClientState,
    state: &mut ValidationState,
) -> ValidationRun {
    let mut source =
        RrdpSource::new(&mut w.net, &w.repos, w.rp_node, rrdp, SyncPolicy::default()).trusting();
    Validator::new(ValidationConfig::at(now)).run_incremental(
        &mut source,
        std::slice::from_ref(&w.tal),
        state,
    )
}

fn retention_of(depth: u64) -> RetentionPolicy {
    if depth == 0 {
        RetentionPolicy::Unbounded
    } else {
        RetentionPolicy::Count { max_deltas: depth as usize }
    }
}

fn main() {
    let mut report = Summary::new("publication-server benchmark (compaction x retention x churn)");
    let rec = trace_recorder();

    // 156 and ~1000 publication points: the bench_validation flagship
    // shape and a planet-scale flat tree (1 + 31 + 961 = 993).
    let shapes = [(3u32, 5u32, 12usize), (2, 31, 12)];
    let churns = [2u32, 10, 50];
    let intervals = [1u64, 8];
    // Retention depths in deltas; 0 = unbounded. MAX_DELTAS (32) is
    // the pre-pubd server's hard-coded bound.
    let depths = [1u64, 2, 4, 8, 32, 0];
    let steps: u64 = 12;

    let mut records: Vec<Record> = Vec::new();
    for (depth, branching, roas_per_ca) in shapes {
        for churn_pct in churns {
            for interval in intervals {
                for retention_depth in depths {
                    let retention = retention_of(retention_depth);
                    let policy = PubdPolicy::compacted(interval).with_retention(retention);
                    let mut w = SyntheticRpki::build_seeded(7, depth, branching, roas_per_ca);
                    let repo = w.repos.by_host_mut("rpki.bench.example").expect("bench host");
                    repo.set_pubd_policy(policy);

                    // The client population, all warmed before the
                    // serve ledgers reset: the measured snapshot serves
                    // are fallback-driven, not cold starts.
                    let mut steady_rrdp = RrdpClientState::new();
                    let mut steady_val = ValidationState::probe();
                    let mut lag_rrdp = RrdpClientState::new();
                    let mut lag_val = ValidationState::probe();
                    let mut stale_rrdp = RrdpClientState::new();
                    let mut stale_val = ValidationState::probe();
                    poll(&mut w, Moment(2), &mut steady_rrdp, &mut steady_val);
                    poll(&mut w, Moment(3), &mut lag_rrdp, &mut lag_val);
                    poll(&mut w, Moment(4), &mut stale_rrdp, &mut stale_val);
                    let repo = w.repos.by_host("rpki.bench.example").expect("bench host");
                    repo.reset_pubd_served();
                    // Churn-phase baseline: everything before this line
                    // (world build, policy switch, warm-up) is setup.
                    let work0 = repo.pubd_work_total();

                    let mut engine = ChurnEngine::new(11, ChurnConfig::renew_rate_pct(churn_pct));
                    let mut final_run = None;
                    for step in 0..steps {
                        let at = Moment(10 + step * 60);
                        w.run_churn(&mut engine, at);
                        let measure = Moment(at.0 + 30);
                        final_run = Some(poll(&mut w, measure, &mut steady_rrdp, &mut steady_val));
                        if step % 6 == 5 {
                            poll(&mut w, measure, &mut lag_rrdp, &mut lag_val);
                        }
                        if step == steps - 1 {
                            poll(&mut w, measure, &mut stale_rrdp, &mut stale_val);
                        }
                    }

                    // Server-side layout policies never change content.
                    let cold = w.validate_cold(Moment(10 + steps * 60));
                    assert_eq!(
                        final_run.expect("steps > 0"),
                        cold,
                        "steady client diverged from the cold walk \
                         (interval {interval}, retention {})",
                        retention.label()
                    );

                    let repo = w.repos.by_host("rpki.bench.example").expect("bench host");
                    // Churn-phase work: cumulative ledger minus the
                    // setup baseline. The retained_* fields are gauges
                    // of the end state, not counters — no subtraction.
                    let work = repo.pubd_work_total();
                    let served = repo.pubd_served_total();
                    let lag = lag_rrdp.stats();
                    let steady = steady_rrdp.stats();
                    let stale = stale_rrdp.stats();
                    let serials = work.serials - work0.serials;
                    let built = work.snapshot_bytes_built - work0.snapshot_bytes_built;
                    let built_per_serial = built as f64 / serials.max(1) as f64;
                    let served_per_serial = served.total_bytes() as f64 / serials.max(1) as f64;
                    let work_per_serial = (built + served.snapshot_bytes + served.delta_bytes)
                        as f64
                        / serials.max(1) as f64;
                    records.push(Record {
                        pub_points: w.publication_points(),
                        depth,
                        branching,
                        roas_per_ca,
                        churn_pct,
                        compaction_interval: interval,
                        retention: retention.label(),
                        retention_depth,
                        steps,
                        serials,
                        snapshot_builds: work.snapshot_builds - work0.snapshot_builds,
                        forced_builds: work.forced_builds - work0.forced_builds,
                        snapshot_bytes_built: built,
                        deltas_evicted: work.deltas_evicted - work0.deltas_evicted,
                        delta_bytes_evicted: work.delta_bytes_evicted - work0.delta_bytes_evicted,
                        retained_deltas: work.retained_deltas,
                        retained_delta_bytes: work.retained_delta_bytes,
                        notifications_served: served.notifications,
                        notification_bytes_served: served.notification_bytes,
                        snapshots_served: served.snapshots,
                        snapshot_bytes_served: served.snapshot_bytes,
                        deltas_served: served.deltas,
                        delta_bytes_served: served.delta_bytes,
                        fallback_evicted: steady.fallback_evicted
                            + lag.fallback_evicted
                            + stale.fallback_evicted,
                        fallback_chain_gap: steady.fallback_chain_gap
                            + lag.fallback_chain_gap
                            + stale.fallback_chain_gap,
                        bridge_deltas_applied: steady.bridge_deltas_applied
                            + lag.bridge_deltas_applied
                            + stale.bridge_deltas_applied,
                        built_per_serial,
                        served_per_serial,
                        work_per_serial,
                        fallback_exceeds_storage: served.snapshot_bytes > work.retained_delta_bytes,
                    });
                }
            }
        }
    }

    // One extra instrumented cell so the trace artifact carries the
    // pubd materialise/evict events and counters.
    if rec.is_enabled() {
        let mut w = SyntheticRpki::build_seeded(7, 2, 3, 4);
        let repo = w.repos.by_host_mut("rpki.bench.example").expect("bench host");
        repo.set_pubd_policy(
            PubdPolicy::compacted(4).with_retention(RetentionPolicy::Count { max_deltas: 2 }),
        );
        repo.set_recorder(rec.clone());
        w.net.set_recorder(rec.clone());
        let mut rrdp = RrdpClientState::new();
        let mut val = ValidationState::probe();
        poll(&mut w, Moment(2), &mut rrdp, &mut val);
        let mut engine = ChurnEngine::new(11, ChurnConfig::renew_rate_pct(50));
        for step in 0..8u64 {
            w.run_churn(&mut engine, Moment(10 + step * 60));
        }
        poll(&mut w, Moment(10 + 8 * 60), &mut rrdp, &mut val);
    }

    let mut out = SummaryTable::new(&[
        "points",
        "churn",
        "interval",
        "retention",
        "serials",
        "builds (forced)",
        "built KB",
        "served KB n/s/d",
        "evicted",
        "retained KB",
        "work/serial",
    ]);
    for r in &records {
        out.row(&[
            r.pub_points.to_string(),
            format!("{}%", r.churn_pct),
            r.compaction_interval.to_string(),
            r.retention.clone(),
            r.serials.to_string(),
            format!("{} ({})", r.snapshot_builds, r.forced_builds),
            format!("{}", r.snapshot_bytes_built / 1024),
            format!(
                "{}/{}/{}",
                r.notification_bytes_served / 1024,
                r.snapshot_bytes_served / 1024,
                r.delta_bytes_served / 1024
            ),
            r.deltas_evicted.to_string(),
            format!("{}", r.retained_delta_bytes / 1024),
            format!("{:.0}", r.work_per_serial),
        ]);
    }
    report.table("server work and serve ledgers per cell", out);

    // The §3.3.2 crossover, per shape: walking the retention depths at
    // 10% churn under the compacted server, where does the retained
    // delta log first outgrow the snapshot-fallback traffic it
    // prevents?
    let mut crossovers: Vec<(String, String)> = Vec::new();
    for (d, b, _) in shapes {
        let mut cells: Vec<&Record> = records
            .iter()
            .filter(|r| {
                r.depth == d
                    && r.branching == b
                    && r.churn_pct == 10
                    && r.compaction_interval == 8
                    && r.retention_depth > 0
            })
            .collect();
        cells.sort_by_key(|r| r.retention_depth);
        let points = cells.first().map_or(0, |r| r.pub_points);
        let cross = cells.iter().find(|r| !r.fallback_exceeds_storage);
        crossovers.push((
            format!("storage overtakes fallback traffic at {points} points (10% churn)"),
            cross.map_or_else(
                || "beyond the swept depths".to_owned(),
                |r| format!("{} deltas retained", r.retention_depth),
            ),
        ));
    }
    report.key_vals(
        "crossover",
        &crossovers.iter().map(|(k, v)| (k.clone(), v.clone())).collect::<Vec<_>>(),
    );

    // The compaction floor: at 10% churn with the default retention
    // bound, the compacted server must do >= 2x less work per serial
    // than rebuild-on-demand, at every shape.
    let mut floor = f64::INFINITY;
    for (d, b, _) in shapes {
        let cell = |interval: u64| {
            records
                .iter()
                .find(|r| {
                    r.depth == d
                        && r.branching == b
                        && r.churn_pct == 10
                        && r.compaction_interval == interval
                        && r.retention_depth == 32
                })
                .expect("swept cell")
        };
        let ratio = cell(1).work_per_serial / cell(8).work_per_serial.max(1.0);
        floor = floor.min(ratio);
    }
    report.key_vals(
        "targets",
        &[(
            "minimum rebuild-on-demand / compacted work ratio at 10% churn".to_owned(),
            format!("{floor:.1}x"),
        )],
    );
    if cfg!(debug_assertions) {
        report.note("(debug build — compaction floor not enforced; run with --release)");
    } else if floor >= 2.0 {
        report.note("OK: compaction saves >= 2x server work per serial at 10% churn.");
    }
    report.print();

    let json = serde_json::to_string(&records).expect("serialise records");
    std::fs::write("BENCH_pubd.json", format!("{json}\n")).expect("write BENCH_pubd.json");
    println!("\nwrote BENCH_pubd.json ({} records)", records.len());
    if let Some(path) = write_trace(&rec) {
        println!("wrote trace to {path}");
    }
    emit_json("bench_pubd", &records);
    // Enforced last so a regressed run still reports and exports the
    // numbers that explain it.
    assert!(
        cfg!(debug_assertions) || floor >= 2.0,
        "compaction regressed below the 2x work floor at 10% churn ({floor:.2}x)"
    );
}
