//! Side Effect 7: transient faults cause long-term failures.
//!
//! The Section 6 worked example, end to end on the real transport:
//! a single corrupted fetch of the ROA `(63.174.16.0/20, AS17054)` —
//! whose repository lives at 63.174.23.0 *inside that very prefix* —
//! leaves a drop-invalid relying party permanently unable to re-fetch
//! the repair, because the route to the repository is invalid without
//! the ROA stored there.

use bgp_sim::RpkiPolicy;
use rpki_objects::Moment;
use rpki_repo::SyncPolicy;
use rpki_risk::fixtures::asn;
use rpki_risk::{LoopbackWorld, ModelRpki, ValidationOptions};
use rpki_risk_bench::{emit_json, trace_recorder, write_trace, Summary, SummaryTable};
use rpki_rp::{ResilienceConfig, ResilientState};
use serde::Serialize;

#[derive(Serialize)]
struct Phase {
    phase: &'static str,
    vrps: usize,
    continental_fetchable: bool,
}

fn main() {
    let recorder = trace_recorder();
    let mut report =
        Summary::new("Side Effect 7 — one corrupted fetch becomes a persistent failure");
    let mut phases: Vec<Phase> = Vec::new();

    // Premises (Section 6): Figure 5 (right) validity; Continental
    // hosts its repository at 63.174.23.0/AS17054; drop-invalid RP.
    let mut w = ModelRpki::build();
    w.net.set_recorder(recorder.clone());
    w.add_figure5_right_roa(Moment(2));

    // Phase 1 — a healthy sync over the network. A resilient relying
    // party would also warm its last-good snapshots here (used by
    // phase 5).
    let healthy = w.validate_with(ValidationOptions::at(Moment(3)));
    phases.push(Phase { phase: "healthy", vrps: healthy.vrps.len(), continental_fetchable: true });
    let policy = SyncPolicy::default();
    let mut resilient = ResilientState::new(ResilienceConfig::default());
    w.validate_with(ValidationOptions::at(Moment(3)).retry(policy).stale_cache(&mut resilient));

    // Phase 2 — the transient fault: corrupt ONE fetch from
    // Continental's repository (Side Effect 6's corrupted-object case).
    let continental_node = w.repos.node_of("rpki.continental.example").expect("exists");
    // Corrupt the whole session once (listing frame): the RP's next
    // sync sees nothing from Continental — its ROAs fall out of cache.
    w.net.faults.corrupt_nth(continental_node, w.rp_node, 1);
    let faulted = w.validate_with(ValidationOptions::at(Moment(4)));
    assert!(faulted.vrps.len() < healthy.vrps.len());
    phases.push(Phase {
        phase: "transient fault",
        vrps: faulted.vrps.len(),
        continental_fetchable: false,
    });

    // Phase 3 — the fault is GONE (no more scheduled corruption), but
    // the relying party's routes are now computed from the degraded
    // cache. Close the loop and find the fixed point.
    let degraded = faulted.vrps.clone();
    let ModelRpki { net, repos, rp_node, tal, topology, announcements, .. } = &mut w;
    let tals = std::slice::from_ref(&*tal);
    let mut world = LoopbackWorld {
        net,
        repos,
        rp_node: *rp_node,
        rp_asn: asn::RELYING_PARTY,
        tals,
        topology,
        announcements,
        policy: RpkiPolicy::DropInvalid,
    };
    let stuck = world.run(&degraded, Moment(5));
    assert!(!stuck.can_fetch("rpki.continental.example"), "the trap must hold");
    phases.push(Phase {
        phase: "fixed point (drop-invalid)",
        vrps: stuck.vrps.len(),
        continental_fetchable: false,
    });

    // Phase 4 — recovery requires stepping outside the loop: the paper
    // notes "this can be fixed (manually), but there are no recommended
    // procedures". One manual fix: temporarily depref instead of drop.
    let mut relaxed = LoopbackWorld { policy: RpkiPolicy::DeprefInvalid, ..world };
    let recovered = relaxed.run(&stuck.vrps, Moment(6));
    assert!(recovered.can_fetch("rpki.continental.example"));
    assert_eq!(recovered.vrps.len(), healthy.vrps.len());
    phases.push(Phase {
        phase: "manual recovery (depref)",
        vrps: recovered.vrps.len(),
        continental_fetchable: true,
    });

    // Phase 5 — the same trap with the resilient pipeline armed from
    // the start: the stale snapshot bridges the gated transport, BGP
    // never sees the degraded cache, and the fixed point recovers
    // WITHOUT leaving drop-invalid. No manual procedure needed.
    let mut defended = LoopbackWorld { policy: RpkiPolicy::DropInvalid, ..relaxed };
    let bridged = defended.run_resilient(&degraded, Moment(7), policy, &mut resilient);
    assert!(bridged.can_fetch("rpki.continental.example"), "the defense must break the trap");
    assert_eq!(bridged.vrps.len(), healthy.vrps.len());
    phases.push(Phase {
        phase: "resilient RP (automatic)",
        vrps: bridged.vrps.len(),
        continental_fetchable: true,
    });

    let mut table = SummaryTable::new(&["phase", "VRPs in cache", "Continental repo fetchable"]);
    for p in &phases {
        table.row(&[p.phase.to_owned(), p.vrps.to_string(), p.continental_fetchable.to_string()]);
    }
    report.table("Side Effect 7 timeline", table);
    let mut work = stuck.propagation;
    work.absorb(recovered.propagation);
    work.emit(&recorder, 8);
    report.key_vals(
        "work across both loop runs",
        &[
            ("BGP rounds", work.rounds.to_string()),
            ("route updates", work.route_updates.to_string()),
            ("memo hits", format!("{}/{}", work.memo_hits, work.memo_hits + work.memo_misses)),
        ],
    );
    report.note(
        "OK: a transient fault persisted until manual intervention (Section 6) —\n\
         unless the RP's fetch pipeline bridges it automatically (phase 5).",
    );
    if recorder.is_enabled() {
        report.metrics(&recorder.metrics());
    }
    report.print();
    if let Some(path) = write_trace(&recorder) {
        println!("\nwrote {} trace events to {path}", recorder.event_count());
    }

    emit_json("se7_phases", &phases);
    emit_json("se7_convergence", &work);
}
