//! Side Effect 7: transient faults cause long-term failures.
//!
//! The Section 6 worked example, end to end on the real transport:
//! a single corrupted fetch of the ROA `(63.174.16.0/20, AS17054)` —
//! whose repository lives at 63.174.23.0 *inside that very prefix* —
//! leaves a drop-invalid relying party permanently unable to re-fetch
//! the repair, because the route to the repository is invalid without
//! the ROA stored there.

use bgp_sim::RpkiPolicy;
use rpki_objects::Moment;
use rpki_repo::SyncPolicy;
use rpki_risk::fixtures::asn;
use rpki_risk::{LoopbackWorld, ModelRpki};
use rpki_risk_bench::{emit_json, Table};
use rpki_rp::{ResilienceConfig, ResilientState};
use serde::Serialize;

#[derive(Serialize)]
struct Phase {
    phase: &'static str,
    vrps: usize,
    continental_fetchable: bool,
}

fn main() {
    println!("Side Effect 7 — one corrupted fetch becomes a persistent failure\n");
    let mut phases: Vec<Phase> = Vec::new();

    // Premises (Section 6): Figure 5 (right) validity; Continental
    // hosts its repository at 63.174.23.0/AS17054; drop-invalid RP.
    let mut w = ModelRpki::build();
    w.add_figure5_right_roa(Moment(2));

    // Phase 1 — a healthy sync over the network. A resilient relying
    // party would also warm its last-good snapshots here (used by
    // phase 5).
    let healthy = w.validate_network(Moment(3));
    println!("phase 1: healthy sync           → {} VRPs", healthy.vrps.len());
    phases.push(Phase { phase: "healthy", vrps: healthy.vrps.len(), continental_fetchable: true });
    let policy = SyncPolicy::default();
    let mut resilient = ResilientState::new(ResilienceConfig::default());
    w.validate_resilient(Moment(3), policy, &mut resilient);

    // Phase 2 — the transient fault: corrupt ONE fetch from
    // Continental's repository (Side Effect 6's corrupted-object case).
    let continental_node = w.repos.node_of("rpki.continental.example").expect("exists");
    // Corrupt the whole session once (listing frame): the RP's next
    // sync sees nothing from Continental — its ROAs fall out of cache.
    w.net.faults.corrupt_nth(continental_node, w.rp_node, 1);
    let faulted = w.validate_network(Moment(4));
    println!(
        "phase 2: one corrupted session  → {} VRPs (Continental's ROAs lost)",
        faulted.vrps.len()
    );
    assert!(faulted.vrps.len() < healthy.vrps.len());
    phases.push(Phase {
        phase: "transient fault",
        vrps: faulted.vrps.len(),
        continental_fetchable: false,
    });

    // Phase 3 — the fault is GONE (no more scheduled corruption), but
    // the relying party's routes are now computed from the degraded
    // cache. Close the loop and find the fixed point.
    let degraded = faulted.vrps.clone();
    let ModelRpki { net, repos, rp_node, tal, topology, announcements, .. } = &mut w;
    let tals = std::slice::from_ref(&*tal);
    let mut world = LoopbackWorld {
        net,
        repos,
        rp_node: *rp_node,
        rp_asn: asn::RELYING_PARTY,
        tals,
        topology,
        announcements,
        policy: RpkiPolicy::DropInvalid,
    };
    let stuck = world.run(&degraded, Moment(5));
    println!(
        "phase 3: fault cleared, loop run → {} VRPs, Continental fetchable: {}",
        stuck.vrps.len(),
        stuck.can_fetch("rpki.continental.example")
    );
    assert!(!stuck.can_fetch("rpki.continental.example"), "the trap must hold");
    phases.push(Phase {
        phase: "fixed point (drop-invalid)",
        vrps: stuck.vrps.len(),
        continental_fetchable: false,
    });

    // Phase 4 — recovery requires stepping outside the loop: the paper
    // notes "this can be fixed (manually), but there are no recommended
    // procedures". One manual fix: temporarily depref instead of drop.
    let mut relaxed = LoopbackWorld { policy: RpkiPolicy::DeprefInvalid, ..world };
    let recovered = relaxed.run(&stuck.vrps, Moment(6));
    println!(
        "phase 4: manual recovery (temporary depref) → {} VRPs, Continental fetchable: {}",
        recovered.vrps.len(),
        recovered.can_fetch("rpki.continental.example")
    );
    assert!(recovered.can_fetch("rpki.continental.example"));
    assert_eq!(recovered.vrps.len(), healthy.vrps.len());
    phases.push(Phase {
        phase: "manual recovery (depref)",
        vrps: recovered.vrps.len(),
        continental_fetchable: true,
    });

    // Phase 5 — the same trap with the resilient pipeline armed from
    // the start: the stale snapshot bridges the gated transport, BGP
    // never sees the degraded cache, and the fixed point recovers
    // WITHOUT leaving drop-invalid. No manual procedure needed.
    let mut defended = LoopbackWorld { policy: RpkiPolicy::DropInvalid, ..relaxed };
    let bridged = defended.run_resilient(&degraded, Moment(7), policy, &mut resilient);
    println!(
        "phase 5: resilient RP (stale-cache fallback) → {} VRPs, Continental fetchable: {}",
        bridged.vrps.len(),
        bridged.can_fetch("rpki.continental.example")
    );
    assert!(bridged.can_fetch("rpki.continental.example"), "the defense must break the trap");
    assert_eq!(bridged.vrps.len(), healthy.vrps.len());
    phases.push(Phase {
        phase: "resilient RP (automatic)",
        vrps: bridged.vrps.len(),
        continental_fetchable: true,
    });

    let mut table = Table::new(&["phase", "VRPs in cache", "Continental repo fetchable"]);
    for p in &phases {
        table.row(&[p.phase.to_owned(), p.vrps.to_string(), p.continental_fetchable.to_string()]);
    }
    table.print("Side Effect 7 timeline");
    let mut work = stuck.propagation;
    work.absorb(recovered.propagation);
    println!(
        "work: {} BGP rounds, {} route updates, validity memo {}/{} hits across both loop runs",
        work.rounds,
        work.route_updates,
        work.memo_hits,
        work.memo_hits + work.memo_misses,
    );
    println!("\nOK: a transient fault persisted until manual intervention (Section 6) —");
    println!("    unless the RP's fetch pipeline bridges it automatically (phase 5).");

    emit_json("se7_phases", &phases);
    emit_json("se7_convergence", &work);
}
