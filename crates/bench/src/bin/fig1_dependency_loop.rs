//! Figure 1: the dependency loop RPKI → route validity → BGP →
//! (TCP/IP) → RPKI, made executable.
//!
//! Runs the loopback fixed point from a healthy cache and from a
//! degraded one, showing that the same machinery that distributes RPKI
//! objects depends on the routes those objects validate.

use bgp_sim::RpkiPolicy;
use rpki_objects::Moment;
use rpki_risk::fixtures::asn;
use rpki_risk::{LoopbackWorld, ModelRpki};
use rpki_risk_bench::{emit_json, Table};
use rpki_rp::Vrp;

fn main() {
    println!("Figure 1 — the RPKI ⇆ BGP dependency loop, executed to fixed point");

    let mut w = ModelRpki::build();
    w.add_figure5_right_roa(Moment(2));
    let full = w.validate_direct(Moment(3)).vrps;
    let degraded: Vec<Vrp> = full.iter().copied().filter(|v| v.asn != asn::CONTINENTAL).collect();

    let ModelRpki { net, repos, rp_node, tal, topology, announcements, .. } = &mut w;
    let tals = std::slice::from_ref(&*tal);
    let mut world = LoopbackWorld {
        net,
        repos,
        rp_node: *rp_node,
        rp_asn: asn::RELYING_PARTY,
        tals,
        topology,
        announcements,
        policy: RpkiPolicy::DropInvalid,
    };

    let healthy = world.run(&full, Moment(3));
    let trapped = world.run(&degraded, Moment(4));

    let mut table = Table::new(&["starting cache", "iterations", "fetchable repos", "final VRPs"]);
    table.row(&[
        "complete".to_owned(),
        healthy.iterations.to_string(),
        healthy.reachable_repos.len().to_string(),
        healthy.vrps.len().to_string(),
    ]);
    table.row(&[
        "one ROA lost".to_owned(),
        trapped.iterations.to_string(),
        trapped.reachable_repos.len().to_string(),
        trapped.vrps.len().to_string(),
    ]);
    table.print("Fixed points under drop-invalid");

    println!("\nUnreachable at the degraded fixed point: {:?}", trapped.unreachable_repos);
    assert!(healthy.can_fetch("rpki.continental.example"));
    assert!(!trapped.can_fetch("rpki.continental.example"));
    assert!(trapped.vrps.len() < healthy.vrps.len());
    println!(
        "OK: validity gates transport gates validity — the loop of Figure 1 is closed \
         and has multiple stable states."
    );

    emit_json("fig1_healthy", &healthy);
    emit_json("fig1_trapped", &trapped);
}
