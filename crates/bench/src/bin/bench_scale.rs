//! Sharded-validation scaling benchmark: the sequential walk vs the
//! deterministic work-stealing sharded walk across pub-point counts
//! and shard counts, exported to `BENCH_scale.json`.
//!
//! The workload is a cold full walk of [`SyntheticRpki`] worlds sized
//! 156 → 993 → 4971 publication points. Every sharded cell is checked
//! byte-identical (serialised JSON) to the sequential walk of the same
//! world before its timings are recorded, so the sweep doubles as the
//! N-shard ≡ 1-shard equivalence gate. An incremental cell per shape
//! additionally composes the memo cache with the sharded walk.
//!
//! Two speedups are reported per cell:
//!
//! - `wall_speedup` — sequential wall time over sharded wall time.
//!   Honest but host-bound: on a single-core container the sharded
//!   walk cannot beat the sequential one, it only pays thread
//!   overhead.
//! - `model_speedup` — total shard busy time over the schedule's
//!   critical path (`ShardStats::model_speedup`). This measures the
//!   load balance the scheduler achieved — the factor the walk gains
//!   *given one core per shard* — and is host-independent, so it is
//!   what the release floor asserts.
//!
//! ```sh
//! cargo run --release -p rpki-risk-bench --bin bench_scale
//! ```
//!
//! `--scale N` multiplies the per-CA ROA count; `--json` mirrors the
//! records to stderr; `--trace PATH` (or `BENCH_TRACE`) writes a JSONL
//! trace of one instrumented sharded walk.

use std::time::Instant;

use rpki_objects::Moment;
use rpki_risk::SyntheticRpki;
use rpki_risk_bench::{
    emit_json, scale_arg, trace_recorder, write_trace, Recorder, Summary, SummaryTable,
};
use rpki_rp::{ShardPlan, ValidationRun, ValidationState};
use serde::Serialize;

/// One measured (tree shape, shard count) cell.
#[derive(Debug, Serialize)]
struct Record {
    pub_points: usize,
    depth: u32,
    branching: u32,
    roas_per_ca: usize,
    vrps: usize,
    mode: String,
    shards: usize,
    seq_ns: u128,
    sharded_ns: u128,
    wall_speedup: f64,
    model_speedup: f64,
    waves: u64,
    items: u64,
    steals: u64,
    assigned_min: u64,
    assigned_max: u64,
}

/// The run's canonical byte form: its JSONL trace emitted into a
/// fresh recorder at a fixed timestamp.
fn run_jsonl(run: &ValidationRun) -> String {
    let rec = Recorder::new();
    run.emit(&rec, 0);
    rec.trace_jsonl()
}

/// Minimum wall time of `iters` runs of `f` (after one warmup run).
fn time_min<F: FnMut()>(iters: usize, mut f: F) -> u128 {
    f();
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .min()
        .expect("at least one iteration")
}

fn main() {
    let scale = scale_arg().max(1);
    let mut report = Summary::new(&format!("Sharded validation scaling benchmark (scale {scale})"));
    let rec = trace_recorder();

    // (depth, branching): 156, 993, and 4971 publication points — the
    // RIR-hosted fan-outs the tentpole sweeps. ROAs are kept thin so
    // walk cost tracks pub-point count, not ROA parsing.
    let shapes = [(3u32, 5u32), (2, 31), (2, 70)];
    let shard_counts = [1usize, 2, 4, 8];
    let iters = if cfg!(debug_assertions) { 1 } else { 2 };
    let roas_per_ca = 4 * scale;

    let mut records: Vec<Record> = Vec::new();
    for (depth, branching) in shapes {
        let mut w = SyntheticRpki::build_seeded(7, depth, branching, roas_per_ca);
        let points = w.publication_points();
        let now = Moment(2);

        let run_seq = w.validate_cold(now);
        let seq_json = run_jsonl(&run_seq);
        let seq_ns = time_min(iters, || {
            w.validate_cold(now);
        });

        for shards in shard_counts {
            let plan = ShardPlan::new(shards);
            let (run, stats) = w.validate_cold_sharded(now, plan);
            assert_eq!(run, run_seq, "sharded walk ({shards} shards) diverged at {points} points");
            let sharded_json = run_jsonl(&run);
            assert_eq!(
                sharded_json, seq_json,
                "sharded walk ({shards} shards) not byte-identical at {points} points"
            );
            let sharded_ns = time_min(iters, || {
                w.validate_cold_sharded(now, plan);
            });
            records.push(Record {
                pub_points: points,
                depth,
                branching,
                roas_per_ca,
                vrps: w.roa_count + 1,
                mode: "cold".into(),
                shards,
                seq_ns,
                sharded_ns,
                wall_speedup: seq_ns as f64 / sharded_ns as f64,
                model_speedup: stats.model_speedup(),
                waves: stats.waves,
                items: stats.items,
                steals: stats.steals,
                assigned_min: stats.assigned.iter().copied().min().unwrap_or(0),
                assigned_max: stats.assigned.iter().copied().max().unwrap_or(0),
            });
        }

        // One incremental cell: the memo cache composes with the
        // sharded walk — warm the state, churn 10% of directories,
        // then revalidate sharded and check against a cold walk.
        let mut state = ValidationState::probe();
        let plan = ShardPlan::new(4);
        w.validate_incremental_sharded(Moment(4), plan, &mut state);
        w.churn(10, Moment(10));
        let cold = w.validate_cold(Moment(40));
        let cold_json = run_jsonl(&cold);
        let start = Instant::now();
        let (run, stats) = w.validate_incremental_sharded(Moment(40), plan, &mut state);
        let sharded_ns = start.elapsed().as_nanos();
        assert_eq!(run, cold, "incremental sharded walk diverged at {points} points");
        assert_eq!(
            run_jsonl(&run),
            cold_json,
            "incremental sharded walk not byte-identical at {points} points"
        );
        let cold_ns = time_min(iters, || {
            w.validate_cold(Moment(40));
        });
        records.push(Record {
            pub_points: points,
            depth,
            branching,
            roas_per_ca,
            vrps: w.roa_count + 1,
            mode: "incremental".into(),
            shards: plan.shards,
            seq_ns: cold_ns,
            sharded_ns,
            wall_speedup: cold_ns as f64 / sharded_ns as f64,
            model_speedup: stats.model_speedup(),
            waves: stats.waves,
            items: stats.items,
            steals: stats.steals,
            assigned_min: stats.assigned.iter().copied().min().unwrap_or(0),
            assigned_max: stats.assigned.iter().copied().max().unwrap_or(0),
        });

        // One instrumented sharded walk so the trace artifact carries
        // the deterministic shard-shape events.
        if rec.is_enabled() {
            w.net.set_recorder(rec.clone());
            let (_, stats) = w.validate_cold_sharded(Moment(60), plan);
            stats.emit(&rec, 60);
            w.net.set_recorder(rpki_risk_bench::Recorder::disabled());
        }
    }

    let mut out = SummaryTable::new(&[
        "points",
        "mode",
        "shards",
        "seq (ms)",
        "sharded (ms)",
        "wall",
        "model",
        "waves",
        "steals",
        "assigned min/max",
    ]);
    for r in &records {
        out.row(&[
            r.pub_points.to_string(),
            r.mode.clone(),
            r.shards.to_string(),
            format!("{:.3}", r.seq_ns as f64 / 1e6),
            format!("{:.3}", r.sharded_ns as f64 / 1e6),
            format!("{:.2}x", r.wall_speedup),
            format!("{:.2}x", r.model_speedup),
            r.waves.to_string(),
            r.steals.to_string(),
            format!("{}/{}", r.assigned_min, r.assigned_max),
        ]);
    }
    report.table("sequential vs sharded cold walk", out);

    // Near-linear scaling: the sequential per-point cost should stay
    // flat as the world grows ~32x. Quadratic behaviour would show up
    // as a ~32x ratio here.
    let per_point: Vec<(usize, f64)> = shapes
        .iter()
        .map(|&(d, b)| {
            let r = records
                .iter()
                .find(|r| r.depth == d && r.branching == b && r.shards == 1 && r.mode == "cold")
                .expect("cold 1-shard cell per shape");
            (r.pub_points, r.seq_ns as f64 / r.pub_points as f64)
        })
        .collect();
    let per_point_ratio = {
        let min = per_point.iter().map(|&(_, c)| c).fold(f64::INFINITY, f64::min);
        let max = per_point.iter().map(|&(_, c)| c).fold(0.0f64, f64::max);
        max / min
    };
    let floor_model = records
        .iter()
        .filter(|r| r.mode == "cold" && r.pub_points >= 1000 && r.shards >= 4)
        .map(|r| r.model_speedup)
        .fold(f64::INFINITY, f64::min);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    report.key_vals(
        "targets",
        &[
            (
                "per-point sequential cost spread (max/min over 156→4971 points)".to_string(),
                format!("{per_point_ratio:.2}x"),
            ),
            (
                "minimum model speedup at >=1000 points with >=4 shards".to_string(),
                format!("{floor_model:.2}x"),
            ),
            ("host cores".to_string(), cores.to_string()),
        ],
    );
    if cores < 2 {
        report.note(
            "(single-core host — wall speedups cannot exceed 1x; the floor is on model_speedup, \
             the schedule's load balance, which is host-independent)",
        );
    }
    if cfg!(debug_assertions) {
        report.note("(debug build — scaling floors not enforced; run with --release)");
    } else if floor_model >= 2.0 && per_point_ratio <= 6.0 {
        report.note("OK: >= 2x model speedup floor and near-linear per-point cost.");
    }
    report.print();

    let json = serde_json::to_string(&records).expect("serialise records");
    std::fs::write("BENCH_scale.json", format!("{json}\n")).expect("write BENCH_scale.json");
    println!("\nwrote BENCH_scale.json ({} records)", records.len());
    if let Some(path) = write_trace(&rec) {
        println!("wrote trace to {path}");
    }
    emit_json("bench_scale", &records);
    // Enforced last so a regressed run still reports and exports the
    // numbers that explain it.
    assert!(
        cfg!(debug_assertions) || per_point_ratio <= 6.0,
        "sequential walk is no longer near-linear: per-point cost spread {per_point_ratio:.2}x"
    );
    assert!(
        cfg!(debug_assertions) || floor_model >= 2.0,
        "sharded schedule regressed below the 2x model-speedup floor ({floor_model:.2}x)"
    );
    // Wall-clock floor only where the host can physically express it.
    if cores >= 2 {
        let wall = records
            .iter()
            .filter(|r| r.mode == "cold" && r.pub_points >= 1000 && r.shards >= 2)
            .map(|r| r.wall_speedup)
            .fold(0.0f64, f64::max);
        assert!(
            cfg!(debug_assertions) || wall >= 1.0,
            "sharded walk never beat the sequential walk on a {cores}-core host ({wall:.2}x)"
        );
    }
}
