//! Side Effect 5: a new ROA can cause many routes to become invalid.
//!
//! Over a partially-adopted synthetic Internet, a large network issues
//! a covering ROA for its aggregate. Every customer route without a ROA
//! of its own flips unknown → invalid — the deployment-ordering hazard
//! (citation \[43\] of the paper found the production RPKI invalidating live routes this way).
//! Sweeps the adoption level to show the blast radius shrinking as
//! leaves deploy first.

use ipres::Asn;
use rpki_risk::se5_new_roa_impact;
use rpki_risk_bench::{emit_json, scale_arg, Table};
use rpki_rp::{Route, Vrp};
use serde::Serialize;
use topogen::{Config, OrgKind, SyntheticInternet};

#[derive(Serialize)]
struct SweepRow {
    adoption: f64,
    routes: usize,
    newly_invalid: usize,
    newly_valid: usize,
}

fn main() {
    let scale = scale_arg();
    println!(
        "Side Effect 5 — a transit issues a covering ROA for its aggregate\n\
         (unknown customer routes inside it become INVALID)"
    );

    let mut table =
        Table::new(&["leaf ROA adoption", "customer routes", "flip → invalid", "flip → valid"]);
    let mut sweep = Vec::new();

    for adoption in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let config = Config {
            seed: 42,
            transits: 10 * scale,
            stubs: 150 * scale,
            roa_adoption: adoption,
            cross_border: 0.1,
            anchors: false,
            self_hosting: 1.0,
        };
        let world = SyntheticInternet::generate(config);

        // Current VRPs: whatever the adopters issued.
        let vrps: Vec<Vrp> = world
            .orgs
            .iter()
            .filter(|o| o.adopted_roa)
            .flat_map(|o| o.prefixes.iter().map(move |&p| Vrp::new(p, p.len(), o.asn)))
            .collect();
        // Routes: everyone's announcements.
        let routes: Vec<Route> =
            world.announcements.iter().map(|a| Route::new(a.prefix, a.origin)).collect();

        // The early adopter: a transit that has NOT yet issued a ROA
        // (so the covering ROA is genuinely new) issues one for its /16
        // aggregate; at full adoption any transit will do (no flips
        // remain possible).
        let transit = world
            .orgs
            .iter()
            .find(|o| o.kind == OrgKind::Transit && !o.adopted_roa)
            .or_else(|| world.orgs.iter().find(|o| o.kind == OrgKind::Transit))
            .expect("has transits");
        let new_vrp = Vrp::new(transit.prefixes[0], transit.prefixes[0].len(), transit.asn);

        let impact = se5_new_roa_impact(&vrps, new_vrp, &routes);
        let customer_routes = routes
            .iter()
            .filter(|r| transit.prefixes[0].covers(r.prefix) && r.origin != transit.asn)
            .count();
        table.row(&[
            format!("{:.0}%", adoption * 100.0),
            customer_routes.to_string(),
            impact.newly_invalid.len().to_string(),
            impact.newly_valid.len().to_string(),
        ]);
        sweep.push(SweepRow {
            adoption,
            routes: customer_routes,
            newly_invalid: impact.newly_invalid.len(),
            newly_valid: impact.newly_valid.len(),
        });
        let _ = Asn(0);
    }
    table.print("Blast radius of one covering ROA vs leaf adoption");

    // Shape: with no leaf adoption every covered customer route flips
    // invalid; with full adoption none do.
    assert!(sweep.first().expect("rows").newly_invalid > 0);
    assert_eq!(sweep.last().expect("rows").newly_invalid, 0);
    println!(
        "\nOK: a covering ROA issued before its customers' ROAs invalidates their routes \
         (Side Effect 5); issuing leaf-first eliminates the damage."
    );

    emit_json("se5_sweep", &sweep);
}
