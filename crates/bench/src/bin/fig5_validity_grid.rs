//! Figure 5: route-validity grids for 63.160.0.0/12 and its
//! subprefixes — left panel (the Figure 2 ROA set) and right panel
//! (after Sprint adds `(63.160.0.0/12-13, AS1239)`).

use ipres::Asn;
use rpki_objects::Moment;
use rpki_risk::fixtures::asn;
use rpki_risk::{collapse_bands, validity_grid, ModelRpki};
use rpki_risk_bench::{emit_json, Table};

fn render_panel(title: &str, cache: &rpki_rp::VrpCache, origins: &[Asn]) -> Vec<rpki_risk::Band> {
    let root = "63.160.0.0/12".parse().unwrap();
    let rows = validity_grid(cache, root, 24, origins);
    let bands = collapse_bands(&rows);
    let mut table = Table::new(&{
        let mut h = vec!["prefix range".to_owned(), "len".to_owned(), "count".to_owned()];
        h.extend(origins.iter().map(|o| o.to_string()));
        h
    });
    for band in &bands {
        let mut cells = vec![
            if band.count == 1 {
                band.first.to_string()
            } else {
                format!("{} … {}", band.first, band.last)
            },
            band.first.len().to_string(),
            band.count.to_string(),
        ];
        cells.extend(band.states.iter().map(|(_, s)| s.to_string()));
        table.row(&cells);
    }
    table.print(title);
    bands
}

fn main() {
    let mut w = ModelRpki::build();
    let origins = [asn::SPRINT, asn::CONTINENTAL, asn::CUSTOMER_A, Asn(666) /* anyone else */];

    let left_cache = w.validate_direct(Moment(2)).vrp_cache();
    let left =
        render_panel("Figure 5 (left): validity under the Figure 2 ROAs", &left_cache, &origins);

    w.add_figure5_right_roa(Moment(3));
    let right_cache = w.validate_direct(Moment(4)).vrp_cache();
    let right = render_panel(
        "Figure 5 (right): after adding (63.160.0.0/12-13, AS1239)",
        &right_cache,
        &origins,
    );

    // The paper's headline deltas.
    use rpki_rp::{Route, RouteValidity};
    let unknown_probe = Route::new("63.161.0.0/16".parse().unwrap(), Asn(666));
    assert_eq!(left_cache.classify(unknown_probe), RouteValidity::Unknown);
    assert_eq!(right_cache.classify(unknown_probe), RouteValidity::Invalid);
    let covered_probe = Route::new("63.174.17.0/24".parse().unwrap(), asn::CONTINENTAL);
    assert_eq!(left_cache.classify(covered_probe), RouteValidity::Invalid);
    println!(
        "\nOK: 63.161.0.0/16 flips unknown→invalid (Side Effect 5); \
         63.174.17.0/24 is invalid even on the left (cover ≠ match)."
    );

    emit_json("fig5_left_bands", &left);
    emit_json("fig5_right_bands", &right);
}
