//! Ablation: the Stalloris RRDP downgrade, stance by stance.
//!
//! Runs the seeded Stalloris scenario — a stealthy covering-ROA
//! withdrawal executed behind a pinned RRDP feed — and reports, round
//! by round, what a trusting RRDP relying party believes versus what a
//! freshness-verifying one recovers versus the at-rest truth. The
//! headline numbers are the stale-round totals: the trusting stance is
//! captive for the whole pin window, the verified stance for none of
//! it, and the gap is exactly what the freshness cross-check buys.
//!
//! Also replays the `stalloris-downgrade` standard campaign so the
//! same attack is visible through the five-tier campaign harness
//! (the rrdp tier downgrades and stays whole; the rsync tiers never
//! see the feed at all).

use rpki_attacks::MisbehaviorReport;
use rpki_risk::{
    run_campaign_traced, run_downgrade_traced, standard_campaigns, DowngradeOutcome, RpTier,
};
use rpki_risk_bench::{emit_json, trace_recorder, write_trace, Recorder, Summary, SummaryTable};
use serde::Serialize;

fn seed_arg() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2013)
}

/// The experiment's JSON export: the scenario, the merged
/// misbehaviour dossier, and the campaign view.
#[derive(Debug, Serialize)]
struct Export {
    scenario: DowngradeOutcome,
    misbehavior: MisbehaviorReport,
    campaign_rrdp_downgrades: usize,
    campaign_rrdp_min_vrps: usize,
}

fn main() {
    let seed = seed_arg();
    let recorder = trace_recorder();
    let mut report = Summary::new(&format!("Stalloris downgrade ablation — seed {seed}"));

    // The scenario's rp-layer events feed the misbehaviour dossier, so
    // record them even when no --trace destination was given.
    let evidence = if recorder.is_enabled() { recorder.clone() } else { Recorder::new() };
    let scenario = run_downgrade_traced(seed, &evidence);
    let mut table = SummaryTable::new(&[
        "round",
        "truth",
        "trusting",
        "verified",
        "trusting stale",
        "downgrades",
        "pin detected",
    ]);
    for m in &scenario.rounds {
        table.row(&[
            m.round.to_string(),
            m.truth_vrps.to_string(),
            m.trusting_vrps.to_string(),
            m.verified_vrps.to_string(),
            if m.trusting_stale { "YES".into() } else { "-".to_string() },
            m.verified_downgrades.to_string(),
            m.pinned_detected.to_string(),
        ]);
    }
    let s = scenario.schedule;
    report.table(
        &format!(
            "scenario: pin @{}, whack @{}, restore @{} ({} rounds, host {})",
            s.pin_round, s.whack_round, s.restore_round, s.rounds, scenario.host
        ),
        table,
    );
    report.key_vals(
        "stale rounds (VRP set differs from at-rest truth)",
        &[
            ("trusting RRDP".to_string(), scenario.trusting_stale_rounds.to_string()),
            ("verified RRDP".to_string(), scenario.verified_stale_rounds.to_string()),
        ],
    );

    // The separations the scenario exists to show.
    assert_eq!(
        scenario.trusting_stale_rounds,
        s.restore_round - s.whack_round,
        "the trusting stance must be captive for the whole pin window"
    );
    assert_eq!(scenario.verified_stale_rounds, 0, "the verified stance must track truth");
    assert!(
        scenario.rounds.iter().any(|m| m.pinned_detected > 0),
        "the verified stance must detect the pin"
    );

    // The misbehaviour dossier: one artifact naming the host, with the
    // at-rest monitor verdicts and the transport detections side by
    // side.
    let misbehavior = MisbehaviorReport::build(&scenario.monitor_events, &evidence.events());
    let mut table = SummaryTable::new(&["host", "object alarms", "pinned", "downgrades"]);
    for h in &misbehavior.hosts {
        table.row(&[
            h.host.clone(),
            h.object_alarms.len().to_string(),
            h.pinned_detections.to_string(),
            h.downgrades.to_string(),
        ]);
    }
    report.table("misbehaviour dossier (object + transport evidence)", table);
    let accused = misbehavior.host(&scenario.host).expect("the dossier names the target host");
    assert!(accused.pinned_detections > 0, "the dossier must carry the pin detections");
    assert!(!accused.object_alarms.is_empty(), "the dossier must carry the stealthy withdrawal");

    // The same attack through the campaign harness: the rrdp tier
    // downgrades through the pin and loses no availability beyond the
    // whack itself.
    let spec = standard_campaigns()
        .into_iter()
        .find(|s| s.name == "stalloris-downgrade")
        .expect("standard campaign exists");
    let campaign = run_campaign_traced(&spec, seed, &recorder);
    let mut table = SummaryTable::new(&["tier", "VRP-rounds", "min VRPs", "rrdp downgrades"]);
    for t in &campaign.tiers {
        table.row(&[
            t.tier.label().to_owned(),
            t.totals.vrp_round_sum.to_string(),
            t.totals.min_vrps.to_string(),
            t.totals.rrdp_downgrades.to_string(),
        ]);
    }
    report.table(&format!("campaign: {} ({} rounds)", campaign.name, campaign.rounds), table);
    let rrdp = campaign.tier(RpTier::Rrdp);
    assert!(rrdp.totals.rrdp_downgrades > 0, "the rrdp tier must downgrade through the pin");

    report.note(
        "OK: trusting RRDP stays pinned on the pre-whack world for the whole\n\
         window; the freshness cross-check detects the pin, downgrades to\n\
         rsync, and tracks the at-rest truth every round.",
    );
    if recorder.is_enabled() {
        report.metrics(&recorder.metrics());
    }
    report.print();
    if let Some(path) = write_trace(&recorder) {
        println!("\nwrote {} trace events to {path}", recorder.event_count());
    }

    emit_json(
        "ablation_downgrade",
        &Export {
            scenario,
            misbehavior,
            campaign_rrdp_downgrades: rrdp.totals.rrdp_downgrades,
            campaign_rrdp_min_vrps: rrdp.totals.min_vrps,
        },
    );
}
