//! Ablation (conclusion / open problems): does a Suspenders-style
//! fail-safe actually blunt whacking?
//!
//! Replays three incidents against two relying parties — one bare, one
//! running the [`rpki_risk::suspenders`] hold-down layer — and compares
//! the victim's route validity over time:
//!
//! 1. a stealthy whack (the Figure 3 carve-out);
//! 2. a transparent revocation (legitimate authority action);
//! 3. a transient repository outage (Side Effect 6's fault family).
//!
//! The fail-safe should absorb 1 and 3 and honour 2 immediately.

use rpki_attacks::{plan_whack, CaView};
use rpki_objects::{Moment, Span};
use rpki_risk::fixtures::asn;
use rpki_risk::{ModelRpki, SuspendersConfig, SuspendersState, ValidationOptions};
use rpki_risk_bench::{emit_json, Table};
use rpki_rp::{Route, RouteValidity};
use serde::Serialize;

#[derive(Serialize)]
struct IncidentRow {
    incident: &'static str,
    bare_rp: &'static str,
    suspenders_rp: &'static str,
}

fn victim_route() -> Route {
    Route::new("63.174.16.0/20".parse().unwrap(), asn::CONTINENTAL)
}

fn state_name(v: RouteValidity) -> &'static str {
    match v {
        RouteValidity::Valid => "valid",
        RouteValidity::Invalid => "INVALID",
        RouteValidity::Unknown => "unknown",
    }
}

fn main() {
    println!("Ablation — Suspenders fail-safe vs bare relying party\n");
    let mut rows = Vec::new();

    // Incident 1: stealthy whack.
    {
        let mut w = ModelRpki::build();
        let mut s = SuspendersState::new(SuspendersConfig::default());
        s.ingest(&w.validate_direct(Moment(2)), Moment(2));
        let rc = w.sprint.issued_cert_for(w.continental.key_id()).unwrap().clone();
        let view = CaView::from_repos(&rc, &w.repos);
        let file = w.covering_roa_file();
        let plan = plan_whack(std::slice::from_ref(&view), &file).unwrap();
        plan.execute(&mut w.sprint, Moment(3)).unwrap();
        w.publish_all(Moment(3));
        let run = w.validate_direct(Moment(4));
        s.ingest(&run, Moment(4));
        let bare = run.vrp_cache().classify(victim_route());
        let fs = s.effective_cache().classify(victim_route());
        rows.push(IncidentRow {
            incident: "stealthy whack (Fig 3 carve)",
            bare_rp: state_name(bare),
            suspenders_rp: state_name(fs),
        });
        assert_ne!(fs, RouteValidity::Invalid);
        assert_eq!(fs, RouteValidity::Valid);
    }

    // Incident 2: transparent revocation.
    {
        let mut w = ModelRpki::build();
        let mut s = SuspendersState::new(SuspendersConfig::default());
        s.ingest(&w.validate_direct(Moment(2)), Moment(2));
        let serial =
            w.continental.issued_roas().find(|r| r.asn() == asn::CONTINENTAL).unwrap().serial();
        w.continental.revoke_serial(serial);
        w.publish_all(Moment(3));
        let run = w.validate_direct(Moment(4));
        s.ingest(&run, Moment(4));
        let bare = run.vrp_cache().classify(victim_route());
        let fs = s.effective_cache().classify(victim_route());
        rows.push(IncidentRow {
            incident: "transparent revocation (CRL)",
            bare_rp: state_name(bare),
            suspenders_rp: state_name(fs),
        });
        assert_eq!(bare, fs, "revocation must not be second-guessed");
    }

    // Incident 3: transient repository outage, then recovery.
    {
        let mut w = ModelRpki::build();
        let mut s = SuspendersState::new(SuspendersConfig::default());
        s.ingest(&w.validate_with(ValidationOptions::at(Moment(2))), Moment(2));
        let node = w.repos.node_of("rpki.continental.example").unwrap();
        w.net.faults.set_down(node, true);
        let run = w.validate_with(ValidationOptions::at(Moment(3)));
        s.ingest(&run, Moment(3));
        let bare = run.vrp_cache().classify(victim_route());
        let fs = s.effective_cache().classify(victim_route());
        rows.push(IncidentRow {
            incident: "repo outage (during)",
            bare_rp: state_name(bare),
            suspenders_rp: state_name(fs),
        });
        assert_eq!(fs, RouteValidity::Valid);
        // Recovery.
        w.net.faults.set_down(node, false);
        let run = w.validate_with(ValidationOptions::at(Moment(4) + Span::hours(8)));
        let events = s.ingest(&run, Moment(4) + Span::hours(8));
        assert!(events.iter().any(|e| matches!(e, rpki_risk::SuspendersEvent::Recovered(_))));
    }

    let mut table = Table::new(&["incident", "bare RP sees", "Suspenders RP sees"]);
    for r in &rows {
        table.row(&[r.incident, r.bare_rp, r.suspenders_rp]);
    }
    table.print("Victim route validity per relying-party flavour");

    println!(
        "\nOK: the fail-safe absorbs evidence-free disappearances (whacks, faults) for the \
         hold-down window while honouring transparent revocation immediately — one concrete \
         answer to the paper's 'can abuse be made more difficult?' open problem."
    );
    emit_json("suspenders_ablation", &rows);
}
