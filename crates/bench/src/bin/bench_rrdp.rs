//! RRDP transport benchmark: rsync cold walk vs digest-probe
//! incremental vs RRDP delta sync, across churn rates and tree shapes,
//! exported to `BENCH_rrdp.json`.
//!
//! The workload mirrors `bench_validation`: a synthetic CA tree
//! ([`SyntheticRpki`]) where each round dirties a fixed fraction of
//! publication points with ROA renewals. Three relying-party transports
//! then fetch the same round:
//!
//! - **cold** — a full rsync walk, every directory fetched and
//!   re-verified from scratch (the RFC 6480 baseline);
//! - **probe** — the digest-probe incremental engine over rsync: one
//!   LIST exchange confirms an unchanged directory;
//! - **rrdp** — the RRDP client state machine: a two-frame notification
//!   poll confirms an unchanged directory, dirtied directories apply
//!   hash-verified delta chains, composed with the same probe-mode
//!   incremental engine as the rsync column. Measured in the trusting
//!   configuration so the column is pure RRDP transport (the verified
//!   configuration adds exactly one rsync probe exchange per directory
//!   — the `probe` column).
//!
//! Every round, both incremental outputs are asserted byte-identical to
//! the cold walk. Frames counted per run come from the simulated
//! network, so they replay exactly; wall times are host-side minimums.
//!
//! ```sh
//! cargo run --release -p rpki-risk-bench --bin bench_rrdp
//! ```
//!
//! `--scale N` multiplies the per-CA ROA count; `--json` mirrors the
//! records to stderr; `--trace PATH` (or `BENCH_TRACE`) writes a JSONL
//! trace of one instrumented round per configuration.

use std::time::Instant;

use rpki_objects::Moment;
use rpki_repo::{RrdpClientState, SyncPolicy};
use rpki_risk::SyntheticRpki;
use rpki_risk_bench::{emit_json, scale_arg, trace_recorder, write_trace, Summary, SummaryTable};
use rpki_rp::{RrdpSource, ValidationConfig, ValidationRun, ValidationState, Validator};
use serde::Serialize;

/// One measured (tree shape, churn rate) cell.
#[derive(Debug, Serialize)]
struct Record {
    pub_points: usize,
    depth: u32,
    branching: u32,
    roas_per_ca: usize,
    churn_pct: usize,
    dirtied_per_round: usize,
    cold_ns: u128,
    probe_ns: u128,
    rrdp_ns: u128,
    cold_frames: u64,
    probe_frames: u64,
    rrdp_frames: u64,
    rrdp_speedup: f64,
    probe_speedup: f64,
    delta_syncs: u64,
    deltas_applied: u64,
    snapshot_syncs: u64,
    unchanged: u64,
    fallback_initial: u64,
    fallback_evicted: u64,
    fallback_session_reset: u64,
    fallback_chain_gap: u64,
    bridge_deltas_applied: u64,
}

/// One RRDP-transported incremental revalidation (trusting: no rsync
/// cross-probe, so the measurement is the RRDP path alone).
fn validate_rrdp(
    w: &mut SyntheticRpki,
    now: Moment,
    rrdp: &mut RrdpClientState,
    state: &mut ValidationState,
) -> ValidationRun {
    let mut source =
        RrdpSource::new(&mut w.net, &w.repos, w.rp_node, rrdp, SyncPolicy::default()).trusting();
    Validator::new(ValidationConfig::at(now)).run_incremental(
        &mut source,
        std::slice::from_ref(&w.tal),
        state,
    )
}

/// Minimum wall time of `iters` runs of `f` (after one warmup run).
fn time_min<F: FnMut()>(iters: usize, mut f: F) -> u128 {
    f();
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .min()
        .expect("at least one iteration")
}

fn main() {
    let scale = scale_arg().max(1);
    let mut report = Summary::new(&format!("RRDP transport benchmark (scale {scale})"));
    let rec = trace_recorder();

    // Same sweep as bench_validation: 21, 40, and 156 publication
    // points.
    let shapes = [(2u32, 4u32, 12usize), (3, 3, 12), (3, 5, 12)];
    let churns = [1usize, 10, 50, 100];
    let rounds: u64 = if cfg!(debug_assertions) { 1 } else { 3 };

    let mut records: Vec<Record> = Vec::new();
    for (depth, branching, roas_base) in shapes {
        let roas_per_ca = roas_base * scale;
        for churn_pct in churns {
            let mut w = SyntheticRpki::build_seeded(7, depth, branching, roas_per_ca);
            let mut probe_state = ValidationState::probe();
            let mut rrdp_state = RrdpClientState::new();
            // Probe-mode memoization, like the rsync column: the RRDP
            // notification poll is the probe (two frames), delta sync
            // only loads dirtied directories.
            let mut rrdp_validation = ValidationState::probe();
            // Warm-up: fill the probe memo and snapshot every
            // publication point into the RRDP client state.
            w.validate_incremental(Moment(2), &mut probe_state);
            validate_rrdp(&mut w, Moment(2), &mut rrdp_state, &mut rrdp_validation);

            let mut cold_ns = u128::MAX;
            let mut probe_ns = u128::MAX;
            let mut rrdp_ns = u128::MAX;
            let mut cold_frames = 0u64;
            let mut probe_frames = 0u64;
            let mut rrdp_frames = 0u64;
            let mut dirtied = 0;
            for round in 0..rounds {
                let mutate_at = Moment(10 + round * 60);
                let measure_at = Moment(40 + round * 60);
                dirtied = w.churn(churn_pct, mutate_at);

                let sent = w.net.stats().sent;
                cold_ns = cold_ns.min(time_min(3, || {
                    w.validate_cold(measure_at);
                }));
                // time_min ran 4 identical stateless walks.
                cold_frames = (w.net.stats().sent - sent) / 4;

                // The incremental runs re-warm their state, so each
                // round's single timed run measures the steady state.
                let sent = w.net.stats().sent;
                let start = Instant::now();
                let probe_run = w.validate_incremental(measure_at, &mut probe_state);
                probe_ns = probe_ns.min(start.elapsed().as_nanos());
                probe_frames = w.net.stats().sent - sent;

                let sent = w.net.stats().sent;
                let start = Instant::now();
                let rrdp_run =
                    validate_rrdp(&mut w, measure_at, &mut rrdp_state, &mut rrdp_validation);
                rrdp_ns = rrdp_ns.min(start.elapsed().as_nanos());
                rrdp_frames = w.net.stats().sent - sent;

                let cold = w.validate_cold(measure_at);
                assert_eq!(probe_run, cold, "probe output diverged from the cold walk");
                assert_eq!(rrdp_run, cold, "RRDP output diverged from the cold walk");
            }

            // One extra instrumented round so the trace artifact shows
            // the RRDP sync events and counters per cell.
            if rec.is_enabled() {
                w.net.set_recorder(rec.clone());
                let at = Moment(10 + rounds * 60);
                w.churn(churn_pct, at);
                validate_rrdp(&mut w, Moment(at.0 + 30), &mut rrdp_state, &mut rrdp_validation);
                w.net.set_recorder(rpki_risk_bench::Recorder::disabled());
            }

            let stats = rrdp_state.stats();
            // Every snapshot sync has exactly one recorded cause.
            assert_eq!(
                stats.fallback_initial
                    + stats.fallback_evicted
                    + stats.fallback_session_reset
                    + stats.fallback_chain_gap,
                stats.snapshot_syncs,
                "fallback causes must partition the snapshot syncs"
            );
            records.push(Record {
                pub_points: w.publication_points(),
                depth,
                branching,
                roas_per_ca,
                churn_pct,
                dirtied_per_round: dirtied,
                cold_ns,
                probe_ns,
                rrdp_ns,
                cold_frames,
                probe_frames,
                rrdp_frames,
                rrdp_speedup: cold_ns as f64 / rrdp_ns as f64,
                probe_speedup: cold_ns as f64 / probe_ns as f64,
                delta_syncs: stats.delta_syncs,
                deltas_applied: stats.deltas_applied,
                snapshot_syncs: stats.snapshot_syncs,
                unchanged: stats.unchanged,
                fallback_initial: stats.fallback_initial,
                fallback_evicted: stats.fallback_evicted,
                fallback_session_reset: stats.fallback_session_reset,
                fallback_chain_gap: stats.fallback_chain_gap,
                bridge_deltas_applied: stats.bridge_deltas_applied,
            });
        }
    }

    let mut out = SummaryTable::new(&[
        "points",
        "shape",
        "churn",
        "dirtied",
        "cold (ms)",
        "probe (ms)",
        "rrdp (ms)",
        "frames c/p/r",
        "rrdp speedup",
        "deltas/snaps",
    ]);
    for r in &records {
        out.row(&[
            r.pub_points.to_string(),
            format!("d{} b{} r{}", r.depth, r.branching, r.roas_per_ca),
            format!("{}%", r.churn_pct),
            r.dirtied_per_round.to_string(),
            format!("{:.3}", r.cold_ns as f64 / 1e6),
            format!("{:.3}", r.probe_ns as f64 / 1e6),
            format!("{:.3}", r.rrdp_ns as f64 / 1e6),
            format!("{}/{}/{}", r.cold_frames, r.probe_frames, r.rrdp_frames),
            format!("{:.1}x", r.rrdp_speedup),
            format!("{}/{}", r.delta_syncs, r.snapshot_syncs),
        ]);
    }
    report.table("rsync cold walk vs digest probe vs RRDP delta sync", out);

    let largest = records.iter().map(|r| r.pub_points).max().expect("records");
    let floor_speedup = records
        .iter()
        .filter(|r| r.pub_points == largest && r.churn_pct <= 10)
        .map(|r| r.rrdp_speedup)
        .fold(f64::INFINITY, f64::min);
    report.key_vals(
        "targets",
        &[(
            format!("minimum RRDP speedup at <=10% churn on the largest tree ({largest} points)"),
            format!("{floor_speedup:.1}x"),
        )],
    );
    if cfg!(debug_assertions) {
        report.note("(debug build — speedup floor not enforced; run with --release)");
    } else if floor_speedup >= 4.0 {
        report.note("OK: >= 4x over the cold walk at <=10% churn on the largest tree.");
    }
    report.print();

    let json = serde_json::to_string(&records).expect("serialise records");
    std::fs::write("BENCH_rrdp.json", format!("{json}\n")).expect("write BENCH_rrdp.json");
    println!("\nwrote BENCH_rrdp.json ({} records)", records.len());
    if let Some(path) = write_trace(&rec) {
        println!("wrote trace to {path}");
    }
    emit_json("bench_rrdp", &records);
    // Enforced last so a regressed run still reports and exports the
    // numbers that explain it.
    assert!(
        cfg!(debug_assertions) || floor_speedup >= 4.0,
        "RRDP delta sync regressed below the 4x floor at <=10% churn ({floor_speedup:.2}x)"
    );
}
