//! Ablation: the unsafe-VRP policy, stance by stance.
//!
//! An *unsafe VRP* (the term borrowed from routinator's
//! `--unsafe-vrps` option) is a validated payload whose prefix
//! overlaps the resources of a CA the walk rejected. The danger runs
//! both ways: under `accept` a manipulator who gets a victim's CA
//! rejected leaves covering ROAs free to invalidate the victim's
//! announcements, while under `reject` the same manipulator can
//! *suppress* legitimate surviving VRPs just by publishing a rejected
//! over-claimer that overlaps them.
//!
//! The experiment runs the `adversarial-overclaim` campaign — the
//! authority publishes a self-signed child certificate claiming
//! `0.0.0.0/0`, which strict validation rejects — under all three
//! policies and all five relying-party tiers, then folds the final
//! round's rejection evidence into the per-host misbehaviour dossier.
//! Expected ordering, per tier: `accept` and `warn` keep identical VRP
//! availability (warn only annotates), `reject` can only lose VRPs —
//! and during the fault window it loses *everything* the over-claimer
//! overlaps, which for `0.0.0.0/0` is the whole validated set.

use rpki_attacks::{CorpusKind, MisbehaviorReport};
use rpki_objects::Moment;
use rpki_risk::{run_campaign, CampaignSpec, FaultKind, FaultWindow, ModelRpki, RpTier};
use rpki_risk_bench::{emit_json, Summary, SummaryTable};
use rpki_rp::UnsafeVrpPolicy;
use serde::Serialize;

fn seed_arg() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2013)
}

/// One (policy, tier) row of the export.
#[derive(Debug, Serialize)]
struct Record {
    policy: String,
    tier: String,
    vrp_round_sum: usize,
    min_vrps: usize,
    unsafe_vrp_rounds: usize,
    rejected_ca_rounds: usize,
    invalid_flips: usize,
    unknown_flips: usize,
}

fn policy_label(policy: UnsafeVrpPolicy) -> &'static str {
    match policy {
        UnsafeVrpPolicy::Accept => "accept",
        UnsafeVrpPolicy::Warn => "warn",
        UnsafeVrpPolicy::Reject => "reject",
    }
}

/// The campaign: Continental publishes a rejected over-claimer for
/// rounds 3..7, healing with an honest snapshot afterwards.
fn overclaim_campaign() -> CampaignSpec {
    CampaignSpec {
        name: "adversarial-overclaim".to_owned(),
        unsafe_vrps: UnsafeVrpPolicy::Accept,
        churn: None,
        rounds: 10,
        windows: vec![FaultWindow {
            host: "rpki.continental.example".to_owned(),
            kind: FaultKind::AdversarialPublish { kind: CorpusKind::ResourceOverclaim },
            from: 3,
            to: 7,
        }],
    }
}

fn main() {
    let seed = seed_arg();
    let mut report = Summary::new(&format!("Unsafe-VRP policy ablation — seed {seed}"));
    let policies = [UnsafeVrpPolicy::Accept, UnsafeVrpPolicy::Warn, UnsafeVrpPolicy::Reject];

    let mut records: Vec<Record> = Vec::new();
    let mut table = SummaryTable::new(&[
        "policy",
        "tier",
        "VRP-rounds",
        "min VRPs",
        "unsafe-VRP rounds",
        "rejected-CA rounds",
        "invalid flips",
        "unknown flips",
    ]);
    for policy in policies {
        let spec = overclaim_campaign().with_unsafe_policy(policy);
        let outcome = run_campaign(&spec, seed);
        for t in &outcome.tiers {
            table.row(&[
                policy_label(policy).to_owned(),
                t.tier.label().to_owned(),
                t.totals.vrp_round_sum.to_string(),
                t.totals.min_vrps.to_string(),
                t.totals.unsafe_vrp_rounds.to_string(),
                t.totals.rejected_ca_rounds.to_string(),
                t.totals.invalid_flips.to_string(),
                t.totals.unknown_flips.to_string(),
            ]);
            records.push(Record {
                policy: policy_label(policy).to_owned(),
                tier: t.tier.label().to_owned(),
                vrp_round_sum: t.totals.vrp_round_sum,
                min_vrps: t.totals.min_vrps,
                unsafe_vrp_rounds: t.totals.unsafe_vrp_rounds,
                rejected_ca_rounds: t.totals.rejected_ca_rounds,
                invalid_flips: t.totals.invalid_flips,
                unknown_flips: t.totals.unknown_flips,
            });
        }
    }
    report.table("adversarial-overclaim campaign, policy x tier", table);

    // The separations the experiment exists to show, per tier.
    for tier in RpTier::ALL {
        let of = |policy: UnsafeVrpPolicy| {
            records
                .iter()
                .find(|r| r.policy == policy_label(policy) && r.tier == tier.label())
                .expect("record exists")
        };
        let (accept, warn, reject) =
            (of(UnsafeVrpPolicy::Accept), of(UnsafeVrpPolicy::Warn), of(UnsafeVrpPolicy::Reject));
        assert_eq!(
            accept.vrp_round_sum,
            warn.vrp_round_sum,
            "{}: warn only annotates, availability must match accept",
            tier.label()
        );
        assert!(
            reject.vrp_round_sum <= warn.vrp_round_sum,
            "{}: reject can only lose VRPs",
            tier.label()
        );
        assert_eq!(accept.unsafe_vrp_rounds, 0, "accept skips the analysis");
        assert!(warn.unsafe_vrp_rounds > 0, "{}: warn must flag the overlap", tier.label());
        assert!(warn.rejected_ca_rounds > 0, "{}: the over-claimer is rejected", tier.label());
    }
    // The suppression story needs at least one tier actually starved
    // under reject while warn kept everything.
    let starved = RpTier::ALL.iter().any(|tier| {
        let reject = records
            .iter()
            .find(|r| r.policy == "reject" && r.tier == tier.label())
            .expect("record exists");
        reject.min_vrps == 0
    });
    assert!(starved, "reject under a 0.0.0.0/0 over-claimer must empty some tier's round");

    // The per-host dossier: one direct poisoned run, rejection evidence
    // folded in next to the (empty) object/transport evidence.
    let mut world = ModelRpki::build();
    let now = Moment(world.net.now() + 1);
    world.poison_host("rpki.continental.example", CorpusKind::ResourceOverclaim, seed, now);
    let run = world
        .validate_with(rpki_risk::ValidationOptions::at(now).unsafe_vrps(UnsafeVrpPolicy::Warn));
    let mut dossier = MisbehaviorReport::build(&[], &[]);
    dossier.attach_validation(&run);
    let accused =
        dossier.host("rpki.continental.example").expect("the dossier names the poisoned host");
    assert!(!accused.rejected_cas.is_empty(), "the dossier carries the rejected over-claimer");
    assert!(!accused.unsafe_vrps.is_empty(), "the dossier lists the overlapped VRPs");
    let mut table = SummaryTable::new(&["host", "rejected CAs", "unsafe VRPs", "summary"]);
    for h in &dossier.hosts {
        table.row(&[
            h.host.clone(),
            h.rejected_cas.len().to_string(),
            h.unsafe_vrps.len().to_string(),
            h.summary_line(),
        ]);
    }
    report.table("misbehaviour dossier (validation evidence attached)", table);

    report.note(
        "OK: warn matches accept's availability while naming every overlapped\n\
         VRP; reject lets the rejected over-claimer suppress the entire\n\
         surviving set — the parent-driven suppression the policy ablation\n\
         exists to expose.",
    );
    report.print();

    let json = serde_json::to_string(&records).expect("serialise records");
    std::fs::write("BENCH_unsafe_vrp.json", format!("{json}\n"))
        .expect("write BENCH_unsafe_vrp.json");
    println!("\nwrote BENCH_unsafe_vrp.json ({} records)", records.len());
    emit_json("ablation_unsafe_vrp", &records);
}
