//! Fetch-scheduler benchmark: notification-cadence scheduling vs the
//! every-run full sweep, across tree shapes and churn rates, exported
//! to `BENCH_scheduler.json`.
//!
//! The workload is the `bench_scale` tree family — 156, 993, and 4971
//! publication points — with a rotating fraction of points renewing
//! their ROAs each round (VRP content never changes, so every
//! configuration must agree on the validated set even while serving a
//! scheduled snapshot). Two relying parties fetch the same rounds over
//! trusting RRDP with probe-mode incremental validation:
//!
//! - **sweep** — the full-sweep baseline: every publication point gets
//!   a notification poll every round, dirtied points delta-sync (this
//!   is the strongest pre-scheduler configuration, `bench_rrdp`'s best
//!   column);
//! - **scheduled** — the same stack under a [`ScheduledSource`]: each
//!   point's refresh deadline follows its observed change cadence
//!   (EWMA, clamped, jittered), so a quiet point costs *zero frames*
//!   until it comes due.
//!
//! Rounds are spaced one epoch apart, the schedule clamps span
//! 1–16 epochs, and the first `WARMUP` rounds let the per-point
//! intervals decay onto their cadence before frames are counted. A
//! separate phase pins the correctness anchor: under
//! [`SchedulePlan::degenerate`] the scheduled stack is byte-identical
//! to the sweep — same output, same frame count, every round.
//!
//! ```sh
//! cargo run --release -p rpki-risk-bench --bin bench_scheduler
//! ```
//!
//! `--scale N` multiplies the per-CA ROA count; `--json` mirrors the
//! records to stderr; `--trace PATH` (or `BENCH_TRACE`) writes a JSONL
//! trace of one instrumented scheduled round.

use std::time::Instant;

use rpki_objects::{Moment, Span};
use rpki_repo::{RrdpClientState, SyncPolicy};
use rpki_risk::SyntheticRpki;
use rpki_risk_bench::{emit_json, scale_arg, trace_recorder, write_trace, Summary, SummaryTable};
use rpki_rp::{
    RrdpSource, SchedulePlan, ScheduledSource, SchedulerState, ValidationConfig, ValidationRun,
    ValidationState, Validator,
};
use serde::Serialize;

/// Seconds between validation rounds. Large enough to dominate the
/// sim-seconds a full sweep itself consumes (10s/frame latency over
/// thousands of polls), so "due every round" and "due every k rounds"
/// stay distinguishable.
const EPOCH: u64 = 150_000;

/// One measured (tree shape, churn rate) cell.
#[derive(Debug, Serialize)]
struct Record {
    pub_points: usize,
    depth: u32,
    branching: u32,
    roas_per_ca: usize,
    churn_pct: usize,
    rounds: usize,
    sweep_frames: u64,
    scheduled_frames: u64,
    sweep_ns: u128,
    scheduled_ns: u128,
    frame_reduction: f64,
    due: u64,
    not_due: u64,
    fetched: u64,
    polled: u64,
    vrps: usize,
}

/// The bench schedule: due at least once per epoch, quiet points decay
/// to one visit per `max_mult` epochs. Every point is first contacted
/// on the same warmup round, so the jitter spans the whole refresh
/// wheel — without it the cohort stays phase-locked and comes due in
/// lockstep waves, and the measured rounds alias against the wave
/// phase instead of sampling the steady state. No budgets — this bench
/// isolates pure cadence savings.
fn bench_plan(max_mult: u64) -> SchedulePlan {
    SchedulePlan {
        min_refresh: EPOCH,
        max_refresh: max_mult * EPOCH,
        jitter: max_mult * EPOCH,
        ..SchedulePlan::default()
    }
}

/// Extends every CA's manifest/CRL window to a year and republishes:
/// the schedule deliberately leaves quiet points unfetched for many
/// epochs of simulated time, and the default one-day manifest window
/// would expire under a multi-week bench timeline.
fn stretch_manifests(w: &mut SyntheticRpki) {
    for ca in &mut w.cas {
        ca.set_refresh_interval(Span::days(365));
    }
    w.publish_all(Moment(w.net.now()));
}

/// One full-sweep round: trusting RRDP, probe-mode incremental.
fn validate_sweep(
    w: &mut SyntheticRpki,
    rrdp: &mut RrdpClientState,
    inc: &mut ValidationState,
) -> ValidationRun {
    let now = Moment(w.net.now());
    let mut source =
        RrdpSource::new(&mut w.net, &w.repos, w.rp_node, rrdp, SyncPolicy::default()).trusting();
    Validator::new(ValidationConfig::at(now)).run_incremental(
        &mut source,
        std::slice::from_ref(&w.tal),
        inc,
    )
}

/// One scheduled round: the same stack under the fetch scheduler.
fn validate_scheduled(
    w: &mut SyntheticRpki,
    rrdp: &mut RrdpClientState,
    inc: &mut ValidationState,
    sched: &mut SchedulerState,
    plan: SchedulePlan,
) -> ValidationRun {
    let now = Moment(w.net.now());
    let inner =
        RrdpSource::new(&mut w.net, &w.repos, w.rp_node, rrdp, SyncPolicy::default()).trusting();
    let mut source = ScheduledSource::new(inner, sched, plan);
    Validator::new(ValidationConfig::at(now)).run_incremental(
        &mut source,
        std::slice::from_ref(&w.tal),
        inc,
    )
}

fn main() {
    let scale = scale_arg().max(1);
    let mut report = Summary::new(&format!("Fetch-scheduler benchmark (scale {scale})"));
    let rec = trace_recorder();

    let roas_per_ca = 4 * scale;
    // Debug builds shrink the sweep so `cargo test`-adjacent smoke runs
    // stay fast; the frame-reduction floor is release-only anyway.
    let debug = cfg!(debug_assertions);
    let shapes: &[(u32, u32)] = if debug { &[(3, 5)] } else { &[(3, 5), (2, 31), (2, 70)] };
    // Warmup must outlast the interval ratchet: a point only doubles
    // past a rung on an unchanged confirm, so under churn the climb to
    // the ceiling takes several refresh wheels.
    let (warmup, measured, max_mult): (usize, usize, u64) =
        if debug { (6, 2, 4) } else { (24, 6, 16) };
    let churns = [1usize, 10];
    let plan = bench_plan(max_mult);

    let mut records: Vec<Record> = Vec::new();
    for &(depth, branching) in shapes {
        for churn_pct in churns {
            // Two worlds, same seed: the sweep baseline and the
            // scheduled RP never share a network, so frame counts are
            // per-configuration exact.
            let mut wb = SyntheticRpki::build_seeded(7, depth, branching, roas_per_ca);
            let mut ws = SyntheticRpki::build_seeded(7, depth, branching, roas_per_ca);
            stretch_manifests(&mut wb);
            stretch_manifests(&mut ws);
            let mut rrdp_b = RrdpClientState::new();
            let mut rrdp_s = RrdpClientState::new();
            let mut inc_b = ValidationState::probe();
            let mut inc_s = ValidationState::probe();
            let mut sched = SchedulerState::new();

            // Warm-up: first contact snapshots everything, then the
            // per-point intervals decay onto the churn cadence.
            for _ in 0..warmup {
                let t = wb.net.now() + EPOCH;
                wb.net.advance_to(t);
                let t = ws.net.now() + EPOCH;
                ws.net.advance_to(t);
                wb.churn(churn_pct, Moment(wb.net.now()));
                ws.churn(churn_pct, Moment(ws.net.now()));
                validate_sweep(&mut wb, &mut rrdp_b, &mut inc_b);
                validate_scheduled(&mut ws, &mut rrdp_s, &mut inc_s, &mut sched, plan);
            }

            let stats_before = sched.stats();
            let mut sweep_frames = 0u64;
            let mut scheduled_frames = 0u64;
            let mut sweep_ns = u128::MAX;
            let mut scheduled_ns = u128::MAX;
            let mut vrps = 0;
            for _ in 0..measured {
                let t = wb.net.now() + EPOCH;
                wb.net.advance_to(t);
                let t = ws.net.now() + EPOCH;
                ws.net.advance_to(t);
                wb.churn(churn_pct, Moment(wb.net.now()));
                ws.churn(churn_pct, Moment(ws.net.now()));

                let sent = wb.net.stats().sent;
                let start = Instant::now();
                let sweep_run = validate_sweep(&mut wb, &mut rrdp_b, &mut inc_b);
                sweep_ns = sweep_ns.min(start.elapsed().as_nanos());
                sweep_frames += wb.net.stats().sent - sent;

                let sent = ws.net.stats().sent;
                let start = Instant::now();
                let sched_run =
                    validate_scheduled(&mut ws, &mut rrdp_s, &mut inc_s, &mut sched, plan);
                scheduled_ns = scheduled_ns.min(start.elapsed().as_nanos());
                scheduled_frames += ws.net.stats().sent - sent;

                // Renewals never move a VRP, so even points served from
                // a scheduled snapshot must agree on the validated set.
                assert_eq!(
                    sched_run.vrps, sweep_run.vrps,
                    "scheduled VRP set diverged from the full sweep"
                );
                vrps = sched_run.vrps.len();
            }
            let stats = sched.stats();

            records.push(Record {
                pub_points: ws.publication_points(),
                depth,
                branching,
                roas_per_ca,
                churn_pct,
                rounds: measured,
                sweep_frames,
                scheduled_frames,
                sweep_ns,
                scheduled_ns,
                frame_reduction: sweep_frames as f64 / scheduled_frames.max(1) as f64,
                due: stats.due - stats_before.due,
                not_due: stats.not_due - stats_before.not_due,
                fetched: stats.fetched - stats_before.fetched,
                polled: stats.polled - stats_before.polled,
                vrps,
            });
        }
    }

    // Correctness anchor: the degenerate plan delegates everything, so
    // the scheduled stack is byte-identical to the sweep — same runs,
    // same wire traffic — for several churned rounds.
    {
        let mut wb = SyntheticRpki::build_seeded(11, 3, 5, roas_per_ca);
        let mut wd = SyntheticRpki::build_seeded(11, 3, 5, roas_per_ca);
        stretch_manifests(&mut wb);
        stretch_manifests(&mut wd);
        let mut rrdp_b = RrdpClientState::new();
        let mut rrdp_d = RrdpClientState::new();
        let mut inc_b = ValidationState::probe();
        let mut inc_d = ValidationState::probe();
        let mut sched = SchedulerState::new();
        for round in 0..3 {
            let t = wb.net.now() + EPOCH;
            wb.net.advance_to(t);
            wd.net.advance_to(t);
            wb.churn(10, Moment(wb.net.now()));
            wd.churn(10, Moment(wd.net.now()));
            let a = validate_sweep(&mut wb, &mut rrdp_b, &mut inc_b);
            let b = validate_scheduled(
                &mut wd,
                &mut rrdp_d,
                &mut inc_d,
                &mut sched,
                SchedulePlan::degenerate(),
            );
            assert_eq!(a, b, "degenerate round {round}: output diverged from the sweep");
            assert_eq!(
                wb.net.stats().sent,
                wd.net.stats().sent,
                "degenerate round {round}: wire traffic diverged from the sweep"
            );
        }
        report.note("degenerate plan verified byte-identical to the sweep (3 rounds, 10% churn)");
    }

    // One extra instrumented scheduled round for the trace artifact.
    if rec.is_enabled() {
        let mut w = SyntheticRpki::build_seeded(7, 3, 5, roas_per_ca);
        stretch_manifests(&mut w);
        let mut rrdp = RrdpClientState::new();
        let mut inc = ValidationState::probe();
        let mut sched = SchedulerState::new();
        validate_scheduled(&mut w, &mut rrdp, &mut inc, &mut sched, plan);
        w.net.set_recorder(rec.clone());
        sched.set_recorder(rec.clone());
        let t = w.net.now() + EPOCH;
        w.net.advance_to(t);
        w.churn(10, Moment(w.net.now()));
        validate_scheduled(&mut w, &mut rrdp, &mut inc, &mut sched, plan);
        w.net.set_recorder(rpki_risk_bench::Recorder::disabled());
    }

    let mut out = SummaryTable::new(&[
        "points",
        "shape",
        "churn",
        "sweep (ms)",
        "sched (ms)",
        "frames sweep/sched",
        "reduction",
        "due/not-due",
        "fetch/poll",
    ]);
    for r in &records {
        out.row(&[
            r.pub_points.to_string(),
            format!("d{} b{} r{}", r.depth, r.branching, r.roas_per_ca),
            format!("{}%", r.churn_pct),
            format!("{:.3}", r.sweep_ns as f64 / 1e6),
            format!("{:.3}", r.scheduled_ns as f64 / 1e6),
            format!("{}/{}", r.sweep_frames, r.scheduled_frames),
            format!("{:.1}x", r.frame_reduction),
            format!("{}/{}", r.due, r.not_due),
            format!("{}/{}", r.fetched, r.polled),
        ]);
    }
    report.table("notification-cadence scheduler vs full-sweep baseline", out);

    let floor = records
        .iter()
        .filter(|r| r.pub_points >= 993 && r.churn_pct <= 10)
        .map(|r| r.frame_reduction)
        .fold(f64::INFINITY, f64::min);
    report.key_vals(
        "targets",
        &[(
            "minimum frame reduction at <=10% churn on >=993 points".to_owned(),
            if floor.is_finite() { format!("{floor:.1}x") } else { "n/a (debug sweep)".to_owned() },
        )],
    );
    if cfg!(debug_assertions) {
        report.note("(debug build — frame-reduction floor not enforced; run with --release)");
    } else if floor >= 5.0 {
        report.note("OK: >= 5x frame reduction over the full sweep at <=10% churn.");
    }
    report.print();

    let json = serde_json::to_string(&records).expect("serialise records");
    std::fs::write("BENCH_scheduler.json", format!("{json}\n"))
        .expect("write BENCH_scheduler.json");
    println!("\nwrote BENCH_scheduler.json ({} records)", records.len());
    if let Some(path) = write_trace(&rec) {
        println!("wrote trace to {path}");
    }
    emit_json("bench_scheduler", &records);
    // Enforced last so a regressed run still reports and exports the
    // numbers that explain it.
    assert!(
        cfg!(debug_assertions) || floor >= 5.0,
        "scheduler regressed below the 5x frame-reduction floor at <=10% churn ({floor:.2}x)"
    );
}
