//! Ablation (Section 3.1): collateral damage and detection surface of
//! every whacking strategy, by target depth.
//!
//! | strategy            | collateral | CRL trace | suspicious reissues |
//! |---------------------|------------|-----------|---------------------|
//! | revoke child RC     | subtree    | yes       | 0                   |
//! | stealthy withdraw*  | none       | no        | 0                   |
//! | targeted carve-out  | none       | no        | 0                   |
//! | make-before-break   | none       | no        | ≥ 1                 |
//!
//! *withdraw requires the manipulator to BE the issuer; the others work
//! from any ancestor.

use ipres::Asn;
use rpki_attacks::{damage_between, plan_whack, probes_for, CaView};
use rpki_objects::Moment;
use rpki_risk::fixtures::asn;
use rpki_risk::ModelRpki;
use rpki_risk_bench::{emit_json, Table};
use serde::Serialize;

#[derive(Serialize)]
struct StrategyRow {
    strategy: String,
    target: String,
    collateral_vrps: usize,
    crl_trace: bool,
    suspicious_reissues: usize,
}

fn measure(
    w: &mut ModelRpki,
    before: &[rpki_rp::Vrp],
    target_asn: Asn,
) -> (usize, Vec<rpki_rp::Vrp>) {
    w.publish_all(Moment(3));
    let after = w.validate_direct(Moment(4)).vrps;
    let damage = damage_between(before, &after, &probes_for(before));
    let collateral = damage.routes_degraded.iter().filter(|(r, _)| r.origin != target_asn).count();
    (collateral, after)
}

fn main() {
    println!("Ablation — whacking strategies vs collateral and detectability");
    let mut rows: Vec<StrategyRow> = Vec::new();

    // Strategy 1: revoke Continental's RC outright (Side Effect 1).
    {
        let mut w = ModelRpki::build();
        let before = w.validate_direct(Moment(2)).vrps;
        let serial =
            w.sprint.issued_cert_for(w.continental.key_id()).expect("issued").data().serial;
        w.sprint.revoke_serial(serial);
        let (collateral, _) = measure(&mut w, &before, asn::CONTINENTAL);
        rows.push(StrategyRow {
            strategy: "revoke child RC".to_owned(),
            target: "(63.174.16.0/20, AS17054)".to_owned(),
            collateral_vrps: collateral,
            crl_trace: true,
            suspicious_reissues: 0,
        });
    }

    // Strategy 2: stealthy withdraw by the issuer itself (Side Effect
    // 2 — requires compromising/coercing Continental, not Sprint).
    {
        let mut w = ModelRpki::build();
        let before = w.validate_direct(Moment(2)).vrps;
        let file = w.covering_roa_file();
        w.continental.withdraw(&file).expect("present");
        let (collateral, _) = measure(&mut w, &before, asn::CONTINENTAL);
        rows.push(StrategyRow {
            strategy: "stealthy withdraw (by issuer)".to_owned(),
            target: "(63.174.16.0/20, AS17054)".to_owned(),
            collateral_vrps: collateral,
            crl_trace: false,
            suspicious_reissues: 0,
        });
    }

    // Strategy 3: targeted carve-out from the grandparent (Side
    // Effect 3).
    {
        let mut w = ModelRpki::build();
        let before = w.validate_direct(Moment(2)).vrps;
        let rc = w.sprint.issued_cert_for(w.continental.key_id()).expect("issued");
        let view = CaView::from_repos(rc, &w.repos);
        let file = w.covering_roa_file();
        let plan = plan_whack(std::slice::from_ref(&view), &file).expect("plan");
        plan.execute(&mut w.sprint, Moment(3)).expect("execute");
        let (collateral, _) = measure(&mut w, &before, asn::CONTINENTAL);
        rows.push(StrategyRow {
            strategy: "targeted carve-out (grandparent)".to_owned(),
            target: "(63.174.16.0/20, AS17054)".to_owned(),
            collateral_vrps: collateral,
            crl_trace: false,
            suspicious_reissues: plan.reissued,
        });
    }

    // Strategy 4: make-before-break against the /22 (Figure 3).
    {
        let mut w = ModelRpki::build();
        let before = w.validate_direct(Moment(2)).vrps;
        let rc = w.sprint.issued_cert_for(w.continental.key_id()).expect("issued");
        let view = CaView::from_repos(rc, &w.repos);
        let file = w.customer_roa_file();
        let plan = plan_whack(std::slice::from_ref(&view), &file).expect("plan");
        plan.execute(&mut w.sprint, Moment(3)).expect("execute");
        let (collateral, _) = measure(&mut w, &before, asn::CUSTOMER_A);
        rows.push(StrategyRow {
            strategy: "make-before-break (grandparent)".to_owned(),
            target: "(63.174.16.0/22, AS7341)".to_owned(),
            collateral_vrps: collateral,
            crl_trace: false,
            suspicious_reissues: plan.reissued,
        });
    }

    // Strategy 5: great-grandchild whack from ARIN (Side Effect 4).
    {
        let mut w = ModelRpki::build();
        let before = w.validate_direct(Moment(2)).vrps;
        let sprint_rc = w.arin.issued_cert_for(w.sprint.key_id()).expect("issued").clone();
        let sprint_view = CaView::from_repos(&sprint_rc, &w.repos);
        let continental_rc = w.sprint.issued_cert_for(w.continental.key_id()).expect("issued");
        let continental_view = CaView::from_repos(continental_rc, &w.repos);
        let file = w.covering_roa_file();
        let chain = vec![sprint_view, continental_view];
        let plan = plan_whack(&chain, &file).expect("plan");
        plan.execute(&mut w.arin, Moment(3)).expect("execute");
        let (collateral, _) = measure(&mut w, &before, asn::CONTINENTAL);
        rows.push(StrategyRow {
            strategy: "great-grandchild whack (ARIN)".to_owned(),
            target: "(63.174.16.0/20, AS17054)".to_owned(),
            collateral_vrps: collateral,
            crl_trace: false,
            suspicious_reissues: plan.reissued,
        });
    }

    let mut table = Table::new(&[
        "strategy",
        "target",
        "collateral routes degraded",
        "CRL trace",
        "suspicious reissues",
    ]);
    for r in &rows {
        table.row(&[
            r.strategy.clone(),
            r.target.clone(),
            r.collateral_vrps.to_string(),
            r.crl_trace.to_string(),
            r.suspicious_reissues.to_string(),
        ]);
    }
    table.print("Whacking strategies");

    // Shape checks: revocation is the only collateral-heavy strategy;
    // detectability (reissues) grows with depth.
    assert_eq!(rows[0].collateral_vrps, 4, "revoking the RC whacks four extra ROAs");
    assert!(rows[2].collateral_vrps == 0 && rows[2].suspicious_reissues == 0);
    assert!(rows[3].suspicious_reissues >= 1);
    assert!(rows[4].suspicious_reissues >= 1);
    println!(
        "\nOK: targeted whacking trades the collateral (and outcry) of revocation for a \
         detection surface of suspicious reissues — Section 3.1's economy, quantified."
    );

    emit_json("whack_strategies", &rows);
}
