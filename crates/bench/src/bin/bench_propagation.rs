//! Propagation-engine benchmark: worklist vs the full-scan reference,
//! at growing topology sizes, exported to `BENCH_propagation.json`.
//!
//! The Criterion bench (`benches/routing.rs`) tracks the worklist
//! engine's absolute numbers over time; this binary is the comparative
//! harness behind EXPERIMENTS.md — it times both engines on identical
//! inputs and records the speedup, the round counts, and the validity
//! memo's hit rate.
//!
//! ```sh
//! cargo run --release -p rpki-risk-bench --bin bench_propagation
//! ```
//!
//! `--scale N` multiplies every topology size; `--json` additionally
//! mirrors the records to stderr like the other harness binaries.

use std::time::Instant;

use bgp_sim::{propagate_with_stats, reference, RpkiPolicy};
use rpki_risk_bench::{emit_json, scale_arg, Recorder, Summary, SummaryTable};
use rpki_rp::{Vrp, VrpCache};
use serde::Serialize;
use topogen::{Config, SyntheticInternet};

/// One measured configuration.
#[derive(Debug, Serialize)]
struct Record {
    ases: usize,
    prefixes: usize,
    policy: String,
    worklist_ns: u128,
    reference_ns: u128,
    speedup: f64,
    worklist_rounds: usize,
    reference_rounds: usize,
    route_updates: usize,
    pairs_evaluated: usize,
    memo_hits: usize,
    memo_misses: usize,
    peak_worklist: usize,
}

/// Minimum wall time of `iters` runs of `f` (after one warmup run).
fn time_min<F: FnMut()>(iters: usize, mut f: F) -> u128 {
    f();
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .min()
        .expect("at least one iteration")
}

fn main() {
    // `--scale 0` would generate an empty world and a NaN speedup.
    let scale = scale_arg().max(1);
    let mut report = Summary::new(&format!("Propagation engine benchmark (scale {scale})"));

    let sizes = [(15usize, 85usize), (40, 360), (80, 720)];
    // Observability overhead probe: time the worklist engine with and
    // without a disabled-recorder emit at the largest size, and assert
    // the disabled path costs ≤5% (the crate's zero-cost contract).
    let mut overhead: Option<(u128, u128)> = None;
    let mut records: Vec<Record> = Vec::new();
    for (transits, stubs) in sizes {
        let world = SyntheticInternet::generate(Config {
            seed: 7,
            transits: transits * scale,
            stubs: stubs * scale,
            roa_adoption: 1.0,
            cross_border: 0.1,
            anchors: false,
            self_hosting: 1.0,
        });
        let cache: VrpCache = world
            .orgs
            .iter()
            .filter(|o| o.adopted_roa)
            .flat_map(|o| o.prefixes.iter().map(move |&p| Vrp::new(p, p.len(), o.asn)))
            .collect();
        let slice: Vec<_> = world.announcements.iter().copied().take(20).collect();
        let ases = world.topology.len();

        for policy in [RpkiPolicy::Ignore, RpkiPolicy::DropInvalid, RpkiPolicy::DeprefInvalid] {
            let (state, stats) = propagate_with_stats(&world.topology, &slice, policy, &cache)
                .expect("worklist converges");
            let (oracle, oracle_rounds) =
                reference::propagate(&world.topology, &slice, policy, &cache)
                    .expect("reference converges");
            assert_eq!(state, oracle, "engines diverged under {policy:?} at {ases} ASes");

            let worklist_ns = time_min(5, || {
                propagate_with_stats(&world.topology, &slice, policy, &cache)
                    .expect("worklist converges");
            });
            let reference_ns = time_min(3, || {
                reference::propagate(&world.topology, &slice, policy, &cache)
                    .expect("reference converges");
            });

            if (transits, stubs) == sizes[sizes.len() - 1] && policy == RpkiPolicy::DropInvalid {
                let disabled = Recorder::disabled();
                let instrumented_ns = time_min(5, || {
                    let (_, stats) = propagate_with_stats(&world.topology, &slice, policy, &cache)
                        .expect("worklist converges");
                    stats.emit(&disabled, 0);
                });
                overhead = Some((worklist_ns, instrumented_ns));
            }

            records.push(Record {
                ases,
                prefixes: slice.len(),
                policy: format!("{policy:?}"),
                worklist_ns,
                reference_ns,
                speedup: reference_ns as f64 / worklist_ns as f64,
                worklist_rounds: stats.rounds,
                reference_rounds: oracle_rounds,
                route_updates: stats.route_updates,
                pairs_evaluated: stats.pairs_evaluated,
                memo_hits: stats.memo_hits,
                memo_misses: stats.memo_misses,
                peak_worklist: stats.peak_worklist,
            });
        }
    }

    let mut out = SummaryTable::new(&[
        "ASes",
        "policy",
        "worklist (ms)",
        "reference (ms)",
        "speedup",
        "rounds (wl/ref)",
        "memo hits",
        "peak worklist",
    ]);
    for r in &records {
        out.row(&[
            r.ases.to_string(),
            r.policy.clone(),
            format!("{:.3}", r.worklist_ns as f64 / 1e6),
            format!("{:.3}", r.reference_ns as f64 / 1e6),
            format!("{:.1}x", r.speedup),
            format!("{}/{}", r.worklist_rounds, r.reference_rounds),
            format!("{}/{}", r.memo_hits, r.memo_hits + r.memo_misses),
            r.peak_worklist.to_string(),
        ]);
    }
    report.table("worklist vs reference", out);

    let largest = records.iter().map(|r| r.ases).max().expect("records");
    let min_speedup_at_largest = records
        .iter()
        .filter(|r| r.ases == largest)
        .map(|r| r.speedup)
        .fold(f64::INFINITY, f64::min);
    let (plain_ns, instrumented_ns) = overhead.expect("largest size measured");
    report.key_vals(
        "targets",
        &[
            (
                format!("minimum speedup at the largest size ({largest} ASes)"),
                format!("{min_speedup_at_largest:.1}x"),
            ),
            (
                "disabled-instrumentation overhead at the largest size".to_string(),
                format!("{:.1}%", 100.0 * (instrumented_ns as f64 / plain_ns as f64 - 1.0)),
            ),
        ],
    );
    if cfg!(debug_assertions) {
        report
            .note("(debug build — speedup and overhead targets not enforced; run with --release)");
    } else {
        assert!(
            min_speedup_at_largest >= 5.0,
            "worklist engine regressed below the 5x target at {largest} ASes"
        );
        assert!(
            (instrumented_ns as f64) <= (plain_ns as f64) * 1.05,
            "disabled-mode instrumentation overhead above 5%: {instrumented_ns} vs {plain_ns} ns"
        );
        report.note("OK: >= 5x at the largest size; disabled-mode instrumentation <= 5%.");
    }
    report.print();

    let json = serde_json::to_string(&records).expect("serialise records");
    std::fs::write("BENCH_propagation.json", format!("{json}\n"))
        .expect("write BENCH_propagation.json");
    println!("\nwrote BENCH_propagation.json ({} records)", records.len());
    emit_json("bench_propagation", &records);
}
