//! Figure 2: the model RPKI.
//!
//! Prints the reconstructed certificate/ROA hierarchy of the paper's
//! Figure 2 and verifies it validates cleanly.

use rpki_objects::Moment;
use rpki_risk::ModelRpki;
use rpki_risk_bench::{emit_json, Table};

fn main() {
    let w = ModelRpki::build();

    println!("Figure 2 — excerpt of a model RPKI (reconstruction)\n");
    println!("ARIN (trust anchor)  resources = {}", w.arin.resources());
    for ca in [&w.sprint, &w.etb, &w.continental] {
        let cert = ca.cert().expect("certified");
        println!(
            "└─ RC → {:<24} {}  (issued by {})",
            ca.handle(),
            cert.data().resources,
            if ca.handle() == "Sprint" { "ARIN" } else { "Sprint" },
        );
        for roa in ca.issued_roas() {
            println!("   └─ {}", roa);
        }
    }

    let run = w.validate_direct(Moment(2));
    let mut table = Table::new(&["validated CA", "depth", "resources"]);
    for ca in &run.cas {
        table.row(&[ca.handle.clone(), ca.depth.to_string(), ca.resources.join(", ")]);
    }
    table.print("Validated hierarchy");

    let mut vrps = Table::new(&["VRP", "origin"]);
    for v in &run.vrps {
        vrps.row(&[format!("{}-{}", v.prefix, v.max_len), v.asn.to_string()]);
    }
    vrps.print("Validated ROA payloads");

    assert_eq!(run.vrps.len(), 8, "model must validate to 8 VRPs");
    assert_eq!(run.cas.len(), 4, "model must validate 4 CAs");
    println!("\nOK: model validates to {} VRPs across {} CAs.", run.vrps.len(), run.cas.len());

    emit_json("fig2_model_rpki", &run.vrps);
}
