//! Ablation: what each layer of relying-party resilience buys.
//!
//! Replays the standard seeded fault campaigns (corruption bursts,
//! flapping partitions, takedowns, Stalloris slow serves, a stealthy
//! withdrawal) against four relying-party configurations — bare,
//! retrying, retrying + stale cache, and the full stack with the
//! Suspenders hold-down — and reports VRP availability and
//! valid→invalid/unknown flips per tier.
//!
//! The paper's Section 6 message is that the RPKI's failure modes
//! punish a naive fetch pipeline; this experiment quantifies how much
//! of that punishment each standard defense absorbs, and which faults
//! each one *cannot* absorb (timeouts lose slow-served rounds the bare
//! RP eventually gets; the stale cache refuses to bridge authority-side
//! withdrawals — that separation is Suspenders' niche).

use rpki_risk::{run_campaign_traced, standard_campaigns, CampaignOutcome, RpTier};
use rpki_risk_bench::{emit_json, trace_recorder, write_trace, Summary, SummaryTable};

fn seed_arg() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2013)
}

fn main() {
    let seed = seed_arg();
    let recorder = trace_recorder();
    let mut report =
        Summary::new(&format!("Resilience ablation — seeded fault campaigns, seed {seed}"));

    let mut outcomes: Vec<CampaignOutcome> = Vec::new();
    for spec in standard_campaigns() {
        let out = run_campaign_traced(&spec, seed, &recorder);
        let mut table = SummaryTable::new(&[
            "tier",
            "VRP-rounds",
            "min VRPs",
            "valid-rounds",
            "flips->invalid",
            "flips->unknown",
            "stale dir-rounds",
        ]);
        for t in &out.tiers {
            table.row(&[
                t.tier.label().to_owned(),
                t.totals.vrp_round_sum.to_string(),
                t.totals.min_vrps.to_string(),
                t.totals.valid_round_sum.to_string(),
                t.totals.invalid_flips.to_string(),
                t.totals.unknown_flips.to_string(),
                t.totals.stale_dir_rounds.to_string(),
            ]);
        }
        report.table(&format!("campaign: {} ({} rounds)", out.name, out.rounds), table);
        outcomes.push(out);
    }

    // The headline separations the campaigns exist to show.
    let avail = |o: &CampaignOutcome, t: RpTier| o.tier(t).totals.vrp_round_sum;
    let by_name = |n: &str| outcomes.iter().find(|o| o.name == n).expect("standard campaign");

    let burst = by_name("corruption-burst");
    assert!(
        avail(burst, RpTier::Bare) < avail(burst, RpTier::Retrying)
            && avail(burst, RpTier::Retrying) < avail(burst, RpTier::RetryingStale),
        "corruption burst must separate bare < retrying < retrying+stale"
    );
    let takedown = by_name("takedown");
    assert!(
        avail(takedown, RpTier::Retrying) < avail(takedown, RpTier::RetryingStale),
        "a hard outage defeats retries; only the stale cache bridges it"
    );
    let mixed = by_name("mixed");
    assert!(
        avail(mixed, RpTier::RetryingStale) < avail(mixed, RpTier::Suspenders),
        "the withdrawal window separates Suspenders from the stale cache"
    );

    report.note(
        "OK: bare < retrying < retrying+stale under corruption; stale cache\n\
         bridges the takedown; only Suspenders bridges the withdrawal.",
    );
    if recorder.is_enabled() {
        report.metrics(&recorder.metrics());
    }
    report.print();
    if let Some(path) = write_trace(&recorder) {
        println!("\nwrote {} trace events to {path}", recorder.event_count());
    }

    emit_json("ablation_resilience", &outcomes);
}
