//! Validates benchmark JSON exports against the committed schemas.
//!
//! With no arguments, checks every known `BENCH_*.json` export found in
//! the current directory against its schema under `schemas/`, and fails
//! on any `BENCH_*.json` present that has no registered schema — a
//! bench cannot export an unpinned shape. With two arguments
//! (`schema_check DATA.json SCHEMA.json`), checks that one pair. Exits
//! nonzero on the first violation, printing the failing path inside
//! the document.

use std::process::ExitCode;

use rpki_risk_bench::schema;

/// Known export → schema pairs, relative to the repository root.
const KNOWN: &[(&str, &str)] = &[
    ("BENCH_propagation.json", "schemas/bench_propagation.schema.json"),
    ("BENCH_validation.json", "schemas/bench_validation.schema.json"),
    ("BENCH_rrdp.json", "schemas/bench_rrdp.schema.json"),
    ("BENCH_rtr.json", "schemas/bench_rtr.schema.json"),
    ("BENCH_scale.json", "schemas/bench_scale.schema.json"),
    ("BENCH_unsafe_vrp.json", "schemas/bench_unsafe_vrp.schema.json"),
    ("BENCH_scheduler.json", "schemas/bench_scheduler.schema.json"),
    ("BENCH_pubd.json", "schemas/bench_pubd.schema.json"),
];

/// `BENCH_*.json` files in the current directory that no KNOWN entry
/// claims — a bench that exports without registering a schema.
fn unregistered_exports() -> Vec<String> {
    let Ok(entries) = std::fs::read_dir(".") else { return Vec::new() };
    let mut stray: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        .filter(|name| !KNOWN.iter().any(|(data, _)| data == name))
        .collect();
    stray.sort();
    stray
}

fn check_pair(data_path: &str, schema_path: &str) -> Result<(), String> {
    let data = std::fs::read_to_string(data_path)
        .map_err(|e| format!("{data_path}: cannot read: {e:?}"))?;
    let schema_text = std::fs::read_to_string(schema_path)
        .map_err(|e| format!("{schema_path}: cannot read: {e:?}"))?;
    let data = serde_json::from_str(&data).map_err(|e| format!("{data_path}: bad JSON: {e:?}"))?;
    let schema_json = serde_json::from_str(&schema_text)
        .map_err(|e| format!("{schema_path}: bad JSON: {e:?}"))?;
    schema::check(&data, &schema_json).map_err(|e| format!("{data_path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let pairs: Vec<(String, String)> = match args.as_slice() {
        [] => KNOWN
            .iter()
            .filter(|(data, _)| std::path::Path::new(data).exists())
            .map(|(d, s)| (d.to_string(), s.to_string()))
            .collect(),
        [data, schema_path] => vec![(data.clone(), schema_path.clone())],
        _ => {
            eprintln!("usage: schema_check [DATA.json SCHEMA.json]");
            return ExitCode::FAILURE;
        }
    };
    if pairs.is_empty() {
        eprintln!("schema_check: no BENCH_*.json exports found in the current directory");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    if args.is_empty() {
        for stray in unregistered_exports() {
            eprintln!("FAIL: {stray}: no schema registered (add it to KNOWN and schemas/)");
            failed = true;
        }
    }
    for (data, schema_path) in &pairs {
        match check_pair(data, schema_path) {
            Ok(()) => println!("ok: {data} matches {schema_path}"),
            Err(e) => {
                eprintln!("FAIL: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
