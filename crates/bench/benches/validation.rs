//! Criterion benches: chain validation and RFC 6811 classification
//! throughput — a relying party's steady-state workload.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ipres::Asn;
use netsim::Network;
use rpki_objects::Moment;
use rpki_repo::RepoRegistry;
use rpki_rp::{DirectSource, Route, ValidationConfig, Validator, Vrp, VrpCache};
use topogen::{Config, SyntheticInternet};

fn bench_chain_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_validation");
    group.sample_size(10);
    for (label, transits, stubs) in [("small", 10usize, 50usize), ("medium", 25, 250)] {
        let mut world = SyntheticInternet::generate(Config {
            seed: 99,
            transits,
            stubs,
            roa_adoption: 1.0,
            cross_border: 0.1,
            anchors: false,
            self_hosting: 1.0,
        });
        let mut net = Network::new(0);
        let mut repos = RepoRegistry::new();
        let tal = world.materialize(&mut net, &mut repos, Moment(1));
        group.bench_function(BenchmarkId::new("full_tree", label), |b| {
            b.iter(|| {
                let mut source = DirectSource::new(&repos);
                let run = Validator::new(ValidationConfig::at(Moment(2)))
                    .run(&mut source, std::slice::from_ref(&tal));
                black_box(run.vrps.len())
            })
        });
    }
    group.finish();
}

fn bench_origin_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("origin_validation");
    group.sample_size(20);
    for n in [1_000u32, 20_000] {
        let cache: VrpCache = (0..n)
            .map(|i| {
                let addr = ipres::Addr::v4(i.wrapping_mul(2_654_435_761));
                let p = ipres::Prefix::new(addr, 20);
                Vrp::new(p, 24, Asn(i % 500))
            })
            .collect();
        let routes: Vec<Route> = (0..1_000u32)
            .map(|i| {
                let addr = ipres::Addr::v4(i.wrapping_mul(2_246_822_519));
                Route::new(ipres::Prefix::new(addr, 24), Asn(i % 700))
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("classify_1k_routes", n), &n, |b, _| {
            b.iter(|| {
                let mut valid = 0usize;
                for r in &routes {
                    if cache.classify(*r) == rpki_rp::RouteValidity::Valid {
                        valid += 1;
                    }
                }
                black_box(valid)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chain_validation, bench_origin_validation);
criterion_main!(benches);
