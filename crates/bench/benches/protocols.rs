//! Criterion benches: the distribution protocols — incremental rsync
//! sessions and RTR delta computation/replay.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ipres::{Addr, Asn, Prefix};
use netsim::Network;
use rpki_objects::RepoUri;
use rpki_repo::{sync_dir_incremental, RepoRegistry, SyncCache};
use rpki_rp::{ClientAction, RtrClient, RtrServer, Vrp, VrpUpdate};

fn vrps(n: u32) -> Vec<Vrp> {
    (0..n)
        .map(|i| {
            let addr = Addr::v4(i.wrapping_mul(2_654_435_761));
            Vrp::new(Prefix::new(addr, 20), 24, Asn(i % 500))
        })
        .collect()
}

/// One direct-call sync: query, answer, apply, retrying once on reset.
/// (The framed, fault-modeled transport is benched by `bench_rtr`; this
/// measures the pure state machines.)
fn sync(client: &mut RtrClient, server: &RtrServer) -> usize {
    let mut exchanged = 0;
    for _ in 0..2 {
        let query = client.poll();
        exchanged += 1;
        let mut reset = false;
        for pdu in server.handle(&query) {
            exchanged += 1;
            if client.handle(&pdu) == ClientAction::Reset {
                reset = true;
            }
        }
        if !reset {
            break;
        }
    }
    exchanged
}

fn bench_rtr(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtr");
    group.sample_size(20);
    for n in [1_000u32, 20_000] {
        let base = vrps(n);
        group.bench_with_input(BenchmarkId::new("full_sync", n), &n, |b, _| {
            let mut server = RtrServer::new(1, 8);
            server.publish(VrpUpdate::snapshot(base.iter().copied()));
            b.iter(|| {
                let mut client = RtrClient::new();
                black_box(sync(&mut client, &server))
            })
        });
        group.bench_with_input(BenchmarkId::new("delta_update", n), &n, |b, _| {
            b.iter(|| {
                let mut server = RtrServer::new(1, 8);
                server.publish(VrpUpdate::snapshot(base.iter().copied()));
                // Change 1% of the set.
                let mut changed = base.clone();
                for v in changed.iter_mut().take((n / 100) as usize) {
                    v.asn = Asn(v.asn.0 + 10_000);
                }
                black_box(server.publish(VrpUpdate::snapshot(changed)))
            })
        });
    }
    group.finish();
}

fn bench_incremental_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_sync");
    group.sample_size(20);
    for files in [50usize, 500] {
        // A repository with `files` objects of ~1 KiB each.
        let mut net = Network::new(0);
        let client = net.add_node("rp");
        let mut repos = RepoRegistry::new();
        let server = repos.create(&mut net, "h");
        let dir = RepoUri::new("h", &["repo"]);
        for i in 0..files {
            repos.get_mut(server).unwrap().publish_raw(
                &dir,
                &format!("f{i}.roa"),
                vec![i as u8; 1024],
            );
        }
        group.bench_with_input(BenchmarkId::new("warm_noop", files), &files, |b, _| {
            let mut cache = SyncCache::new();
            sync_dir_incremental(&mut net, &repos, client, &dir, &mut cache);
            b.iter(|| {
                let (out, stats) = sync_dir_incremental(&mut net, &repos, client, &dir, &mut cache);
                assert_eq!(stats.fetched, 0);
                black_box(out.files.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("cold_full", files), &files, |b, _| {
            b.iter(|| {
                let mut cache = SyncCache::new();
                let (out, _) = sync_dir_incremental(&mut net, &repos, client, &dir, &mut cache);
                black_box(out.files.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rtr, bench_incremental_sync);
criterion_main!(benches);
