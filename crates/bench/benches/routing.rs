//! Criterion benches: BGP propagation convergence and data-plane
//! forwarding at growing topology sizes.

use bgp_sim::{propagate, RpkiPolicy};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rpki_rp::VrpCache;
use topogen::{Config, SyntheticInternet};

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("bgp_propagate");
    group.sample_size(10);
    for (label, transits, stubs) in [("100as", 15usize, 85usize), ("400as", 40, 360)] {
        let world = SyntheticInternet::generate(Config {
            seed: 7,
            transits,
            stubs,
            roa_adoption: 1.0,
            cross_border: 0.1,
            anchors: false,
            self_hosting: 1.0,
        });
        // Propagate a representative slice of announcements (the full
        // set scales linearly; 20 prefixes keeps the bench honest and
        // quick).
        let slice: Vec<_> = world.announcements.iter().copied().take(20).collect();
        let cache = VrpCache::new();
        for policy in [RpkiPolicy::Ignore, RpkiPolicy::DropInvalid] {
            group.bench_function(BenchmarkId::new(format!("{policy:?}"), label), |b| {
                b.iter(|| {
                    let state =
                        propagate(&world.topology, &slice, policy, &cache).expect("converges");
                    black_box(state.ases_with_routes())
                })
            });
        }
    }
    group.finish();
}

fn bench_forwarding(c: &mut Criterion) {
    let mut group = c.benchmark_group("forwarding");
    group.sample_size(20);
    let world = SyntheticInternet::generate(Config {
        seed: 7,
        transits: 15,
        stubs: 85,
        roa_adoption: 1.0,
        cross_border: 0.1,
        anchors: false,
        self_hosting: 1.0,
    });
    let slice: Vec<_> = world.announcements.iter().copied().take(20).collect();
    let state = propagate(&world.topology, &slice, RpkiPolicy::Ignore, &VrpCache::new())
        .expect("converges");
    let src = world.orgs.last().expect("orgs").asn;
    let dst = slice[0];
    group.bench_function("forward_one_packet", |b| {
        b.iter(|| black_box(state.forward(src, dst.prefix.addr())))
    });
    group.bench_function("reachability_sweep", |b| {
        b.iter(|| {
            black_box(state.reachability_of(world.topology.ases(), dst.prefix.addr(), dst.origin))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_propagation, bench_forwarding);
criterion_main!(benches);
