//! Criterion benches: the resource algebra and prefix trie (the hot
//! paths under chain validation and origin validation).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ipres::{Addr, AddrRange, Prefix, PrefixTrie, ResourceSet};

fn sets_of(runs: usize) -> (ResourceSet, ResourceSet) {
    // Interleaved striped ranges: worst case for the linear merges.
    let a = ResourceSet::from_ranges((0..runs).map(|i| {
        let base = (i as u32) << 12;
        AddrRange::new(Addr::v4(base), Addr::v4(base + 0x7ff))
    }));
    let b = ResourceSet::from_ranges((0..runs).map(|i| {
        let base = ((i as u32) << 12) + 0x400;
        AddrRange::new(Addr::v4(base), Addr::v4(base + 0x7ff))
    }));
    (a, b)
}

fn bench_set_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("resource_set");
    group.sample_size(20);
    for runs in [16usize, 256, 4096] {
        let (a, b) = sets_of(runs);
        group.bench_with_input(BenchmarkId::new("union", runs), &runs, |bench, _| {
            bench.iter(|| black_box(a.union(&b)))
        });
        group.bench_with_input(BenchmarkId::new("intersection", runs), &runs, |bench, _| {
            bench.iter(|| black_box(a.intersection(&b)))
        });
        group.bench_with_input(BenchmarkId::new("difference", runs), &runs, |bench, _| {
            bench.iter(|| black_box(a.difference(&b)))
        });
        group.bench_with_input(BenchmarkId::new("contains_set", runs), &runs, |bench, _| {
            bench.iter(|| black_box(a.contains_set(&b)))
        });
    }
    group.finish();
}

fn trie_of(n: u32) -> PrefixTrie<u32> {
    let mut trie = PrefixTrie::new();
    for i in 0..n {
        // Spread prefixes across the v4 space at lengths 12..=24.
        let len = 12 + (i % 13) as u8;
        let addr = i.wrapping_mul(2_654_435_761); // Knuth hash for spread
        trie.insert(Prefix::new(Addr::v4(addr), len), i);
    }
    trie
}

fn bench_trie(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_trie");
    group.sample_size(20);
    for n in [1_000u32, 10_000, 100_000] {
        let trie = trie_of(n);
        group.bench_with_input(BenchmarkId::new("covering", n), &n, |bench, _| {
            let probe = Prefix::new(Addr::v4(0x3fa0_0000), 24);
            bench.iter(|| black_box(trie.covering(probe)))
        });
        group.bench_with_input(BenchmarkId::new("longest_match", n), &n, |bench, _| {
            bench.iter(|| black_box(trie.longest_match(Addr::v4(0x3fa0_1234))))
        });
    }
    group.bench_function("insert_1k", |bench| {
        bench.iter(|| {
            let mut t = PrefixTrie::new();
            for i in 0..1_000u32 {
                let addr = i.wrapping_mul(2_654_435_761);
                t.insert(Prefix::new(Addr::v4(addr), 24), i);
            }
            black_box(t.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_set_ops, bench_trie);
criterion_main!(benches);
