//! Criterion benches: whack planning and monitor snapshot-diffing —
//! the costs of attack and defence.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rpki_attacks::{plan_whack, CaView, Monitor, MonitorSnapshot};
use rpki_objects::Moment;
use rpki_risk::ModelRpki;

fn bench_whack_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("whack");
    group.sample_size(20);
    let w = ModelRpki::build();
    let rc = w.sprint.issued_cert_for(w.continental.key_id()).expect("issued").clone();
    let view = CaView::from_repos(&rc, &w.repos);
    let clean_target = w.covering_roa_file();
    let mbb_target = w.customer_roa_file();

    group.bench_function("view_from_repos", |b| {
        b.iter(|| black_box(CaView::from_repos(&rc, &w.repos)))
    });
    group.bench_function("plan_clean_carve", |b| {
        b.iter(|| black_box(plan_whack(std::slice::from_ref(&view), &clean_target).unwrap()))
    });
    group.bench_function("plan_make_before_break", |b| {
        b.iter(|| black_box(plan_whack(std::slice::from_ref(&view), &mbb_target).unwrap()))
    });
    group.finish();
}

fn bench_monitor(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor");
    group.sample_size(20);
    let mut w = ModelRpki::build();
    w.publish_all(Moment(5));
    let snap1 = MonitorSnapshot::capture(&w.repos, Moment(5));
    w.publish_all(Moment(6)); // CRL/manifest churn
    let snap2 = MonitorSnapshot::capture(&w.repos, Moment(6));

    group.bench_function("capture_snapshot", |b| {
        b.iter(|| black_box(MonitorSnapshot::capture(&w.repos, Moment(7))))
    });
    group.bench_function("diff_and_classify", |b| {
        b.iter(|| {
            let mut m = Monitor::new();
            m.observe(snap1.clone());
            black_box(m.observe(snap2.clone()).len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_whack_planning, bench_monitor);
criterion_main!(benches);
