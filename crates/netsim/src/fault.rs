//! Fault injection for the simulated network.
//!
//! The paper's Side Effects 6–7 are triggered by faults that are mundane
//! individually and catastrophic in combination: a corrupted fetch, a
//! missed renewal, an unreachable repository. [`FaultPlan`] expresses
//! those faults two ways:
//!
//! - **Probabilistic** — per-directed-link loss and corruption rates,
//!   driven by the network's seeded RNG (for churn/soak experiments).
//! - **Scheduled** — "corrupt message #3 on the A→B link" (for exact
//!   reproductions like the Section 6 worked example, where *one*
//!   transient corruption must hit a precise frame).
//!
//! Scheduled faults are indexed by a per-directed-link message counter:
//! every message evaluated on a link advances its counter, whether or
//! not a fault fires. [`FaultPlan::corrupt_next`]/[`FaultPlan::drop_next`]
//! target the next *n* messages; [`FaultPlan::corrupt_nth`]/
//! [`FaultPlan::drop_nth`] target exactly the *n*-th message from now
//! (1-based), which lets a test say "let the listing through, corrupt
//! the first file".
//!
//! Partitions and node-down states are absolute: no delivery in either
//! direction while active.
//!
//! Stalls model a Stalloris-style slow serve: the link still delivers,
//! but every message is held for an extra fixed delay, so a client
//! without a deadline hangs for the duration.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::net::NodeId;

/// A directed link key.
type Link = (NodeId, NodeId);

/// What the scheduled-fault layer says about one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct ScheduledFate {
    /// Drop this message.
    pub drop: bool,
    /// Corrupt this message at the given payload byte offset (moot if
    /// dropped).
    pub corrupt: Option<usize>,
}

/// The current fault configuration of a [`Network`](crate::Network).
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Per-directed-link probability (0..=1) of silently dropping a
    /// message.
    loss: HashMap<Link, f64>,
    /// Per-directed-link probability (0..=1) of corrupting a message
    /// payload in flight.
    corruption: HashMap<Link, f64>,
    /// Unordered pairs with no connectivity at all.
    partitions: HashSet<(NodeId, NodeId)>,
    /// Nodes that are down (neither send nor receive).
    down: HashSet<NodeId>,
    /// Per-directed-link extra delay added to every send (slow serve).
    stall: HashMap<Link, u64>,
    /// Messages evaluated so far, per directed link.
    counters: HashMap<Link, u64>,
    /// Absolute message indices scheduled for corruption, mapped to the
    /// payload byte offset to flip.
    corrupt_at: HashMap<Link, BTreeMap<u64, usize>>,
    /// Absolute message indices scheduled for dropping.
    drop_at: HashMap<Link, BTreeSet<u64>>,
}

fn unordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Sets the loss probability for messages from `a` to `b`.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not in `[0, 1]`.
    pub fn set_loss(&mut self, a: NodeId, b: NodeId, prob: f64) {
        assert!((0.0..=1.0).contains(&prob), "loss probability out of range");
        if prob == 0.0 {
            self.loss.remove(&(a, b));
        } else {
            self.loss.insert((a, b), prob);
        }
    }

    /// Sets the corruption probability for messages from `a` to `b`.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not in `[0, 1]`.
    pub fn set_corruption(&mut self, a: NodeId, b: NodeId, prob: f64) {
        assert!((0.0..=1.0).contains(&prob), "corruption probability out of range");
        if prob == 0.0 {
            self.corruption.remove(&(a, b));
        } else {
            self.corruption.insert((a, b), prob);
        }
    }

    /// Adds `extra` seconds of delay to every message sent from `a` to
    /// `b` (a Stalloris-style slow serve). Zero clears the stall.
    pub fn set_stall(&mut self, a: NodeId, b: NodeId, extra: u64) {
        if extra == 0 {
            self.stall.remove(&(a, b));
        } else {
            self.stall.insert((a, b), extra);
        }
    }

    /// The extra delay currently configured on the directed link.
    pub fn stall_delay(&self, a: NodeId, b: NodeId) -> u64 {
        self.stall.get(&(a, b)).copied().unwrap_or(0)
    }

    fn counter(&self, link: Link) -> u64 {
        self.counters.get(&link).copied().unwrap_or(0)
    }

    /// Schedules the next `n` messages from `a` to `b` for corruption.
    pub fn corrupt_next(&mut self, a: NodeId, b: NodeId, n: u64) {
        let base = self.counter((a, b));
        let set = self.corrupt_at.entry((a, b)).or_default();
        for i in 1..=n {
            set.insert(base + i, 0);
        }
    }

    /// Schedules exactly the `n`-th message from now (1-based) on the
    /// `a`→`b` link for corruption.
    pub fn corrupt_nth(&mut self, a: NodeId, b: NodeId, n: u64) {
        self.corrupt_nth_at(a, b, n, 0);
    }

    /// Like [`FaultPlan::corrupt_nth`], but flips the payload byte at
    /// `offset` instead of byte 0. Byte 0 is the frame tag, so the
    /// default tears the frame entirely; a deeper offset produces a
    /// corrupted-but-parseable frame that only digest checks catch.
    pub fn corrupt_nth_at(&mut self, a: NodeId, b: NodeId, n: u64, offset: usize) {
        assert!(n >= 1, "message indices are 1-based");
        let base = self.counter((a, b));
        self.corrupt_at.entry((a, b)).or_default().insert(base + n, offset);
    }

    /// Schedules the next `n` messages from `a` to `b` for dropping.
    pub fn drop_next(&mut self, a: NodeId, b: NodeId, n: u64) {
        let base = self.counter((a, b));
        let set = self.drop_at.entry((a, b)).or_default();
        for i in 1..=n {
            set.insert(base + i);
        }
    }

    /// Schedules exactly the `n`-th message from now (1-based) on the
    /// `a`→`b` link for dropping.
    pub fn drop_nth(&mut self, a: NodeId, b: NodeId, n: u64) {
        assert!(n >= 1, "message indices are 1-based");
        let base = self.counter((a, b));
        self.drop_at.entry((a, b)).or_default().insert(base + n);
    }

    /// Severs all connectivity between `a` and `b` (both directions).
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.partitions.insert(unordered(a, b));
    }

    /// Restores connectivity between `a` and `b`.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.partitions.remove(&unordered(a, b));
    }

    /// Marks a node down (crashed repository, unplugged RP).
    pub fn set_down(&mut self, node: NodeId, down: bool) {
        if down {
            self.down.insert(node);
        } else {
            self.down.remove(&node);
        }
    }

    /// Whether `node` is currently down.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down.contains(&node)
    }

    /// Whether `a`↔`b` is partitioned.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.partitions.contains(&unordered(a, b))
    }

    /// The loss probability on the directed link.
    pub(crate) fn loss_prob(&self, a: NodeId, b: NodeId) -> f64 {
        self.loss.get(&(a, b)).copied().unwrap_or(0.0)
    }

    /// The corruption probability on the directed link.
    pub(crate) fn corruption_prob(&self, a: NodeId, b: NodeId) -> f64 {
        self.corruption.get(&(a, b)).copied().unwrap_or(0.0)
    }

    /// Advances the link's message counter and reports the scheduled
    /// fate of this message. Called exactly once per message at delivery
    /// evaluation.
    pub(crate) fn on_message(&mut self, a: NodeId, b: NodeId) -> ScheduledFate {
        let link = (a, b);
        let idx = self.counter(link) + 1;
        self.counters.insert(link, idx);
        let drop = self.drop_at.get_mut(&link).map(|s| s.remove(&idx)).unwrap_or(false);
        let corrupt = self.corrupt_at.get_mut(&link).and_then(|s| s.remove(&idx));
        ScheduledFate { drop, corrupt }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn partition_is_symmetric() {
        let mut f = FaultPlan::new();
        f.partition(n(1), n(2));
        assert!(f.is_partitioned(n(1), n(2)));
        assert!(f.is_partitioned(n(2), n(1)));
        f.heal(n(2), n(1));
        assert!(!f.is_partitioned(n(1), n(2)));
    }

    #[test]
    fn corrupt_next_hits_consecutive_messages() {
        let mut f = FaultPlan::new();
        f.corrupt_next(n(1), n(2), 2);
        assert!(f.on_message(n(1), n(2)).corrupt.is_some());
        // Direction matters; this advances the reverse link only.
        assert!(f.on_message(n(2), n(1)).corrupt.is_none());
        assert!(f.on_message(n(1), n(2)).corrupt.is_some());
        assert!(f.on_message(n(1), n(2)).corrupt.is_none());
    }

    #[test]
    fn nth_scheduling_skips_earlier_messages() {
        let mut f = FaultPlan::new();
        f.drop_nth(n(3), n(4), 2);
        f.corrupt_nth(n(3), n(4), 3);
        assert_eq!(f.on_message(n(3), n(4)), ScheduledFate { drop: false, corrupt: None });
        assert_eq!(f.on_message(n(3), n(4)), ScheduledFate { drop: true, corrupt: None });
        assert_eq!(f.on_message(n(3), n(4)), ScheduledFate { drop: false, corrupt: Some(0) });
        assert_eq!(f.on_message(n(3), n(4)), ScheduledFate::default());
    }

    #[test]
    fn corrupt_nth_at_carries_the_offset() {
        let mut f = FaultPlan::new();
        f.corrupt_nth_at(n(1), n(2), 1, 7);
        assert_eq!(f.on_message(n(1), n(2)).corrupt, Some(7));
        assert_eq!(f.on_message(n(1), n(2)).corrupt, None);
    }

    #[test]
    fn stall_toggles_and_is_directional() {
        let mut f = FaultPlan::new();
        assert_eq!(f.stall_delay(n(1), n(2)), 0);
        f.set_stall(n(1), n(2), 300);
        assert_eq!(f.stall_delay(n(1), n(2)), 300);
        assert_eq!(f.stall_delay(n(2), n(1)), 0);
        f.set_stall(n(1), n(2), 0);
        assert_eq!(f.stall_delay(n(1), n(2)), 0);
    }

    #[test]
    fn nth_is_relative_to_current_counter() {
        let mut f = FaultPlan::new();
        let _ = f.on_message(n(1), n(2));
        let _ = f.on_message(n(1), n(2));
        f.drop_nth(n(1), n(2), 1); // the very next one
        assert!(f.on_message(n(1), n(2)).drop);
    }

    #[test]
    fn down_state_toggles() {
        let mut f = FaultPlan::new();
        assert!(!f.is_down(n(9)));
        f.set_down(n(9), true);
        assert!(f.is_down(n(9)));
        f.set_down(n(9), false);
        assert!(!f.is_down(n(9)));
    }

    #[test]
    fn zero_probability_clears_entry() {
        let mut f = FaultPlan::new();
        f.set_loss(n(1), n(2), 0.5);
        assert_eq!(f.loss_prob(n(1), n(2)), 0.5);
        assert_eq!(f.loss_prob(n(2), n(1)), 0.0);
        f.set_loss(n(1), n(2), 0.0);
        assert_eq!(f.loss_prob(n(1), n(2)), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_probability_panics() {
        let mut f = FaultPlan::new();
        f.set_corruption(n(1), n(2), 1.5);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn nth_zero_rejected() {
        let mut f = FaultPlan::new();
        f.drop_nth(n(1), n(2), 0);
    }
}
