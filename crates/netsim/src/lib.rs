//! A deterministic discrete-event network simulator.
//!
//! This is the transport substrate under the RPKI repository system. It
//! follows the sans-IO, event-driven idiom of the networking guides
//! (smoltcp): no sockets, no async runtime — a simulated clock, an event
//! queue, and explicit `step()` advancement. Everything is seeded and
//! reproducible.
//!
//! Two properties of the real Internet matter to the paper, and both are
//! first-class here:
//!
//! 1. **Delivery is fallible** — messages can be lost or corrupted in
//!    flight ([`FaultPlan`]), which is how a relying party ends up with
//!    a missing or corrupted ROA (Side Effect 6).
//! 2. **Delivery depends on routing** — RPKI objects travel over the
//!    very TCP/IP whose routes they validate. The
//!    [`Network::set_reachability`] oracle lets the experiment layer
//!    wire BGP route validity back into the transport, closing the loop
//!    of the paper's Figure 1 and enabling the Side Effect 7 fixed
//!    point.
//!
//! The API is deliberately small: register nodes, send opaque byte
//! payloads, set timers, then [`Network::step`] through occurrences.
//! Protocol logic (the rsync-like fetch protocol, the relying party's
//! sync loop) lives in higher crates, keeping this one reusable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod net;

pub use fault::FaultPlan;
pub use net::{Delivery, DropReason, Network, NodeId, Occurrence, Stats};
