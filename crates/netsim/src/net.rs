//! The event-driven network core.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpki_obs::Recorder;
use serde::{Deserialize, Serialize};

use crate::fault::FaultPlan;

/// Identifies a node in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A message delivered to a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The sender.
    pub from: NodeId,
    /// The recipient.
    pub to: NodeId,
    /// The (possibly corrupted) payload.
    pub payload: Vec<u8>,
    /// Whether the fault layer corrupted this payload in flight.
    /// Protocol code must not read this — it exists for assertions and
    /// traces; real corruption detection goes through digests.
    pub corrupted_in_flight: bool,
}

/// Why a message never arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Random loss on the link.
    Loss,
    /// A scheduled (deterministic) drop.
    Scheduled,
    /// The pair is partitioned.
    Partition,
    /// Sender or receiver is down.
    NodeDown,
    /// The reachability oracle (BGP validity, in the full system) said
    /// the destination is unreachable from the source.
    Unreachable,
}

impl DropReason {
    /// A short machine-readable label for traces and diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            DropReason::Loss => "loss",
            DropReason::Scheduled => "scheduled",
            DropReason::Partition => "partition",
            DropReason::NodeDown => "node_down",
            DropReason::Unreachable => "unreachable",
        }
    }
}

/// One thing that happened when the simulation advanced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Occurrence {
    /// A message arrived at its destination.
    Delivered(Delivery),
    /// A message was dropped in flight.
    Dropped {
        /// The sender.
        from: NodeId,
        /// The intended recipient.
        to: NodeId,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// A timer set via [`Network::set_timer`] fired.
    Timer {
        /// The node the timer belongs to.
        node: NodeId,
        /// The caller-chosen token identifying the timer.
        token: u64,
    },
}

/// Counters the tests and experiments read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct Stats {
    /// Messages handed to [`Network::send`].
    pub sent: u64,
    /// Messages delivered intact.
    pub delivered: u64,
    /// Messages delivered with corrupted payloads.
    pub corrupted: u64,
    /// Messages dropped for any reason.
    pub dropped: u64,
}

#[derive(Debug)]
enum EventKind {
    Deliver { from: NodeId, to: NodeId, payload: Vec<u8> },
    Timer { node: NodeId, token: u64 },
}

#[derive(Debug)]
struct Event {
    at: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Time, then insertion order: a strict total order makes the
        // simulation fully deterministic.
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// The deterministic discrete-event network.
pub struct Network {
    now: u64,
    next_seq: u64,
    queue: BinaryHeap<Reverse<Event>>,
    names: Vec<String>,
    by_name: HashMap<String, NodeId>,
    /// Fault configuration, mutable mid-run.
    pub faults: FaultPlan,
    rng: StdRng,
    default_latency: u64,
    link_latency: HashMap<(NodeId, NodeId), u64>,
    stats: Stats,
    #[allow(clippy::type_complexity)]
    oracle: Option<Box<dyn FnMut(NodeId, NodeId) -> bool>>,
    recorder: Recorder,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("now", &self.now)
            .field("nodes", &self.names.len())
            .field("pending", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Network {
    /// A new network with the given RNG seed (drives probabilistic
    /// faults only; a fault-free network never consumes randomness).
    pub fn new(seed: u64) -> Self {
        Network {
            now: 0,
            next_seq: 0,
            queue: BinaryHeap::new(),
            names: Vec::new(),
            by_name: HashMap::new(),
            faults: FaultPlan::new(),
            rng: StdRng::seed_from_u64(seed),
            default_latency: 10,
            link_latency: HashMap::new(),
            stats: Stats::default(),
            oracle: None,
            recorder: Recorder::disabled(),
        }
    }

    /// Installs an observability recorder; the network and every layer
    /// that reaches the network through [`Network::recorder`] will emit
    /// trace events into it. Defaults to [`Recorder::disabled`].
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// A cheap clone of the installed recorder (disabled by default).
    /// Layers that hold a `&mut Network` clone this to emit their own
    /// events into the same shared trace.
    pub fn recorder(&self) -> Recorder {
        self.recorder.clone()
    }

    /// Registers a node under a unique name.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered.
    pub fn add_node(&mut self, name: &str) -> NodeId {
        assert!(!self.by_name.contains_key(name), "duplicate node name {name:?}");
        let id = NodeId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a node by name.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// The name of a node.
    pub fn name(&self, id: NodeId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// The simulated clock, in seconds.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Message latency applied by [`Network::send`] when no per-link
    /// override exists.
    pub fn set_default_latency(&mut self, latency: u64) {
        self.default_latency = latency;
    }

    /// Overrides the latency of the directed link `from → to`.
    pub fn set_link_latency(&mut self, from: NodeId, to: NodeId, latency: u64) {
        self.link_latency.insert((from, to), latency);
    }

    fn latency(&self, from: NodeId, to: NodeId) -> u64 {
        self.link_latency.get(&(from, to)).copied().unwrap_or(self.default_latency)
    }

    /// Installs the reachability oracle consulted at *delivery time*
    /// for every message. In the full system this is wired to BGP route
    /// validity — the paper's Figure 1 loop.
    pub fn set_reachability(&mut self, oracle: Box<dyn FnMut(NodeId, NodeId) -> bool>) {
        self.oracle = Some(oracle);
    }

    /// Removes the reachability oracle (everything reachable again).
    pub fn clear_reachability(&mut self) {
        self.oracle = None;
    }

    /// Delivery statistics so far.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    fn push(&mut self, at: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Event { at, seq, kind }));
    }

    /// Sends `payload` from `from` to `to`, arriving after the link's
    /// latency plus any configured stall (fault layer permitting).
    pub fn send(&mut self, from: NodeId, to: NodeId, payload: Vec<u8>) {
        self.send_after(from, to, payload, 0);
    }

    /// Like [`Network::send`], but the sender holds the frame for an
    /// extra `hold` seconds before it enters the link. This is the
    /// sender-side shaping hook: a repository that stretches its serve
    /// time (the schedule-gaming half of Stalloris) delays its answers
    /// here, on top of — not instead of — link latency and stalls.
    pub fn send_after(&mut self, from: NodeId, to: NodeId, payload: Vec<u8>, hold: u64) {
        self.stats.sent += 1;
        let stall = self.faults.stall_delay(from, to);
        let at = self.now + hold + self.latency(from, to) + stall;
        if self.recorder.is_enabled() {
            self.recorder.count("net.sent", 1);
            self.recorder
                .event(self.now, "net", "send")
                .str("from", self.name(from))
                .str("to", self.name(to))
                .u64("bytes", payload.len() as u64)
                .u64("stall", stall + hold)
                .u64("deliver_at", at)
                .emit();
        }
        self.push(at, EventKind::Deliver { from, to, payload });
    }

    /// Sets a timer on `node` firing after `delay` seconds, carrying a
    /// caller-chosen `token`.
    pub fn set_timer(&mut self, node: NodeId, delay: u64, token: u64) {
        let at = self.now + delay;
        self.push(at, EventKind::Timer { node, token });
    }

    /// Cancels every pending timer on `node` carrying `token`.
    pub fn cancel_timer(&mut self, node: NodeId, token: u64) {
        let events = std::mem::take(&mut self.queue);
        self.queue = events
            .into_iter()
            .filter(|Reverse(e)| {
                !matches!(e.kind, EventKind::Timer { node: n, token: t } if n == node && t == token)
            })
            .collect();
    }

    /// Discards every in-flight message between `a` and `b` (both
    /// directions), counting each as dropped. Models a client tearing
    /// down a timed-out session: bytes still on the wire never reach
    /// the application.
    pub fn flush_pair(&mut self, a: NodeId, b: NodeId) {
        let events = std::mem::take(&mut self.queue);
        self.queue = events
            .into_iter()
            .filter(|Reverse(e)| {
                let purge = matches!(
                    e.kind,
                    EventKind::Deliver { from, to, .. }
                        if (from == a && to == b) || (from == b && to == a)
                );
                if purge {
                    self.stats.dropped += 1;
                }
                !purge
            })
            .collect();
    }

    /// Jumps the clock forward to `t` (no-op when `t` is in the past).
    /// Lets experiment drivers pace rounds on absolute simulated time.
    ///
    /// # Panics
    ///
    /// Panics if an event is queued before `t` — stepping over pending
    /// work would silently reorder the simulation.
    pub fn advance_to(&mut self, t: u64) {
        if let Some(Reverse(e)) = self.queue.peek() {
            assert!(e.at >= t, "advance_to({t}) would skip an event queued at {}", e.at);
        }
        self.now = self.now.max(t);
    }

    /// Whether any events remain queued.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Timestamp of the earliest queued event, if any.
    ///
    /// Lets a driver pump the network only up to a deadline: peek, and
    /// if the next event lies past the deadline, stop stepping and
    /// [`Network::advance_to`] the deadline instead — the late event
    /// stays queued. The RTR fabric uses this to model a bounded poll
    /// window: frames stalled beyond it leave routers visibly stale.
    pub fn next_event_at(&self) -> Option<u64> {
        self.queue.peek().map(|Reverse(e)| e.at)
    }

    /// Advances to the next event and resolves it. Returns `None` when
    /// the queue is empty. The clock jumps to the event's time.
    pub fn step(&mut self) -> Option<Occurrence> {
        let Reverse(event) = self.queue.pop()?;
        debug_assert!(event.at >= self.now, "time went backwards");
        self.now = event.at;
        Some(match event.kind {
            EventKind::Timer { node, token } => {
                if self.recorder.is_enabled() {
                    self.recorder
                        .event(self.now, "net", "timer")
                        .str("node", self.name(node))
                        .u64("token", token)
                        .emit();
                }
                Occurrence::Timer { node, token }
            }
            EventKind::Deliver { from, to, mut payload } => {
                // One scheduled-fault evaluation per message, advancing
                // the link counter exactly once.
                let fate = self.faults.on_message(from, to);
                if let Some(reason) = self.drop_reason(from, to, fate.drop) {
                    self.stats.dropped += 1;
                    if self.recorder.is_enabled() {
                        self.recorder.count("net.dropped", 1);
                        self.recorder
                            .event(self.now, "net", "drop")
                            .str("from", self.name(from))
                            .str("to", self.name(to))
                            .str("reason", reason.label())
                            .emit();
                    }
                    return Some(Occurrence::Dropped { from, to, reason });
                }
                let offset = fate.corrupt.or_else(|| {
                    // Probabilistic corruption always hits byte 0 (the
                    // frame tag); only scheduled faults aim deeper.
                    self.roll(self.faults.corruption_prob(from, to)).then_some(0)
                });
                let corrupt = offset.is_some();
                if let Some(offset) = offset {
                    // Flip one payload byte; digests downstream catch it.
                    if !payload.is_empty() {
                        let at = offset.min(payload.len() - 1);
                        payload[at] ^= 0xff;
                    }
                    self.stats.corrupted += 1;
                } else {
                    self.stats.delivered += 1;
                }
                if self.recorder.is_enabled() {
                    self.recorder.count(if corrupt { "net.corrupted" } else { "net.delivered" }, 1);
                    self.recorder
                        .event(self.now, "net", "deliver")
                        .str("from", self.name(from))
                        .str("to", self.name(to))
                        .u64("bytes", payload.len() as u64)
                        .bool("corrupted", corrupt)
                        .emit();
                }
                Occurrence::Delivered(Delivery { from, to, payload, corrupted_in_flight: corrupt })
            }
        })
    }

    fn drop_reason(
        &mut self,
        from: NodeId,
        to: NodeId,
        scheduled_drop: bool,
    ) -> Option<DropReason> {
        if self.faults.is_down(from) || self.faults.is_down(to) {
            return Some(DropReason::NodeDown);
        }
        if self.faults.is_partitioned(from, to) {
            return Some(DropReason::Partition);
        }
        if let Some(oracle) = self.oracle.as_mut() {
            if !oracle(from, to) {
                return Some(DropReason::Unreachable);
            }
        }
        if scheduled_drop {
            return Some(DropReason::Scheduled);
        }
        if self.roll_mut(from, to) {
            return Some(DropReason::Loss);
        }
        None
    }

    fn roll(&mut self, prob: f64) -> bool {
        prob > 0.0 && self.rng.gen_bool(prob)
    }

    fn roll_mut(&mut self, from: NodeId, to: NodeId) -> bool {
        let p = self.faults.loss_prob(from, to);
        self.roll(p)
    }

    /// Runs the simulation until the queue drains, collecting every
    /// occurrence. Convenience for tests; protocol drivers usually
    /// interleave their own logic between [`Network::step`] calls.
    pub fn run_to_idle(&mut self) -> Vec<Occurrence> {
        let mut out = Vec::new();
        while let Some(occ) = self.step() {
            out.push(occ);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_nodes() -> (Network, NodeId, NodeId) {
        let mut net = Network::new(42);
        let a = net.add_node("a");
        let b = net.add_node("b");
        (net, a, b)
    }

    #[test]
    fn delivery_in_time_order() {
        let (mut net, a, b) = two_nodes();
        net.set_timer(a, 5, 99); // fires before the message (latency 10)
        net.send(a, b, vec![1, 2, 3]);
        let occs = net.run_to_idle();
        assert_eq!(occs.len(), 2);
        assert_eq!(occs[0], Occurrence::Timer { node: a, token: 99 });
        match &occs[1] {
            Occurrence::Delivered(d) => {
                assert_eq!((d.from, d.to), (a, b));
                assert_eq!(d.payload, vec![1, 2, 3]);
                assert!(!d.corrupted_in_flight);
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        assert_eq!(net.now(), 10);
        assert_eq!(net.stats().delivered, 1);
    }

    #[test]
    fn next_event_at_peeks_without_stepping() {
        let (mut net, a, b) = two_nodes();
        assert_eq!(net.next_event_at(), None);
        net.send(a, b, vec![1]); // default latency 10
        net.set_timer(a, 25, 7);
        assert_eq!(net.next_event_at(), Some(10));
        assert_eq!(net.now(), 0, "peeking must not advance time");
        net.step();
        assert_eq!(net.next_event_at(), Some(25));
        // A deadline-bounded driver stops here and leaves the event queued.
        net.advance_to(20);
        assert_eq!(net.next_event_at(), Some(25));
        net.step();
        assert_eq!(net.next_event_at(), None);
    }

    #[test]
    fn same_time_events_keep_send_order() {
        let (mut net, a, b) = two_nodes();
        for i in 0..5u8 {
            net.send(a, b, vec![i]);
        }
        let payloads: Vec<u8> = net
            .run_to_idle()
            .into_iter()
            .map(|o| match o {
                Occurrence::Delivered(d) => d.payload[0],
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(payloads, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn partition_drops_both_directions() {
        let (mut net, a, b) = two_nodes();
        net.faults.partition(a, b);
        net.send(a, b, vec![1]);
        net.send(b, a, vec![2]);
        let occs = net.run_to_idle();
        assert!(occs
            .iter()
            .all(|o| matches!(o, Occurrence::Dropped { reason: DropReason::Partition, .. })));
        assert_eq!(net.stats().dropped, 2);
        // Healing restores delivery.
        net.faults.heal(a, b);
        net.send(a, b, vec![3]);
        assert!(matches!(net.step(), Some(Occurrence::Delivered(_))));
    }

    #[test]
    fn node_down_blocks_traffic() {
        let (mut net, a, b) = two_nodes();
        net.faults.set_down(b, true);
        net.send(a, b, vec![1]);
        assert!(matches!(
            net.step(),
            Some(Occurrence::Dropped { reason: DropReason::NodeDown, .. })
        ));
    }

    #[test]
    fn scheduled_corruption_hits_exactly_once() {
        let (mut net, a, b) = two_nodes();
        net.faults.corrupt_next(a, b, 1);
        net.send(a, b, vec![0xaa, 0xbb]);
        net.send(a, b, vec![0xaa, 0xbb]);
        let occs = net.run_to_idle();
        match (&occs[0], &occs[1]) {
            (Occurrence::Delivered(first), Occurrence::Delivered(second)) => {
                assert!(first.corrupted_in_flight);
                assert_eq!(first.payload, vec![0x55, 0xbb]); // first byte flipped
                assert!(!second.corrupted_in_flight);
                assert_eq!(second.payload, vec![0xaa, 0xbb]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(net.stats().corrupted, 1);
        assert_eq!(net.stats().delivered, 1);
    }

    #[test]
    fn scheduled_drop_is_directional() {
        let (mut net, a, b) = two_nodes();
        net.faults.drop_next(a, b, 1);
        net.send(b, a, vec![1]); // unaffected direction
        net.send(a, b, vec![2]); // dropped
        net.send(a, b, vec![3]); // delivered
        let occs = net.run_to_idle();
        assert!(matches!(occs[0], Occurrence::Delivered(_)));
        assert!(matches!(occs[1], Occurrence::Dropped { reason: DropReason::Scheduled, .. }));
        assert!(matches!(occs[2], Occurrence::Delivered(_)));
    }

    #[test]
    fn reachability_oracle_consulted_at_delivery_time() {
        let (mut net, a, b) = two_nodes();
        // Message enqueued while "reachable"...
        net.send(a, b, vec![1]);
        // ...but the oracle (BGP, in the full system) flips before
        // delivery.
        net.set_reachability(Box::new(move |_, to| to != b));
        assert!(matches!(
            net.step(),
            Some(Occurrence::Dropped { reason: DropReason::Unreachable, .. })
        ));
        net.clear_reachability();
        net.send(a, b, vec![2]);
        assert!(matches!(net.step(), Some(Occurrence::Delivered(_))));
    }

    #[test]
    fn probabilistic_loss_is_seeded_and_reproducible() {
        let run = |seed: u64| -> Vec<bool> {
            let mut net = Network::new(seed);
            let a = net.add_node("a");
            let b = net.add_node("b");
            net.faults.set_loss(a, b, 0.5);
            for _ in 0..64 {
                net.send(a, b, vec![0]);
            }
            net.run_to_idle().into_iter().map(|o| matches!(o, Occurrence::Delivered(_))).collect()
        };
        let first = run(7);
        assert_eq!(first, run(7), "same seed, same outcome");
        assert_ne!(first, run(8), "different seed, different outcome");
        let delivered = first.iter().filter(|d| **d).count();
        assert!((8..=56).contains(&delivered), "loss rate wildly off: {delivered}/64");
    }

    #[test]
    fn per_link_latency_overrides_default() {
        let (mut net, a, b) = two_nodes();
        net.set_link_latency(a, b, 50); // directed: b→a keeps default 10
        net.send(a, b, vec![1]);
        net.send(b, a, vec![2]);
        let occs = net.run_to_idle();
        // The b→a message (latency 10) arrives first.
        match &occs[0] {
            Occurrence::Delivered(d) => assert_eq!((d.from, d.to), (b, a)),
            other => panic!("{other:?}"),
        }
        assert_eq!(net.now(), 50);
    }

    #[test]
    fn node_registry() {
        let (net, a, b) = two_nodes();
        assert_eq!(net.node("a"), Some(a));
        assert_eq!(net.node("b"), Some(b));
        assert_eq!(net.node("c"), None);
        assert_eq!(net.name(a), "a");
        assert_eq!(net.node_count(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_names_rejected() {
        let mut net = Network::new(0);
        net.add_node("x");
        net.add_node("x");
    }

    #[test]
    fn stall_delays_delivery_without_dropping() {
        let (mut net, a, b) = two_nodes();
        net.faults.set_stall(a, b, 300);
        net.send(a, b, vec![1]); // arrives at 10 + 300
        net.send(b, a, vec![2]); // reverse direction unaffected: 10
        let occs = net.run_to_idle();
        match &occs[0] {
            Occurrence::Delivered(d) => assert_eq!((d.from, d.to), (b, a)),
            other => panic!("{other:?}"),
        }
        assert!(matches!(&occs[1], Occurrence::Delivered(d) if d.payload == vec![1]));
        assert_eq!(net.now(), 310);
        assert_eq!(net.stats().dropped, 0);
        // Clearing the stall restores normal latency.
        net.faults.set_stall(a, b, 0);
        net.send(a, b, vec![3]);
        net.run_to_idle();
        assert_eq!(net.now(), 320);
    }

    #[test]
    fn corruption_offset_targets_payload_byte() {
        let (mut net, a, b) = two_nodes();
        net.faults.corrupt_nth_at(a, b, 1, 2);
        // Offset beyond the payload clamps to the last byte.
        net.faults.corrupt_nth_at(a, b, 2, 99);
        net.send(a, b, vec![0xaa, 0xbb, 0xcc]);
        net.send(a, b, vec![0xaa, 0xbb]);
        let occs = net.run_to_idle();
        match (&occs[0], &occs[1]) {
            (Occurrence::Delivered(first), Occurrence::Delivered(second)) => {
                assert_eq!(first.payload, vec![0xaa, 0xbb, 0x33]);
                assert_eq!(second.payload, vec![0xaa, 0x44]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(net.stats().corrupted, 2);
    }

    #[test]
    fn cancel_timer_removes_matching_timers_only() {
        let (mut net, a, b) = two_nodes();
        net.set_timer(a, 5, 1);
        net.set_timer(a, 6, 2);
        net.set_timer(b, 7, 1); // other node, same token: survives
        net.cancel_timer(a, 1);
        let occs = net.run_to_idle();
        assert_eq!(
            occs,
            vec![Occurrence::Timer { node: a, token: 2 }, Occurrence::Timer { node: b, token: 1 },]
        );
    }

    #[test]
    fn flush_pair_purges_in_flight_messages_both_ways() {
        let mut net = Network::new(0);
        let a = net.add_node("a");
        let b = net.add_node("b");
        let c = net.add_node("c");
        net.send(a, b, vec![1]);
        net.send(b, a, vec![2]);
        net.send(a, c, vec![3]); // unrelated pair survives
        net.set_timer(a, 10, 9); // timers survive
        net.flush_pair(a, b);
        let occs = net.run_to_idle();
        assert_eq!(occs.len(), 2);
        assert!(matches!(&occs[0], Occurrence::Delivered(d) if d.to == c));
        assert!(matches!(occs[1], Occurrence::Timer { token: 9, .. }));
        assert_eq!(net.stats().dropped, 2);
    }

    #[test]
    fn advance_to_moves_clock_monotonically() {
        let (mut net, a, _b) = two_nodes();
        net.advance_to(100);
        assert_eq!(net.now(), 100);
        net.advance_to(50); // past: no-op
        assert_eq!(net.now(), 100);
        net.set_timer(a, 20, 1);
        net.advance_to(120); // exactly at the event is allowed
        assert!(matches!(net.step(), Some(Occurrence::Timer { .. })));
    }

    #[test]
    #[should_panic(expected = "would skip an event")]
    fn advance_to_refuses_to_skip_pending_events() {
        let (mut net, a, _b) = two_nodes();
        net.set_timer(a, 20, 1);
        net.advance_to(21);
    }

    #[test]
    fn recorder_captures_send_deliver_drop_and_timer_events() {
        let (mut net, a, b) = two_nodes();
        let rec = Recorder::new();
        net.set_recorder(rec.clone());
        net.faults.set_stall(a, b, 5);
        net.send(a, b, vec![1, 2]);
        net.faults.drop_next(a, b, 1);
        net.send(a, b, vec![3]);
        net.set_timer(b, 1, 7);
        net.run_to_idle();
        let kinds: Vec<&str> = rec.events().iter().map(|e| e.kind).collect();
        // The scheduled drop is evaluated at delivery time, so it hits
        // the first message to arrive.
        assert_eq!(kinds, vec!["send", "send", "timer", "drop", "deliver"]);
        let metrics = rec.metrics();
        assert_eq!(metrics.counter("net.sent"), 2);
        assert_eq!(metrics.counter("net.delivered"), 1);
        assert_eq!(metrics.counter("net.dropped"), 1);
        // The first send records its stall and scheduled arrival.
        let send = &rec.events()[0];
        assert!(send.fields.contains(&("stall", rpki_obs::FieldValue::U64(5))));
        assert!(send.fields.contains(&("deliver_at", rpki_obs::FieldValue::U64(15))));
    }

    #[test]
    fn fault_free_run_consumes_no_randomness() {
        // Two identical fault-free runs with different seeds must agree:
        // determinism cannot silently depend on the seed.
        let run = |seed| {
            let mut net = Network::new(seed);
            let a = net.add_node("a");
            let b = net.add_node("b");
            net.send(a, b, vec![9]);
            net.run_to_idle()
        };
        assert_eq!(run(1), run(2));
    }
}
