//! Large-scale smoke tests, `#[ignore]`d by default:
//!
//! ```sh
//! cargo test --release --test scale -- --ignored
//! ```
//!
//! They document that the pipeline holds up at thousands of
//! organisations — the scale the paper's footnote 4 projects for full
//! deployment ("about 1200–1400 ROAs, less than 1% of projected
//! deployment" puts full deployment above 100k ROAs; several thousand
//! here keeps the ignored run under a minute in release mode).

use netsim::Network;
use rpki_objects::Moment;
use rpki_repo::RepoRegistry;
use rpki_rp::{NetworkSource, ValidationConfig, Validator};
use topogen::{Config, SyntheticInternet};

fn big_config() -> Config {
    Config {
        seed: 404,
        transits: 120,
        stubs: 3000,
        roa_adoption: 1.0,
        cross_border: 0.15,
        anchors: true,
        self_hosting: 1.0,
    }
}

#[test]
#[ignore = "large; run with --ignored in release mode"]
fn thousands_of_orgs_validate() {
    let mut world = SyntheticInternet::generate(big_config());
    let mut net = Network::new(0);
    let mut repos = RepoRegistry::new();
    let tal = world.materialize(&mut net, &mut repos, Moment(1));
    let rp = net.add_node("relying-party");
    let mut source = NetworkSource::new(&mut net, &repos, rp);
    let run = Validator::new(ValidationConfig::at(Moment(2)))
        .run(&mut source, std::slice::from_ref(&tal));
    assert_eq!(run.cas.len(), 6 + world.orgs.len());
    let expected: usize =
        world.orgs.iter().filter(|o| o.adopted_roa).map(|o| o.prefixes.len()).sum();
    assert_eq!(run.vrps.len(), expected);
    assert!(run.vrps.len() > 3000);
}

#[test]
#[ignore = "large; run with --ignored in release mode"]
fn thousands_of_orgs_route() {
    use bgp_sim::{propagate_with_stats, RpkiPolicy};
    use rpki_rp::{Vrp, VrpCache};
    let world = SyntheticInternet::generate(big_config());
    let cache: VrpCache = world
        .orgs
        .iter()
        .filter(|o| o.adopted_roa)
        .flat_map(|o| o.prefixes.iter().map(move |&p| Vrp::new(p, p.len(), o.asn)))
        .collect();
    // Propagate a 50-prefix slice across the whole graph.
    let slice: Vec<_> = world.announcements.iter().copied().take(50).collect();
    let (state, stats) =
        propagate_with_stats(&world.topology, &slice, RpkiPolicy::DropInvalid, &cache)
            .expect("converges");
    // Every AS must hold a route for each propagated prefix (the graph
    // is connected).
    for ann in &slice {
        let holders =
            world.topology.ases().filter(|a| state.best_route(*a, ann.prefix).is_some()).count();
        assert_eq!(holders, world.topology.len(), "{} under-propagated", ann.prefix);
    }
    // The validity memo collapses per-candidate classification to one
    // per (prefix, origin): never more misses than prefixes × origins.
    assert!(stats.memo_misses <= slice.len() * slice.len());
    assert!(stats.memo_hits > stats.memo_misses, "memo should dominate at scale");
}

#[test]
#[ignore = "large; run with --ignored in release mode"]
fn worklist_engine_never_rounds_regresses_reference() {
    use bgp_sim::{propagate_with_stats, reference, RpkiPolicy};
    use rpki_rp::VrpCache;
    // A smaller world than `big_config` — the reference engine is the
    // slow side of this comparison.
    let world = SyntheticInternet::generate(Config {
        seed: 404,
        transits: 40,
        stubs: 400,
        roa_adoption: 1.0,
        cross_border: 0.15,
        anchors: false,
        self_hosting: 1.0,
    });
    let slice: Vec<_> = world.announcements.iter().copied().take(10).collect();
    let cache = VrpCache::new();
    for policy in [RpkiPolicy::Ignore, RpkiPolicy::DropInvalid, RpkiPolicy::DeprefInvalid] {
        let (state, stats) =
            propagate_with_stats(&world.topology, &slice, policy, &cache).expect("converges");
        let (oracle, oracle_rounds) =
            reference::propagate(&world.topology, &slice, policy, &cache).expect("converges");
        assert_eq!(state, oracle, "engines diverged under {policy:?}");
        assert!(
            stats.rounds <= oracle_rounds,
            "worklist took {} rounds, reference {oracle_rounds} under {policy:?}",
            stats.rounds,
        );
    }
}
