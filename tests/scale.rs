//! Large-scale smoke tests, `#[ignore]`d by default:
//!
//! ```sh
//! cargo test --release --test scale -- --ignored
//! ```
//!
//! They document that the pipeline holds up at thousands of
//! organisations — the scale the paper's footnote 4 projects for full
//! deployment ("about 1200–1400 ROAs, less than 1% of projected
//! deployment" puts full deployment above 100k ROAs; several thousand
//! here keeps the ignored run under a minute in release mode).

use netsim::Network;
use rpki_objects::Moment;
use rpki_repo::RepoRegistry;
use rpki_rp::{NetworkSource, ValidationConfig, Validator};
use topogen::{Config, SyntheticInternet};

fn big_config() -> Config {
    Config {
        seed: 404,
        transits: 120,
        stubs: 3000,
        roa_adoption: 1.0,
        cross_border: 0.15,
        anchors: true,
    }
}

#[test]
#[ignore = "large; run with --ignored in release mode"]
fn thousands_of_orgs_validate() {
    let mut world = SyntheticInternet::generate(big_config());
    let mut net = Network::new(0);
    let mut repos = RepoRegistry::new();
    let tal = world.materialize(&mut net, &mut repos, Moment(1));
    let rp = net.add_node("relying-party");
    let mut source = NetworkSource::new(&mut net, &repos, rp);
    let run =
        Validator::new(ValidationConfig::at(Moment(2))).run(&mut source, std::slice::from_ref(&tal));
    assert_eq!(run.cas.len(), 6 + world.orgs.len());
    let expected: usize =
        world.orgs.iter().filter(|o| o.adopted_roa).map(|o| o.prefixes.len()).sum();
    assert_eq!(run.vrps.len(), expected);
    assert!(run.vrps.len() > 3000);
}

#[test]
#[ignore = "large; run with --ignored in release mode"]
fn thousands_of_orgs_route() {
    use bgp_sim::{propagate, RpkiPolicy};
    use rpki_rp::{Vrp, VrpCache};
    let world = SyntheticInternet::generate(big_config());
    let cache: VrpCache = world
        .orgs
        .iter()
        .filter(|o| o.adopted_roa)
        .flat_map(|o| o.prefixes.iter().map(move |&p| Vrp::new(p, p.len(), o.asn)))
        .collect();
    // Propagate a 50-prefix slice across the whole graph.
    let slice: Vec<_> = world.announcements.iter().copied().take(50).collect();
    let state = propagate(&world.topology, &slice, RpkiPolicy::DropInvalid, &cache);
    // Every AS must hold a route for each propagated prefix (the graph
    // is connected).
    for ann in &slice {
        let holders = world
            .topology
            .ases()
            .filter(|a| state.best_route(*a, ann.prefix).is_some())
            .count();
        assert_eq!(holders, world.topology.len(), "{} under-propagated", ann.prefix);
    }
}
