//! Workspace integration: the full pipeline on a generated Internet —
//! topology → CA hierarchy → repositories → network sync → validation
//! → BGP → attack → monitor → re-validation.

use bgp_sim::{propagate, RpkiPolicy};
use ipres::Asn;
use netsim::Network;
use rpki_attacks::{damage_between, plan_whack, probes_for, CaView, Monitor, MonitorSnapshot};
use rpki_objects::Moment;
use rpki_repo::RepoRegistry;
use rpki_rp::{NetworkSource, Route, RouteValidity, ValidationConfig, Validator};
use topogen::{Config, OrgKind, ParentRef, SyntheticInternet};

fn build_world() -> (SyntheticInternet, Network, RepoRegistry, rpki_objects::TrustAnchorLocator) {
    let mut world = SyntheticInternet::generate(Config::small(2024));
    let mut net = Network::new(9);
    let mut repos = RepoRegistry::new();
    let tal = world.materialize(&mut net, &mut repos, Moment(1));
    (world, net, repos, tal)
}

#[test]
fn generated_world_validates_and_routes() {
    let (world, mut net, repos, tal) = build_world();
    let rp = net.add_node("relying-party");

    // Validate over the network.
    let mut source = NetworkSource::new(&mut net, &repos, rp);
    let run = Validator::new(ValidationConfig::at(Moment(2)))
        .run(&mut source, std::slice::from_ref(&tal));
    assert_eq!(run.cas.len(), 6 + world.orgs.len());
    let expected_vrps: usize =
        world.orgs.iter().filter(|o| o.adopted_roa).map(|o| o.prefixes.len()).sum();
    assert_eq!(run.vrps.len(), expected_vrps);

    // Every legitimate announcement is RFC 6811-valid.
    let cache = run.vrp_cache();
    for ann in &world.announcements {
        assert_eq!(
            cache.classify(Route::new(ann.prefix, ann.origin)),
            RouteValidity::Valid,
            "{} ← {}",
            ann.prefix,
            ann.origin
        );
    }

    // BGP: under drop-invalid, a hijack of a random stub's prefix by a
    // random transit fails everywhere.
    let victim = world.orgs.iter().find(|o| o.kind == OrgKind::Stub).expect("stubs exist");
    let attacker = world
        .orgs
        .iter()
        .find(|o| o.kind == OrgKind::Transit && o.asn != victim.asn)
        .expect("transits exist");
    let mut anns = world.announcements.clone();
    anns.push(bgp_sim::Announcement { prefix: victim.prefixes[0], origin: attacker.asn });
    let state =
        propagate(&world.topology, &anns, RpkiPolicy::DropInvalid, &cache).expect("converges");
    let frac_drop = state.reachability_of(
        world.topology.ases().filter(|a| *a != attacker.asn),
        victim.prefixes[0].addr(),
        victim.asn,
    );
    // Not exactly 1.0: ASes whose forwarding path *transits the
    // attacker* are blackholed by the attacker's own origination —
    // origin validation protects everyone not already routing through
    // the liar. Off-path ASes (the overwhelming majority) all recover.
    assert!(frac_drop > 0.85, "drop-invalid must protect off-path ASes: {frac_drop}");
    // Under Ignore the attacker's shorter paths capture far more.
    let state = propagate(&world.topology, &anns, RpkiPolicy::Ignore, &cache).expect("converges");
    let frac_ignore = state.reachability_of(
        world.topology.ases().filter(|a| *a != attacker.asn),
        victim.prefixes[0].addr(),
        victim.asn,
    );
    assert!(
        frac_ignore < frac_drop,
        "RPKI must strictly improve reachability: ignore {frac_ignore} vs drop {frac_drop}"
    );
}

#[test]
fn whack_on_generated_world_is_targeted_and_detected() {
    let (mut world, mut net, mut repos, tal) = build_world();
    let rp = net.add_node("relying-party");

    // Baseline validation + monitor snapshot.
    let before = {
        let mut source = NetworkSource::new(&mut net, &repos, rp);
        Validator::new(ValidationConfig::at(Moment(2))).run(&mut source, std::slice::from_ref(&tal))
    };
    let mut monitor = Monitor::new();
    monitor.observe(MonitorSnapshot::capture(&repos, Moment(2)));

    // Pick a stub with a ROA whose parent is an org (so the parent's
    // parent — an RIR or org — could whack it; here the direct parent
    // manipulates: a grandchild whack seen from the RIR would use a
    // chain of length 2).
    let (stub_idx, stub) = world
        .orgs
        .iter()
        .enumerate()
        .find(|(_, o)| {
            o.kind == OrgKind::Stub && o.adopted_roa && matches!(o.parent, ParentRef::Org(_))
        })
        .expect("an adopted stub exists");
    let ParentRef::Org(parent_idx) = stub.parent else { unreachable!() };
    let stub_asn = stub.asn;
    let parent_ca_idx = world.orgs[parent_idx].ca;

    // The manipulator is the stub's provider. Its view of… itself? No:
    // the *RIR* whacks through the provider. Chain: provider's RC
    // (issued by the RIR) → we need the provider CA's issued cert for
    // the stub. Simpler grandchild case: the RIR manipulates, chain =
    // [provider view].
    let rir_idx = {
        let mut at = parent_idx;
        loop {
            match world.orgs[at].parent {
                ParentRef::Rir(r) => break 1 + r,
                ParentRef::Org(p) => at = p,
            }
        }
    };
    let provider_rc = world.cas[rir_idx]
        .issued_cert_for(world.cas[parent_ca_idx].key_id())
        .expect("provider certified by RIR")
        .clone();
    let provider_view = CaView::from_repos(&provider_rc, &repos);
    let target_file =
        provider_view.roas.iter().find(|r| r.asn() == stub_asn).map(|r| r.file_name());

    // The stub's ROA is issued by the stub itself (its own CA), not the
    // provider — so the provider's pub point holds the stub's RC, and
    // the chain for the RIR is [provider, stub].
    assert!(target_file.is_none(), "stub ROAs live at the stub's own pub point");
    let stub_rc = world.cas[parent_ca_idx]
        .issued_cert_for(world.cas[world.orgs[stub_idx].ca].key_id())
        .expect("stub certified by provider")
        .clone();
    let stub_view = CaView::from_repos(&stub_rc, &repos);
    let target_file = stub_view
        .roas
        .iter()
        .find(|r| r.asn() == stub_asn)
        .expect("stub's ROA at its own point")
        .file_name();

    let chain = vec![provider_view, stub_view];
    let plan = plan_whack(&chain, &target_file).expect("plan");
    assert!(plan.reissued >= 1, "great-grandchild whack needs reissues");
    plan.execute(&mut world.cas[rir_idx], Moment(3)).expect("execute");
    world.publish_all(&mut repos, Moment(3));

    // Re-validate: only the victim lost validity.
    let after = {
        let mut source = NetworkSource::new(&mut net, &repos, rp);
        Validator::new(ValidationConfig::at(Moment(4))).run(&mut source, std::slice::from_ref(&tal))
    };
    let damage = damage_between(&before.vrps, &after.vrps, &probes_for(&before.vrps));
    assert!(damage.clean_except(&[stub_asn]), "collateral: {damage:?}");
    assert!(damage.lost_vrps.iter().any(|v| v.asn == stub_asn));

    // And the monitor flagged the manipulation.
    let events = monitor.observe(MonitorSnapshot::capture(&repos, Moment(4)));
    assert!(
        events.iter().any(|e| e.classification.is_suspicious()),
        "whack escaped the monitor: {events:#?}"
    );
}

#[test]
fn transport_faults_degrade_validation_gracefully() {
    let (world, mut net, repos, tal) = build_world();
    let rp = net.add_node("relying-party");

    // Take down one transit's repository host.
    let victim_transit = world.orgs.iter().find(|o| o.kind == OrgKind::Transit).expect("transits");
    let host = world.cas[victim_transit.ca].sia().host().to_owned();
    let node = repos.node_of(&host).expect("materialized");
    net.faults.set_down(node, true);

    let mut source = NetworkSource::new(&mut net, &repos, rp);
    let run = Validator::new(ValidationConfig::at(Moment(2)))
        .run(&mut source, std::slice::from_ref(&tal));

    // The transit's own ROA and every stub *certified by it* are gone;
    // everything else survives.
    assert!(run.vrps.iter().all(|v| v.asn != victim_transit.asn));
    let dependents: Vec<Asn> = world
        .orgs
        .iter()
        .filter(
            |o| matches!(o.parent, ParentRef::Org(p) if world.orgs[p].asn == victim_transit.asn),
        )
        .map(|o| o.asn)
        .collect();
    for dep in &dependents {
        assert!(
            run.vrps.iter().all(|v| v.asn != *dep),
            "descendant {dep} should be unreachable with its issuer's repo down"
        );
    }
    let unaffected: usize = world
        .orgs
        .iter()
        .filter(|o| o.adopted_roa && o.asn != victim_transit.asn && !dependents.contains(&o.asn))
        .map(|o| o.prefixes.len())
        .sum();
    assert_eq!(run.vrps.len(), unaffected);
}
