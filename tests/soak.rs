//! Soak test: 300 simulated days of normal RPKI operations — daily
//! publication refresh, ROA renewal before expiry, a key rollover —
//! with one injected attack and one month-long repository outage.
//! Asserts that:
//!
//! - validity never degrades outside the injected attack window;
//! - the monitor stays quiet through all the churn and flags the attack;
//! - the Suspenders layer bridges the attack window entirely;
//! - a resilient relying party fetching over the real (faultable)
//!   network bridges the outage from its snapshot cache, without a
//!   single spurious validity flip outside the two windows — and
//!   without masking the attack, which is an authority-side removal
//!   the stale cache must pass through.

use rpki_attacks::{Monitor, MonitorSnapshot};
use rpki_objects::{Moment, Span};
use rpki_repo::{Freshness, SyncPolicy};
use rpki_risk::fixtures::asn;
use rpki_risk::{ModelRpki, SuspendersConfig, SuspendersState, ValidationOptions};
use rpki_rp::{ResilienceConfig, ResilientState, Route, RouteValidity};

const DAY: u64 = 86_400;

fn day(n: u64) -> Moment {
    Moment(n * DAY)
}

#[test]
fn three_hundred_days_of_operations() {
    let mut w = ModelRpki::build();
    let mut monitor = Monitor::new();
    let mut suspenders = SuspendersState::new(SuspendersConfig { hold_down: Span::days(45) });
    let victim_route = Route::new("63.174.16.0/20".parse().unwrap(), asn::CONTINENTAL);

    // The attack: at day 100 Continental is coerced into stealthily
    // withdrawing its covering ROA; at day 140 it reissues (dispute
    // resolved).
    let attack_day = 100u64;
    let restore_day = 140u64;
    let mut withdrawn_file: Option<String> = None;

    // The outage: Continental's repository host is down for a month,
    // disjoint from the attack window and the day-200 key rollover.
    let outage_start = 220u64;
    let outage_end = 250u64;

    // The resilient relying party fetches over the simulated network
    // on the same weekly cadence, with a snapshot budget wide enough
    // to bridge the outage (last good sync day 217 → ages peak ~28d).
    let policy = SyncPolicy::default();
    let mut resilient = ResilientState::new(ResilienceConfig {
        max_stale: 35 * DAY,
        failure_threshold: 3,
        cooldown: DAY,
    });

    let mut monitor_alarms: Vec<u64> = Vec::new();

    for d in 1..=300u64 {
        let now = day(d);
        // Keep the network's clock on calendar time so snapshot ages
        // and circuit cool-downs are measured in real simulated days.
        w.net.advance_to(d * DAY);

        // -- The outage window --
        if d == outage_start {
            let node = w.repos.node_of("rpki.continental.example").expect("exists");
            w.net.faults.set_down(node, true);
        }
        if d == outage_end {
            let node = w.repos.node_of("rpki.continental.example").expect("exists");
            w.net.faults.set_down(node, false);
        }

        // -- CA operations --
        // Renew ROAs within 90 days of expiry (monthly maintenance).
        if d % 30 == 0 {
            for ca in [&mut w.arin, &mut w.sprint, &mut w.etb, &mut w.continental] {
                let expiring: Vec<String> =
                    ca.expiring_roas(now, Span::days(90)).iter().map(|r| r.file_name()).collect();
                for file in expiring {
                    ca.renew_roa(&file, now).expect("renewable");
                }
            }
            // Parent certs expire too (365d): reissue the child RCs
            // with the same resources when their window nears its end.
            if d % 180 == 0 {
                let sprint_key = w.sprint.public_key();
                let sprint_res = w.sprint.resources();
                let rc = w
                    .arin
                    .issue_cert("Sprint", sprint_key, sprint_res, w.sprint.sia().clone(), now)
                    .expect("renewal");
                w.sprint.install_cert(rc);
                for (ca, handle) in
                    [(&mut w.etb, "ETB S.A. ESP."), (&mut w.continental, "Continental Broadband")]
                {
                    let key = ca.public_key();
                    let res = ca.resources();
                    let rc = w
                        .sprint
                        .issue_cert(handle, key, res, ca.sia().clone(), now)
                        .expect("renewal");
                    ca.install_cert(rc);
                }
            }
        }

        // Key rollover at day 200: ETB rolls, Sprint recertifies.
        if d == 200 {
            let old_serial =
                w.sprint.issued_cert_for(w.etb.key_id()).expect("certified").data().serial;
            // Capture the allocation before rolling: `roll_key` drops
            // the certificate (the parent must re-certify), after which
            // `resources()` is empty.
            let etb_resources = w.etb.resources();
            let report = w.etb.roll_key("model-etb-key2", now);
            w.sprint.revoke_serial(old_serial);
            let rc = w
                .sprint
                .issue_cert(
                    "ETB S.A. ESP.",
                    report.new_key,
                    etb_resources,
                    w.etb.sia().clone(),
                    now,
                )
                .expect("rollover recert");
            w.etb.install_cert(rc);
        }

        // The attack window.
        if d == attack_day {
            let file = w.covering_roa_file();
            w.continental.withdraw(&file).expect("present");
            withdrawn_file = Some(file);
        }
        if d == restore_day {
            let _ = withdrawn_file.take();
            w.continental
                .issue_roa(
                    asn::CONTINENTAL,
                    vec![rpki_objects::RoaPrefix::exact("63.174.16.0/20".parse().unwrap())],
                    now,
                )
                .expect("reissue");
        }

        // -- Daily publication refresh --
        w.publish_all(now);

        // -- Weekly relying-party and monitor passes --
        if d % 7 == 0 {
            let run = w.validate_direct(now + Span::hours(1));
            suspenders.ingest(&run, now + Span::hours(1));
            let events = monitor.observe(MonitorSnapshot::capture(&w.repos, now));
            if events.iter().any(|e| e.classification.is_suspicious()) {
                monitor_alarms.push(d);
            }

            let bare = run.vrp_cache().classify(victim_route);
            let failsafe = suspenders.effective_cache().classify(victim_route);
            let in_attack_window = (attack_day..restore_day).contains(&d);
            if in_attack_window {
                assert_ne!(
                    bare,
                    RouteValidity::Valid,
                    "day {d}: bare RP should have lost the victim VRP"
                );
                // Suspenders bridges the whole 40-day window (hold-down
                // 45 days).
                assert_eq!(
                    failsafe,
                    RouteValidity::Valid,
                    "day {d}: fail-safe must bridge the attack window"
                );
            } else {
                assert_eq!(bare, RouteValidity::Valid, "day {d}: bare validity dipped");
                assert_eq!(failsafe, RouteValidity::Valid, "day {d}: fail-safe dipped");
            }

            // Everything else stays valid throughout.
            let cache = run.vrp_cache();
            for ann in &w.announcements {
                if ann.origin == asn::CONTINENTAL {
                    continue;
                }
                assert_eq!(
                    cache.classify(Route::new(ann.prefix, ann.origin)),
                    RouteValidity::Valid,
                    "day {d}: {} ← {} degraded",
                    ann.prefix,
                    ann.origin
                );
            }

            // -- The resilient relying party, over the real network --
            let net_run = w.validate_with(
                ValidationOptions::at(now + Span::hours(1))
                    .retry(policy)
                    .stale_cache(&mut resilient),
            );
            let net_cache = net_run.vrp_cache();
            let in_outage = (outage_start..outage_end).contains(&d);
            let stale_continental = net_run.freshness.iter().any(|(dir, f)| {
                dir.contains("continental") && matches!(f, Freshness::Stale { .. })
            });
            if in_outage {
                // The snapshot cache bridges the outage: everything
                // stays valid, served stale from the last good sync.
                assert!(stale_continental, "day {d}: outage not bridged from snapshot");
            } else {
                // No spurious staleness outside the outage window.
                assert!(!stale_continental, "day {d}: stale fallback outside the outage window");
            }
            for ann in &w.announcements {
                let validity = net_cache.classify(Route::new(ann.prefix, ann.origin));
                if in_attack_window && ann.prefix == victim_route.prefix {
                    // The stale cache must NOT mask the withdrawal: the
                    // resilient RP tracks the authority like the bare
                    // one (holding on is Suspenders' job, above).
                    assert_ne!(
                        validity,
                        RouteValidity::Valid,
                        "day {d}: stale cache masked the attack"
                    );
                } else {
                    assert_eq!(
                        validity,
                        RouteValidity::Valid,
                        "day {d}: resilient RP flipped {} ← {}",
                        ann.prefix,
                        ann.origin
                    );
                }
            }
        }
    }

    // The monitor flagged the attack week and nothing else.
    let attack_week = (attack_day..attack_day + 7).find(|d| d % 7 == 0).expect("a week boundary");
    assert!(
        monitor_alarms.contains(&attack_week),
        "monitor missed the attack week; alarms at {monitor_alarms:?}"
    );
    assert!(
        monitor_alarms.iter().all(|d| (attack_day..attack_day + 7).contains(d)),
        "false alarms outside the attack week: {monitor_alarms:?}"
    );
}
