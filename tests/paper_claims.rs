//! One test per claim the paper makes — the checklist EXPERIMENTS.md
//! links to. Each test cites the paper section it reproduces.

use ipres::Asn;
use rpki_attacks::{plan_whack, CaView};
use rpki_objects::{Moment, RpkiObject};
use rpki_risk::fixtures::asn;
use rpki_risk::ModelRpki;
use rpki_rp::{Route, RouteValidity};

/// Side Effect 1 (§3): revocation is a unilateral reclamation lever —
/// the parent alone, with no step the child can veto, removes the
/// child's ability to have valid ROAs.
#[test]
fn se1_unilateral_reclamation() {
    let mut w = ModelRpki::build();
    let serial = w.sprint.issued_cert_for(w.continental.key_id()).unwrap().data().serial;
    w.sprint.revoke_serial(serial);
    w.publish_all(Moment(3));
    let run = w.validate_direct(Moment(4));
    assert!(run.vrps.iter().all(|v| v.asn != asn::CONTINENTAL));
    // The CRL advertises it: transparent, but unilateral.
    let crl = w.sprint.generate_crl(Moment(5));
    assert!(crl.is_revoked(serial));
}

/// Side Effect 2 (§3): stealthy revocation — deletion without a CRL
/// entry is indistinguishable from the object never having existed.
#[test]
fn se2_stealthy_revocation() {
    let mut w = ModelRpki::build();
    let file = w.covering_roa_file();
    let taken = w.continental.withdraw(&file).unwrap();
    assert!(matches!(taken, RpkiObject::Roa(_)));
    w.publish_all(Moment(3));
    let run = w.validate_direct(Moment(4));
    // Gone from the VRP set…
    assert!(!run
        .vrps
        .iter()
        .any(|v| v.asn == asn::CONTINENTAL && v.prefix == "63.174.16.0/20".parse().unwrap()));
    // …with no revocation trace and no validation alarm beyond benign
    // notes.
    let crl = w.continental.generate_crl(Moment(5));
    assert!(crl.data().revoked.is_empty());
    assert!(run.diagnostics.iter().all(|d| matches!(d.issue, rpki_rp::Issue::UnlistedFile(_))));
}

/// Side Effect 3 (§3.1): a grandparent whacks a grandchild ROA with
/// zero collateral via a carve-out.
#[test]
fn se3_targeted_grandchild_whack() {
    let mut w = ModelRpki::build();
    let before = w.validate_direct(Moment(2)).vrps;
    let rc = w.sprint.issued_cert_for(w.continental.key_id()).unwrap();
    let view = CaView::from_repos(rc, &w.repos);
    let file = w.covering_roa_file();
    let plan = plan_whack(std::slice::from_ref(&view), &file).unwrap();
    assert_eq!(plan.reissued, 0, "clean carve needs no reissues");
    plan.execute(&mut w.sprint, Moment(3)).unwrap();
    w.publish_all(Moment(3));
    let after = w.validate_direct(Moment(4)).vrps;
    assert_eq!(after.len(), before.len() - 1);
}

/// Side Effect 4 (§3.1): deeper targets are whackable too, at the cost
/// of suspicious reissues that grow with depth.
#[test]
fn se4_depth_costs_reissues() {
    let w = ModelRpki::build();
    // Depth 1 (Sprint → Continental's ROA): zero reissues.
    let rc = w.sprint.issued_cert_for(w.continental.key_id()).unwrap();
    let view = CaView::from_repos(rc, &w.repos);
    let shallow = plan_whack(std::slice::from_ref(&view), &w.covering_roa_file()).unwrap();
    // Depth 2 (ARIN → same ROA): one intermediate reissue.
    let sprint_rc = w.arin.issued_cert_for(w.sprint.key_id()).unwrap().clone();
    let chain = vec![CaView::from_repos(&sprint_rc, &w.repos), view];
    let deep = plan_whack(&chain, &w.covering_roa_file()).unwrap();
    assert!(deep.reissued > shallow.reissued);
}

/// Side Effect 5 (§4): a new ROA turns previously-unknown covered
/// routes invalid.
#[test]
fn se5_new_roa_invalidates() {
    let mut w = ModelRpki::build();
    let probe = Route::new("63.168.0.0/16".parse().unwrap(), Asn(777));
    assert_eq!(w.validate_direct(Moment(2)).vrp_cache().classify(probe), RouteValidity::Unknown);
    w.add_figure5_right_roa(Moment(3));
    assert_eq!(w.validate_direct(Moment(4)).vrp_cache().classify(probe), RouteValidity::Invalid);
}

/// Side Effect 6 (§4): a missing ROA turns its route invalid (not
/// unknown) when another ROA covers it.
#[test]
fn se6_missing_roa_invalidates() {
    let mut w = ModelRpki::build();
    let route = Route::new("63.174.16.0/22".parse().unwrap(), asn::CUSTOMER_A);
    assert_eq!(w.validate_direct(Moment(2)).vrp_cache().classify(route), RouteValidity::Valid);
    let file = w.customer_roa_file();
    w.continental.withdraw(&file).unwrap();
    w.publish_all(Moment(3));
    // The /20 covering ROA remains → INVALID.
    assert_eq!(w.validate_direct(Moment(4)).vrp_cache().classify(route), RouteValidity::Invalid);
}

/// Side Effect 7 (§6): the loopback test lives in
/// `rpki-risk::loopback`; here we assert the *preconditions* the paper
/// lists hold in the model — (a) the repo's ROA is stored at that repo,
/// (b) a covering-not-matching ROA exists after the Figure 5 (right)
/// addition.
#[test]
fn se7_preconditions_hold() {
    let mut w = ModelRpki::build();
    w.add_figure5_right_roa(Moment(2));
    let repo = w.repos.by_host("rpki.continental.example").unwrap();
    let (repo_prefix, repo_asn) = repo.hosted_at().unwrap();
    // (a) the ROA authorising the route to the repo is published AT the
    // repo.
    let covering =
        w.continental.issued_roas().find(|r| r.asn() == repo_asn).expect("covering ROA exists");
    assert!(covering.resources().contains_prefix(repo_prefix));
    // (b) with that ROA missing, the repo route is covered-not-matched.
    let cache = w.validate_direct(Moment(3)).vrp_cache();
    let without: rpki_rp::VrpCache =
        cache.vrps().iter().copied().filter(|v| v.asn != repo_asn).collect();
    let repo_route = Route::new("63.174.16.0/20".parse().unwrap(), repo_asn);
    assert_eq!(without.classify(repo_route), RouteValidity::Invalid);
}

/// §2: trust derives from keys and the hierarchy, not names — an
/// authority cannot issue for space it does not hold (the validator
/// rejects over-claims), unlike the web PKI's any-CA-any-name problem.
#[test]
fn least_privilege_holds() {
    let mut w = ModelRpki::build();
    // ETB (holding 63.166.0.0/16) tries to authorise itself for
    // Sprint's 208.24.0.0/16. The honest engine refuses…
    let err = w.etb.issue_roa(
        Asn(19094),
        vec![rpki_objects::RoaPrefix::exact("208.24.0.0/16".parse().unwrap())],
        Moment(2),
    );
    assert!(err.is_err());
    // …and even a forged publication (say ETB's software skipped the
    // check) dies at the validator: simulate by publishing a ROA signed
    // with ETB's key for space outside its certificate.
    let rogue = rpki_objects::Roa::issue(
        rpki_objects::RoaData {
            asn: Asn(19094),
            prefixes: vec![rpki_objects::RoaPrefix::exact("208.24.0.0/16".parse().unwrap())],
        },
        999,
        rpki_objects::Validity::starting(Moment(0), rpki_objects::Span::days(30)),
        w.etb.key_for_attack(),
        &rpkisim_crypto::KeyPair::from_seed("rogue-ee"),
    );
    let dir = w.etb.sia().clone();
    use rpki_objects::Encode;
    let bytes = rpki_objects::RpkiObject::Roa(rogue.clone()).to_bytes();
    w.repos.by_host_mut(dir.host()).unwrap().publish_raw(&dir, &rogue.file_name(), bytes);
    let run = w.validate_direct(Moment(3));
    assert!(!run
        .vrps
        .iter()
        .any(|v| v.prefix == "208.24.0.0/16".parse().unwrap() && v.asn == Asn(19094)));
}
