//! DESIGN.md invariant 8: same seed ⇒ byte-identical experiment output.
//!
//! Every layer is exercised: topology generation, CA key derivation,
//! publication bytes, network sync, validation, routing, and the
//! jurisdiction analysis (compared as serialized JSON).

use bgp_sim::{propagate, RpkiPolicy};
use netsim::Network;
use rpki_objects::Moment;
use rpki_repo::RepoRegistry;
use rpki_rp::{NetworkSource, ValidationConfig, Validator};
use topogen::{Config, SyntheticInternet};

fn full_run(seed: u64) -> (String, Vec<rpki_rp::Vrp>, usize) {
    let mut world = SyntheticInternet::generate(Config::small(seed));
    let mut net = Network::new(seed);
    let mut repos = RepoRegistry::new();
    let tal = world.materialize(&mut net, &mut repos, Moment(1));
    let rp = net.add_node("relying-party");
    let mut source = NetworkSource::new(&mut net, &repos, rp);
    let run = Validator::new(ValidationConfig::at(Moment(2)))
        .run(&mut source, std::slice::from_ref(&tal));
    let cache = run.vrp_cache();
    let state = propagate(&world.topology, &world.announcements, RpkiPolicy::DropInvalid, &cache)
        .expect("converges");
    let jurisdiction =
        serde_json::to_string(&rpki_risk::jurisdiction_report(&world).rows).expect("serialize");
    (jurisdiction, run.vrps, state.ases_with_routes())
}

#[test]
fn same_seed_same_everything() {
    let a = full_run(31337);
    let b = full_run(31337);
    assert_eq!(a.0, b.0, "jurisdiction JSON differs");
    assert_eq!(a.1, b.1, "VRP sets differ");
    assert_eq!(a.2, b.2, "routing differs");
}

#[test]
fn different_seed_different_world() {
    let a = full_run(1);
    let b = full_run(2);
    // Keys differ, so VRP sets (which embed prefixes from the same
    // allocation plan but different countries/ROAs) need not differ in
    // *length*, but the jurisdiction rows (countries) will.
    assert_ne!(a.0, b.0);
}

#[test]
fn repository_bytes_are_reproducible() {
    use rpkisim_crypto::sha256;
    let world_digest = |seed: u64| {
        let mut world = SyntheticInternet::generate(Config::small(seed));
        let mut net = Network::new(0);
        let mut repos = RepoRegistry::new();
        world.materialize(&mut net, &mut repos, Moment(1));
        // Hash every stored byte, in deterministic iteration order.
        let mut hosts: Vec<String> = repos.iter().map(|r| r.host().to_owned()).collect();
        hosts.sort();
        let mut acc = Vec::new();
        for host in hosts {
            let repo = repos.by_host(&host).expect("listed");
            for dir in repo.directories() {
                for (name, digest) in repo.list(&dir) {
                    acc.extend_from_slice(name.as_bytes());
                    acc.extend_from_slice(digest.as_bytes());
                }
            }
        }
        sha256(&acc)
    };
    assert_eq!(world_digest(5), world_digest(5));
    assert_ne!(world_digest(5), world_digest(6));
}
