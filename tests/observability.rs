//! Golden-trace determinism for the observability layer.
//!
//! The `rpki-obs` contract is that a trace is a pure function of the
//! seed: two runs of the same seeded campaign must produce
//! byte-identical JSONL event streams and metrics snapshots. These
//! tests replay the seed-2013 corruption campaign twice and compare
//! the raw bytes, then pin structural properties every trace line
//! must satisfy (parseable JSON, fixed key prefix, dense seq).

use rpki_obs::Recorder;
use rpki_risk::{run_campaign_traced, standard_campaigns, CampaignSpec};
use serde_json::Json;

fn corruption_campaign() -> CampaignSpec {
    standard_campaigns()
        .into_iter()
        .find(|c| c.name == "corruption-burst")
        .expect("standard campaign present")
}

#[test]
fn seed_2013_corruption_campaign_replays_byte_identical() {
    let spec = corruption_campaign();

    let first = Recorder::new();
    let out_a = run_campaign_traced(&spec, 2013, &first);
    let second = Recorder::new();
    let out_b = run_campaign_traced(&spec, 2013, &second);

    // The trace is non-trivial: network, repository, relying-party,
    // and campaign layers all contributed events.
    assert!(first.event_count() > 1000, "only {} events", first.event_count());
    for layer in ["net", "repo", "rp", "campaign"] {
        assert!(first.events().iter().any(|e| e.layer == layer), "no {layer} events in the trace");
    }

    // Byte-identical JSONL, metrics, and serialized outcome.
    assert_eq!(first.trace_jsonl(), second.trace_jsonl());
    assert_eq!(first.metrics().to_json(), second.metrics().to_json());
    assert_eq!(serde_json::to_string(&out_a).unwrap(), serde_json::to_string(&out_b).unwrap());
}

#[test]
fn trace_lines_are_json_with_canonical_header_and_dense_seq() {
    let rec = Recorder::new();
    run_campaign_traced(&corruption_campaign(), 2013, &rec);
    let jsonl = rec.trace_jsonl();
    assert!(jsonl.ends_with('\n'));

    for (i, line) in jsonl.lines().enumerate() {
        let value: Json = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("line {i} is not valid JSON ({e:?}): {line}"));
        // Fixed header key order: at, seq, layer, kind, then payload.
        let Json::Object(fields) = &value else { panic!("line {i} is not an object") };
        let keys: Vec<&str> = fields.iter().take(4).map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["at", "seq", "layer", "kind"], "line {i}: {line}");
        // seq is recorder-assigned, dense, and zero-based.
        assert_eq!(value["seq"].as_u64(), Some(i as u64), "line {i}: {line}");
    }
}

#[test]
fn different_seeds_diverge() {
    // A sanity check that the byte-equality above is meaningful: the
    // seed feeds the fault dice, so a different seed must perturb the
    // corruption schedule and therefore the trace.
    let spec = corruption_campaign();
    let a = Recorder::new();
    run_campaign_traced(&spec, 2013, &a);
    let b = Recorder::new();
    run_campaign_traced(&spec, 2014, &b);
    assert_ne!(a.trace_jsonl(), b.trace_jsonl());
}
