//! Campaign-level equivalence: `run_campaign` (incremental by default)
//! versus `run_campaign_cold` (every round a full walk) must serialise
//! to identical outcomes across all four relying-party tiers.
//!
//! The campaigns chosen cover the fault classes the memo cache has to
//! survive without changing a single byte of output: "mixed" layers
//! probabilistic in-flight corruption, flapping partitions, and a
//! takedown inside one run, and "corruption-burst" keeps the fault
//! dice hot for several consecutive rounds. Because campaign tiers
//! run in [`RevalidationMode::Full`], network behaviour is
//! byte-identical too, so even seeded probabilistic faults land the
//! same way in both runs.

use rpki_risk::{run_campaign, run_campaign_cold, standard_campaigns};

#[test]
fn incremental_campaigns_match_cold_campaigns_across_all_tiers() {
    for name in ["mixed", "corruption-burst"] {
        let spec = standard_campaigns()
            .into_iter()
            .find(|s| s.name == name)
            .expect("standard campaign present");
        let warm = run_campaign(&spec, 11);
        let cold = run_campaign_cold(&spec, 11);
        let warm_json = serde_json::to_string(&warm).expect("serialise");
        let cold_json = serde_json::to_string(&cold).expect("serialise");
        assert_eq!(
            warm_json, cold_json,
            "campaign {name}: incremental revalidation changed a campaign outcome"
        );
    }
}
