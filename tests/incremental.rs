//! Incremental-validation equivalence under random mutation sequences.
//!
//! The memo cache's whole contract is: whatever the world did between
//! two runs, `run_incremental` produces byte-identical output to a
//! cold walk of the same world. These properties drive random seeded
//! sequences of authority-side mutations — ROA renewals, issuance,
//! withdrawal, child-certificate revocation, at-rest takedowns and
//! corruption — and after every step compare a persistent Full-mode
//! state, a persistent Probe-mode state, and a cold walk. The RTR test
//! closes the delta pipeline: each run's [`VrpDelta`] applied to the
//! previous serial's data set must reconstruct the next one exactly.

use std::collections::BTreeSet;

use ipres::Asn;
use proptest::prelude::*;
use rpki_objects::{Moment, RoaPrefix};
use rpki_risk::SyntheticRpki;
use rpki_rp::{RtrServer, ValidationState, Vrp, VrpDelta, VrpUpdate};

const HOST: &str = "rpki.bench.example";

/// One authority- or repository-side mutation against the synthetic
/// world. Every variant names the CA index it targets.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Renew the CA's first ROA: fresh file name, EE key, and serial,
    /// same VRP content (the steady-state no-semantic-change churn).
    Renew(usize),
    /// Issue a new ROA in the CA's own /24 (a real announce).
    Add(usize, u8),
    /// Withdraw the CA's most recently issued extra ROA, if any.
    Withdraw(usize),
    /// Revoke the CA's first child certificate via its CRL.
    Revoke(usize),
    /// Delete one file at rest without republishing (a whack: the
    /// manifest now references content the directory no longer has).
    Takedown(usize),
    /// Flip a byte of one stored file at rest (filesystem rot).
    Corrupt(usize),
}

fn arb_op(cas: usize) -> impl Strategy<Value = Op> {
    (0u8..6, 0usize..cas, 0u8..8).prop_map(|(kind, ca, slot)| match kind {
        0 => Op::Renew(ca),
        1 => Op::Add(ca, slot),
        2 => Op::Withdraw(ca),
        3 => Op::Revoke(ca),
        4 => Op::Takedown(ca),
        _ => Op::Corrupt(ca),
    })
}

/// Republishes CA `idx`'s complete snapshot (fresh manifest and CRL).
fn republish(w: &mut SyntheticRpki, idx: usize, now: Moment) {
    let sia = w.cas[idx].sia().clone();
    let snap = w.cas[idx].publication_snapshot(now);
    w.repos.by_host_mut(HOST).expect("exists").publish_snapshot(&sia, &snap);
}

fn apply(w: &mut SyntheticRpki, op: Op, now: Moment) {
    match op {
        Op::Renew(ca) => {
            let file =
                w.cas[ca].issued_roas().next().expect("every CA keeps its first ROA").file_name();
            w.cas[ca].renew_roa(&file, now).expect("renewable");
            republish(w, ca, now);
        }
        Op::Add(ca, slot) => {
            let prefix = format!("10.0.{ca}.{}/32", 100 + usize::from(slot));
            w.cas[ca]
                .issue_roa(
                    Asn(64_000 + ca as u32),
                    vec![RoaPrefix::exact(prefix.parse().expect("literal"))],
                    now,
                )
                .expect("inside the CA's own /24");
            republish(w, ca, now);
        }
        Op::Withdraw(ca) => {
            // Keep the first ROA so Renew always has a target.
            let extra: Option<String> =
                w.cas[ca].issued_roas().skip(1).last().map(|r| r.file_name());
            if let Some(file) = extra {
                w.cas[ca].withdraw(&file).expect("present");
                republish(w, ca, now);
            }
        }
        Op::Revoke(ca) => {
            let serial = w.cas[ca].issued_certs().next().map(|c| c.data().serial);
            if let Some(serial) = serial {
                w.cas[ca].revoke_serial(serial);
                republish(w, ca, now);
            }
        }
        Op::Takedown(ca) => {
            let dir = w.cas[ca].sia().clone();
            let repo = w.repos.by_host_mut(HOST).expect("exists");
            if let Some((name, _)) = repo.list(&dir).first().cloned() {
                repo.delete(&dir, &name);
            }
        }
        Op::Corrupt(ca) => {
            let dir = w.cas[ca].sia().clone();
            let repo = w.repos.by_host_mut(HOST).expect("exists");
            if let Some((name, _)) = repo.list(&dir).last().cloned() {
                repo.corrupt_at_rest(&dir, &name);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// After every mutation, both incremental modes reproduce the cold
    /// walk byte for byte — VRPs, diagnostics, freshness, CA list, the
    /// lot — while their memo caches persist across all steps.
    #[test]
    fn incremental_matches_cold_after_random_mutation_sequences(
        ops in proptest::collection::vec(arb_op(13), 1..10),
    ) {
        // depth 2 / branching 3: 13 publication points, 3 ROAs each.
        let mut w = SyntheticRpki::build_seeded(5, 2, 3, 3);
        let mut full = ValidationState::full();
        let mut probe = ValidationState::probe();
        w.validate_incremental(Moment(2), &mut full);
        w.validate_incremental(Moment(3), &mut probe);

        let mut t = 60u64;
        for op in ops {
            apply(&mut w, op, Moment(t));
            let at = Moment(t + 30);
            let cold = w.validate_cold(at);
            let warm_full = w.validate_incremental(at, &mut full);
            prop_assert_eq!(
                &warm_full, &cold,
                "Full-mode incremental diverged from the cold walk after {:?}", op
            );
            let warm_probe = w.validate_incremental(at, &mut probe);
            prop_assert_eq!(
                &warm_probe, &cold,
                "Probe-mode incremental diverged from the cold walk after {:?}", op
            );
            t += 60;
        }
    }
}

/// The delta feed end to end: every run's announce/withdraw set,
/// published via [`RtrServer::publish`], keeps the server's data set
/// equal to the run's VRPs, bumps the serial exactly when something
/// changed, and reconstructs serial N+1's set from serial N's.
#[test]
fn vrp_deltas_reconstruct_rtr_serials() {
    let mut w = SyntheticRpki::build_seeded(9, 2, 3, 3);
    let mut state = ValidationState::probe();
    let mut server = RtrServer::new(1, 8);

    let run0 = w.validate_incremental(Moment(2), &mut state);
    assert!(!run0.vrps.is_empty());
    server.publish(VrpUpdate::Delta(state.last_delta()));
    assert_eq!(server.vrps(), run0.vrps, "first delta announces the whole set");

    let mut reconstructed: BTreeSet<Vrp> = run0.vrps.iter().copied().collect();
    let mut t = 60u64;
    for round in 0..6usize {
        let op = match round % 3 {
            0 => Op::Renew(round % 13),
            1 => Op::Add(round % 13, 1),
            _ => Op::Withdraw((round - 2) % 13),
        };
        apply(&mut w, op, Moment(t));
        let run = w.validate_incremental(Moment(t + 30), &mut state);
        let delta: VrpDelta = state.last_delta().clone();

        let serial_before = server.serial();
        let pdu = server.publish(VrpUpdate::Delta(&delta));
        if delta.is_empty() {
            assert!(pdu.is_none(), "a no-op delta must not bump the serial ({op:?})");
            assert_eq!(server.serial(), serial_before);
        } else {
            assert!(pdu.is_some(), "a real delta must notify ({op:?})");
            assert_eq!(server.serial(), serial_before + 1);
        }
        assert_eq!(server.vrps(), run.vrps, "server data set out of step after {op:?}");

        delta.apply(&mut reconstructed);
        assert_eq!(
            reconstructed.iter().copied().collect::<Vec<_>>(),
            run.vrps,
            "delta application must reconstruct the next serial's set ({op:?})"
        );
        t += 60;
    }
}
