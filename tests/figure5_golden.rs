//! Golden test: the Figure 5 validity grids are regression-locked by
//! state counts per prefix length. Any change to the model fixture, the
//! validator, or RFC 6811 semantics that moves a single cell fails
//! here.

use ipres::Asn;
use rpki_objects::Moment;
use rpki_risk::fixtures::asn;
use rpki_risk::{validity_grid, ModelRpki};
use rpki_rp::RouteValidity;

/// Counts (valid, invalid, unknown) for one origin at one length.
fn count(rows: &[rpki_risk::GridRow], len: u8, origin: Asn) -> (usize, usize, usize) {
    let mut v = 0;
    let mut i = 0;
    let mut u = 0;
    for row in rows.iter().filter(|r| r.prefix.len() == len) {
        match row.states.iter().find(|(o, _)| *o == origin).expect("origin present").1 {
            RouteValidity::Valid => v += 1,
            RouteValidity::Invalid => i += 1,
            RouteValidity::Unknown => u += 1,
        }
    }
    (v, i, u)
}

#[test]
fn figure5_left_counts() {
    let w = ModelRpki::build();
    let cache = w.validate_direct(Moment(2)).vrp_cache();
    let rows = validity_grid(
        &cache,
        "63.160.0.0/12".parse().unwrap(),
        24,
        &[asn::SPRINT, asn::CONTINENTAL, Asn(666)],
    );

    // /12: 1 prefix, unknown for everyone (no covering ROA).
    assert_eq!(count(&rows, 12, asn::SPRINT), (0, 0, 1));
    assert_eq!(count(&rows, 12, Asn(666)), (0, 0, 1));

    // /20: 256 prefixes. Sprint: its own 63.160.64.0/20 valid; ETB's
    // /16 contributes 16 invalid /20s; Continental's /20 invalid for
    // Sprint. Everything else unknown.
    assert_eq!(count(&rows, 20, asn::SPRINT), (1, 17, 238));
    // Continental: valid exactly at its own /20, invalid at Sprint's
    // /20 + ETB's 16 /20s.
    assert_eq!(count(&rows, 20, asn::CONTINENTAL), (1, 17, 238));
    // A stranger AS: invalid everywhere a ROA covers.
    assert_eq!(count(&rows, 20, Asn(666)), (0, 18, 238));

    // /24: 4096 prefixes. Sprint's maxlen-24 ROA validates its 16
    // /24s; ETB's /16 (256) + Continental's /20 (16) are invalid for
    // Sprint. 4096 − 16 − 272 = 3808 unknown.
    assert_eq!(count(&rows, 24, asn::SPRINT), (16, 272, 3808));
    assert_eq!(count(&rows, 24, Asn(666)), (0, 288, 3808));
}

#[test]
fn figure5_right_counts() {
    let mut w = ModelRpki::build();
    w.add_figure5_right_roa(Moment(2));
    let cache = w.validate_direct(Moment(3)).vrp_cache();
    let rows =
        validity_grid(&cache, "63.160.0.0/12".parse().unwrap(), 24, &[asn::SPRINT, Asn(666)]);

    // The covering /12-13 ROA: nothing inside the /12 is unknown any
    // more — Side Effect 5's whole point.
    for len in 12..=24u8 {
        let (_, _, unknown_sprint) = count(&rows, len, asn::SPRINT);
        assert_eq!(unknown_sprint, 0, "unknown survived at /{len}");
    }
    // Sprint: /12 and both /13s now valid; nothing else changes class
    // upward.
    assert_eq!(count(&rows, 12, asn::SPRINT), (1, 0, 0));
    assert_eq!(count(&rows, 13, asn::SPRINT), (2, 0, 0));
    assert_eq!(count(&rows, 14, asn::SPRINT), (0, 4, 0));
    // The stranger is invalid everywhere in the /12.
    assert_eq!(count(&rows, 24, Asn(666)), (0, 4096, 0));
}
