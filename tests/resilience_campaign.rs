//! Integration tests for the seeded fault-campaign harness behind the
//! `ablation_resilience` experiment.
//!
//! Pins the three properties the experiment's conclusions rest on:
//!
//! - **determinism** — the same `(campaign, seed)` serializes to the
//!   byte-identical outcome on every replay (the whole pipeline runs on
//!   the simulated clock; nothing leaks wall-clock or map-order
//!   nondeterminism into the record);
//! - **strict tier ordering** — under a corruption burst, each layer of
//!   the resilient fetch pipeline strictly improves VRP availability:
//!   bare < retrying < retrying + stale cache;
//! - **defense boundaries** — the stale cache bridges transport faults
//!   but must not bridge an authority-side withdrawal (that separation
//!   belongs to Suspenders), and timeouts lose slow-served rounds the
//!   bare RP eventually collects.

use rpki_attacks::CorpusKind;
use rpki_obs::Recorder;
use rpki_risk::{
    run_campaign, run_campaign_shared, standard_campaigns, CampaignOutcome, CampaignSpec,
    FaultKind, FaultWindow, RpTier,
};
use rpki_rp::{ShardPlan, UnsafeVrpPolicy};

fn campaign(name: &str, seed: u64) -> CampaignOutcome {
    let spec = standard_campaigns()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no standard campaign named {name}"));
    run_campaign(&spec, seed)
}

fn availability(out: &CampaignOutcome, tier: RpTier) -> usize {
    out.tier(tier).totals.vrp_round_sum
}

#[test]
fn campaign_outcomes_are_byte_identical_across_replays() {
    for spec in standard_campaigns() {
        let a = serde_json::to_string(&run_campaign(&spec, 2013)).expect("serializes");
        let b = serde_json::to_string(&run_campaign(&spec, 2013)).expect("serializes");
        assert_eq!(a, b, "campaign {} replay diverged", spec.name);
    }
}

#[test]
fn corruption_burst_orders_tiers_strictly() {
    let out = campaign("corruption-burst", 2013);
    let bare = availability(&out, RpTier::Bare);
    let retrying = availability(&out, RpTier::Retrying);
    let stale = availability(&out, RpTier::RetryingStale);
    assert!(bare < retrying, "retries must strictly improve on bare: {bare} vs {retrying}");
    assert!(
        retrying < stale,
        "the stale cache must strictly improve on retries: {retrying} vs {stale}"
    );
    // The stale tier rides through the burst whole.
    assert_eq!(out.tier(RpTier::RetryingStale).totals.min_vrps, 8);
    assert_eq!(out.tier(RpTier::RetryingStale).totals.unknown_flips, 0);
}

#[test]
fn takedown_defeats_retries_but_not_the_stale_cache() {
    let out = campaign("takedown", 2013);
    // No amount of retrying reaches a down host…
    assert_eq!(availability(&out, RpTier::Bare), availability(&out, RpTier::Retrying));
    // …but the snapshot cache bridges the whole outage.
    assert!(availability(&out, RpTier::Retrying) < availability(&out, RpTier::RetryingStale));
    assert_eq!(out.tier(RpTier::RetryingStale).totals.min_vrps, 8);
}

#[test]
fn slow_serve_trades_availability_for_boundedness() {
    let out = campaign("slow-serve", 2013);
    // The bare RP hangs until the stalled bytes arrive — counted
    // available, hours late. Timeouts alone lose those rounds; only
    // the stale cache restores availability AND bounded time.
    assert!(availability(&out, RpTier::Retrying) < availability(&out, RpTier::Bare));
    assert_eq!(availability(&out, RpTier::RetryingStale), availability(&out, RpTier::Bare));
    assert!(out.tier(RpTier::RetryingStale).totals.stale_dir_rounds > 0);
}

#[test]
fn withdrawal_is_bridged_by_suspenders_only() {
    let out = campaign("mixed", 2013);
    let stale = out.tier(RpTier::RetryingStale).totals;
    let susp = out.tier(RpTier::Suspenders).totals;
    // The snapshot follows a complete sync that lacks the file: the
    // stale tier loses the withdrawn VRP…
    assert!(stale.min_vrps < 8, "stale cache must not mask the withdrawal: {stale:?}");
    // …while the hold-down layer keeps every announcement valid.
    assert_eq!(susp.min_vrps, 8, "{susp:?}");
    assert_eq!(susp.unknown_flips, 0, "{susp:?}");
    assert!(susp.vrp_round_sum > stale.vrp_round_sum);
}

/// An adversarial-publish campaign: Continental publishes a rejected
/// over-claimer for one window and a truncated manifest for another,
/// healing each with an honest snapshot when the window closes.
fn adversarial_spec() -> CampaignSpec {
    let c = || "rpki.continental.example".to_owned();
    CampaignSpec {
        name: "adversarial-publish".to_owned(),
        unsafe_vrps: UnsafeVrpPolicy::Warn,
        churn: None,
        rounds: 12,
        windows: vec![
            FaultWindow {
                host: c(),
                kind: FaultKind::AdversarialPublish { kind: CorpusKind::ResourceOverclaim },
                from: 2,
                to: 4,
            },
            FaultWindow {
                host: c(),
                kind: FaultKind::AdversarialPublish { kind: CorpusKind::TruncatedDer },
                from: 7,
                to: 9,
            },
        ],
    }
}

#[test]
fn adversarial_publish_campaign_replays_byte_identically() {
    let spec = adversarial_spec();
    let a = run_campaign(&spec, 2013);
    let b = run_campaign(&spec, 2013);
    assert_eq!(
        serde_json::to_string(&a).expect("serializes"),
        serde_json::to_string(&b).expect("serializes"),
        "adversarial campaign replay diverged"
    );
    // The shared-world harness replays identically too, sharded or not.
    let rec = Recorder::disabled();
    let shared = run_campaign_shared(&spec, 2013, Some(ShardPlan::new(4)), &rec);
    let unsharded = run_campaign_shared(&spec, 2013, None, &rec);
    assert_eq!(
        serde_json::to_string(&shared).expect("serializes"),
        serde_json::to_string(&unsharded).expect("serializes"),
        "sharded adversarial campaign diverged from unsharded"
    );

    // The poison bites and the healing works: the over-claimer window
    // flags every surviving VRP unsafe under Warn, and after each
    // window closes the stale tier is back to the full healthy set.
    let stale = a.tier(RpTier::RetryingStale);
    assert!(stale.totals.rejected_ca_rounds > 0, "{:?}", stale.totals);
    assert!(stale.totals.unsafe_vrp_rounds > 0, "{:?}", stale.totals);
    let last = stale.rounds.last().expect("rounds recorded");
    assert_eq!(last.vrps, 8, "the honest snapshot must heal the poison: {last:?}");
    assert_eq!(last.unsafe_vrps, 0, "healed rounds carry no unsafe VRPs: {last:?}");
}

#[test]
fn unsafe_policies_order_vrp_availability() {
    // One over-claimer window, three policies, same seed. The
    // `0.0.0.0/0` over-claim makes every surviving VRP unsafe, so:
    // accept == warn (annotation is free) > reject (suppression).
    let spec = |policy| CampaignSpec {
        name: "overclaim-policy".to_owned(),
        unsafe_vrps: policy,
        churn: None,
        rounds: 8,
        windows: vec![FaultWindow {
            host: "rpki.continental.example".to_owned(),
            kind: FaultKind::AdversarialPublish { kind: CorpusKind::ResourceOverclaim },
            from: 2,
            to: 5,
        }],
    };
    let accept = run_campaign(&spec(UnsafeVrpPolicy::Accept), 2013);
    let warn = run_campaign(&spec(UnsafeVrpPolicy::Warn), 2013);
    let reject = run_campaign(&spec(UnsafeVrpPolicy::Reject), 2013);
    for tier in RpTier::ALL {
        let (a, w, r) =
            (availability(&accept, tier), availability(&warn, tier), availability(&reject, tier));
        assert_eq!(a, w, "{tier:?}: warn must not change availability");
        assert!(r <= w, "{tier:?}: reject gained VRPs over warn ({r} > {w})");
        if tier != RpTier::Suspenders {
            assert!(r < w, "{tier:?}: reject must lose the suppressed window ({r} vs {w})");
        }
        assert_eq!(accept.tier(tier).totals.unsafe_vrp_rounds, 0, "{tier:?}");
        assert!(warn.tier(tier).totals.unsafe_vrp_rounds > 0, "{tier:?}");
    }
}

/// Fault-campaign soak: sweep all standard campaigns across many seeds
/// and check the layer invariants hold everywhere (run explicitly or
/// from the scheduled CI job: `cargo test --release -- --ignored`).
#[test]
#[ignore = "long-running fault-campaign soak; exercised by scheduled CI"]
fn campaign_soak_across_seeds() {
    for seed in 0..32u64 {
        for spec in standard_campaigns() {
            let out = run_campaign(&spec, seed);
            let bare = availability(&out, RpTier::Bare);
            let retrying = availability(&out, RpTier::Retrying);
            let stale = availability(&out, RpTier::RetryingStale);
            let susp = availability(&out, RpTier::Suspenders);
            let rrdp = availability(&out, RpTier::Rrdp);
            // Weak ordering must hold at every seed; slow serves are
            // the documented exception where timeouts cost rounds the
            // bare RP eventually collects.
            let has_stall = spec.windows.iter().any(|w| matches!(w.kind, FaultKind::Stall { .. }));
            if !has_stall {
                assert!(
                    bare <= retrying,
                    "{} seed {seed}: bare {bare} > retrying {retrying}",
                    spec.name
                );
            }
            assert!(
                retrying <= stale,
                "{} seed {seed}: retrying {retrying} > stale {stale}",
                spec.name
            );
            assert!(stale <= susp, "{} seed {seed}: stale {stale} > suspenders {susp}", spec.name);
            // The rrdp tier runs the same resilient stack over the
            // other transport: its availability must match everywhere.
            assert_eq!(
                rrdp, stale,
                "{} seed {seed}: rrdp tier diverged from the rsync stack",
                spec.name
            );
            // The stale tier never serves a snapshot older than budget,
            // so transport-only campaigns keep every VRP every round
            // (authority-side withdrawals are the documented exception).
            let has_withdraw = spec.windows.iter().any(|w| matches!(w.kind, FaultKind::Withdraw));
            if !has_withdraw {
                assert_eq!(
                    out.tier(RpTier::RetryingStale).totals.min_vrps,
                    8,
                    "{} seed {seed}",
                    spec.name
                );
            }
            // Replays stay byte-identical at every seed.
            let a = serde_json::to_string(&out).expect("serializes");
            let b = serde_json::to_string(&run_campaign(&spec, seed)).expect("serializes");
            assert_eq!(a, b, "{} seed {seed}: replay diverged", spec.name);
        }

        // One shared-world campaign per seed: every tier validates the
        // same repository world, the walk runs sharded, and the
        // invariants carry over — availability ordering, server-side
        // load on every host, and shard-count-invariant replay.
        let spec = standard_campaigns()
            .into_iter()
            .find(|s| s.name == "takedown")
            .expect("standard campaign exists");
        let rec = Recorder::disabled();
        let shared = run_campaign_shared(&spec, seed, Some(ShardPlan::new(4)), &rec);
        let stale = shared.tier(RpTier::RetryingStale).totals.vrp_round_sum;
        let bare = shared.tier(RpTier::Bare).totals.vrp_round_sum;
        assert!(bare <= stale, "shared world seed {seed}: bare {bare} > stale {stale}");
        assert_eq!(shared.divergence.len(), shared.rounds, "seed {seed}");
        assert!(
            shared.load.iter().all(|h| h.frames > 0 && h.bytes > h.frames),
            "seed {seed}: {:?}",
            shared.load
        );
        let unsharded = run_campaign_shared(&spec, seed, None, &rec);
        assert_eq!(
            serde_json::to_string(&shared).expect("serializes"),
            serde_json::to_string(&unsharded).expect("serializes"),
            "seed {seed}: sharded shared-world campaign diverged from unsharded"
        );
    }
}
