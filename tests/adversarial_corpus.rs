//! The adversarial-object differential suite.
//!
//! Every corpus family ([`rpki_attacks::corpus`]) is published into
//! the model world through the ordinary publication log — so rsync
//! listings, RRDP deltas, and snapshots all carry the same poison —
//! and then every relying-party tier validates the same poisoned
//! world:
//!
//! - the cold full walk,
//! - the incremental engine (warmed on the healthy world, so the
//!   poison arrives as a delta),
//! - the sharded walk at 1/2/4/8 shards,
//! - the trusting RRDP client (no freshness cross-check),
//! - the verified RRDP client.
//!
//! Three invariants, for every family × tier:
//!
//! 1. **No panics.** Each tier runs under `catch_unwind`; a crafted
//!    object that can kill a relying party is a denial-of-service
//!    primitive strictly cheaper than any whack.
//! 2. **Byte-identical divergence reports.** All tiers produce the
//!    same [`ValidationRun`] — VRPs, diagnostics, rejected CAs,
//!    freshness, everything. A tier that reads poison differently
//!    from the cold walk is a tier whose operators see a different
//!    RPKI.
//! 3. **Per-subtree degradation.** Poisoning Continental's
//!    publication point must never take down Sprint's or Etb's VRPs:
//!    the blast radius of a malformed object is its own subtree.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rpki_attacks::CorpusKind;
use rpki_objects::Moment;
use rpki_repo::RrdpClientState;
use rpki_risk::{ModelRpki, ValidationOptions};
use rpki_rp::{ShardPlan, ValidationRun, ValidationState};

const POISONED_HOST: &str = "rpki.continental.example";

/// VRPs that live outside the poisoned subtree and must survive every
/// corpus family: Sprint's two ROAs and Etb's one.
const SIBLING_PREFIXES: [&str; 3] = ["63.160.64.0/20", "208.24.0.0/16", "63.166.0.0/16"];

/// One tier: build a fresh world, warm any tier state on the healthy
/// world, poison Continental, revalidate. Deterministic per
/// `(kind, seed)`, so every tier sees byte-identical repositories.
fn run_tier(tier: &str, kind: CorpusKind, seed: u64) -> ValidationRun {
    let mut w = ModelRpki::build_seeded(2013 + seed);
    let warm = Moment(2);
    let at = Moment(4);
    match tier {
        "cold" => {
            w.poison_host(POISONED_HOST, kind, seed, Moment(3)).expect("host exists");
            w.validate_with(ValidationOptions::at(at))
        }
        "incremental" => {
            let mut state = ValidationState::full();
            w.validate_with(ValidationOptions::at(warm).incremental(&mut state));
            w.poison_host(POISONED_HOST, kind, seed, Moment(3)).expect("host exists");
            w.validate_with(ValidationOptions::at(at).incremental(&mut state))
        }
        "sharded-1" | "sharded-2" | "sharded-4" | "sharded-8" => {
            let shards: usize = tier.rsplit('-').next().expect("suffix").parse().expect("digit");
            w.poison_host(POISONED_HOST, kind, seed, Moment(3)).expect("host exists");
            w.validate_with(ValidationOptions::at(at).sharded(ShardPlan::new(shards)))
        }
        "rrdp-probe" => {
            let mut state = RrdpClientState::new();
            w.validate_with(ValidationOptions::at(warm).rrdp_trusting(&mut state));
            w.poison_host(POISONED_HOST, kind, seed, Moment(3)).expect("host exists");
            w.validate_with(ValidationOptions::at(at).rrdp_trusting(&mut state))
        }
        "rrdp-verified" => {
            let mut state = RrdpClientState::new();
            w.validate_with(ValidationOptions::at(warm).rrdp(&mut state));
            w.poison_host(POISONED_HOST, kind, seed, Moment(3)).expect("host exists");
            w.validate_with(ValidationOptions::at(at).rrdp(&mut state))
        }
        other => panic!("unknown tier {other}"),
    }
}

const TIERS: [&str; 8] = [
    "cold",
    "incremental",
    "sharded-1",
    "sharded-2",
    "sharded-4",
    "sharded-8",
    "rrdp-probe",
    "rrdp-verified",
];

/// The full differential matrix at one seed: no tier panics, all
/// tiers agree byte-for-byte, siblings survive.
fn differential_at(seed: u64) {
    for kind in CorpusKind::ALL {
        let mut runs: Vec<(&str, ValidationRun)> = Vec::new();
        for tier in TIERS {
            let run = catch_unwind(AssertUnwindSafe(|| run_tier(tier, kind, seed))).unwrap_or_else(
                |_| panic!("tier {tier} panicked on corpus kind {:?} seed {seed}", kind),
            );
            runs.push((tier, run));
        }
        let (_, reference) = &runs[0];
        for (tier, run) in &runs[1..] {
            assert_eq!(
                run, reference,
                "tier {tier} diverged from the cold walk on {:?} seed {seed}",
                kind
            );
        }
        // Blast-radius check: the poisoned subtree never takes down
        // its siblings.
        for prefix in SIBLING_PREFIXES {
            let p = prefix.parse().expect("literal prefix");
            assert!(
                reference.vrps.iter().any(|v| v.prefix == p),
                "sibling VRP {prefix} lost under {:?} seed {seed}: {:?}",
                kind,
                reference.vrps
            );
        }
    }
}

#[test]
fn every_corpus_kind_is_panic_free_and_tier_identical() {
    differential_at(0);
}

/// The nightly soak: the same matrix across 32 seeds. Each seed
/// varies the corpus mutations (offsets, bit positions, serials) and
/// the world seed, so the matrix covers 32 distinct poisoned worlds
/// per family.
#[test]
#[ignore = "nightly adversarial soak; run with --ignored"]
fn adversarial_soak_32_seeds() {
    for seed in 0..32 {
        differential_at(seed);
    }
}
