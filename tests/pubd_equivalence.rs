//! Publication-server equivalence: compaction and retention are
//! server-side *layout* policies — they may move clients between the
//! delta path and the snapshot-fallback path, but they must never
//! change a byte of what a relying party concludes.
//!
//! The property pinned here (the `tests/rrdp_equivalence.rs` pattern,
//! one policy knob deeper): for any seeded churn schedule × compaction
//! interval × retention budget, a client of the policied server holds a
//! validation output byte-identical to a client of the uncompacted,
//! unbounded server over the same world — and both equal the rsync
//! cold walk. The fallback-cause counters must always partition the
//! snapshot syncs.
//!
//! The `--ignored` soak widens the sweep: 32 seeds × a full
//! steady-state churn mix (renew/add/withdraw/refresh/re-sign) with a
//! mid-run session reset, so every fallback cause fires somewhere in
//! the population.

use proptest::prelude::*;
use rpki_ca::{ChurnConfig, ChurnEngine};
use rpki_objects::Moment;
use rpki_repo::{PubdPolicy, RetentionPolicy, RrdpClientState, RrdpStats, SyncPolicy};
use rpki_risk::SyntheticRpki;
use rpki_rp::{RrdpSource, ValidationConfig, ValidationRun, ValidationState, Validator};

/// One RRDP-transported incremental revalidation (trusting: the
/// subject under test is the serve path, not the rsync cross-check).
fn poll(
    w: &mut SyntheticRpki,
    now: Moment,
    rrdp: &mut RrdpClientState,
    state: &mut ValidationState,
) -> ValidationRun {
    let mut source =
        RrdpSource::new(&mut w.net, &w.repos, w.rp_node, rrdp, SyncPolicy::default()).trusting();
    Validator::new(ValidationConfig::at(now)).run_incremental(
        &mut source,
        std::slice::from_ref(&w.tal),
        state,
    )
}

/// Every snapshot sync has exactly one recorded cause.
fn assert_causes_partition(stats: &RrdpStats) {
    assert_eq!(
        stats.fallback_initial
            + stats.fallback_evicted
            + stats.fallback_session_reset
            + stats.fallback_chain_gap,
        stats.snapshot_syncs,
        "fallback causes must partition the snapshot syncs: {stats:?}"
    );
}

fn arb_retention() -> impl Strategy<Value = RetentionPolicy> {
    (0u8..3, 1usize..=32, 64u64..65_536).prop_map(|(kind, max_deltas, max_bytes)| match kind {
        0 => RetentionPolicy::Count { max_deltas },
        1 => RetentionPolicy::Bytes { max_bytes },
        _ => RetentionPolicy::Unbounded,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any churn schedule × compaction interval × retention budget,
    /// the policied server's client and the unbounded rebuild-on-demand
    /// server's client produce byte-identical validation runs at every
    /// poll, and both match the cold walk.
    #[test]
    fn any_policy_is_byte_identical_to_the_unbounded_server(
        interval in 1u64..=12,
        retention in arb_retention(),
        churn_seed in 0u64..1_000,
        steps in 4u64..=12,
    ) {
        // depth 2 / branching 3: 13 publication points, 3 ROAs each.
        let mut subject = SyntheticRpki::build_seeded(6, 2, 3, 3);
        let mut reference = SyntheticRpki::build_seeded(6, 2, 3, 3);
        subject
            .repos
            .by_host_mut("rpki.bench.example")
            .expect("bench host")
            .set_pubd_policy(PubdPolicy::compacted(interval).with_retention(retention));
        reference
            .repos
            .by_host_mut("rpki.bench.example")
            .expect("bench host")
            .set_pubd_policy(PubdPolicy::rebuild_on_demand().with_retention(
                RetentionPolicy::Unbounded,
            ));

        let mut subject_rrdp = RrdpClientState::new();
        let mut subject_val = ValidationState::probe();
        let mut reference_rrdp = RrdpClientState::new();
        let mut reference_val = ValidationState::probe();
        poll(&mut subject, Moment(2), &mut subject_rrdp, &mut subject_val);
        poll(&mut reference, Moment(2), &mut reference_rrdp, &mut reference_val);

        // Identically seeded engines drive both worlds through the
        // same schedule; the subject client polls only every other
        // step, so multi-serial catch-ups exercise eviction-forced
        // fallbacks under tight budgets.
        let mut subject_engine = ChurnEngine::new(churn_seed, ChurnConfig::steady());
        let mut reference_engine = ChurnEngine::new(churn_seed, ChurnConfig::steady());
        for step in 0..steps {
            let at = Moment(10 + step * 60);
            let sr = subject.run_churn(&mut subject_engine, at);
            let rr = reference.run_churn(&mut reference_engine, at);
            prop_assert_eq!(&sr, &rr, "identically seeded engines diverged");

            if step % 2 == 1 || step == steps - 1 {
                let measure = Moment(at.0 + 30);
                let s = poll(&mut subject, measure, &mut subject_rrdp, &mut subject_val);
                let r = poll(&mut reference, measure, &mut reference_rrdp, &mut reference_val);
                prop_assert_eq!(
                    &s, &r,
                    "policy (interval {}, {}) changed the client's conclusions at step {}",
                    interval, retention.label(), step
                );
                let cold = subject.validate_cold(Moment(measure.0 + 1));
                prop_assert_eq!(&s, &cold, "policied client diverged from the cold walk");
            }
        }

        // Layout policies never surface as client-visible errors.
        for stats in [subject_rrdp.stats(), reference_rrdp.stats()] {
            prop_assert_eq!(stats.failures, 0);
            prop_assert_eq!(stats.downgrades, 0);
            assert_causes_partition(&stats);
        }
        // The reference server never evicts and never compacts, so its
        // client can only have fallen back at the initial sync.
        prop_assert_eq!(reference_rrdp.stats().fallback_evicted, 0);
        prop_assert_eq!(reference_rrdp.stats().snapshot_syncs,
            reference_rrdp.stats().fallback_initial);
    }
}

/// The 32-seed churn soak: a full production mix (renews, adds,
/// withdraws, manifest refreshes, bulk re-signs) against a compacted
/// byte-budgeted server, with a mid-run session reset, polled by a
/// steady and a lagging client. Run with `cargo test -- --ignored`.
#[test]
#[ignore = "soak: 32 seeds x 24 churn steps; run explicitly"]
fn churn_soak_holds_equivalence_across_32_seeds() {
    for seed in 0..32u64 {
        let mut w = SyntheticRpki::build_seeded(6, 2, 3, 3);
        let interval = 1 + seed % 8;
        let retention = match seed % 3 {
            0 => RetentionPolicy::Count { max_deltas: 1 + (seed as usize % 8) },
            1 => RetentionPolicy::Bytes { max_bytes: 512 + seed * 97 },
            _ => RetentionPolicy::Unbounded,
        };
        w.repos
            .by_host_mut("rpki.bench.example")
            .expect("bench host")
            .set_pubd_policy(PubdPolicy::compacted(interval).with_retention(retention));

        let mut steady_rrdp = RrdpClientState::new();
        let mut steady_val = ValidationState::probe();
        let mut lag_rrdp = RrdpClientState::new();
        let mut lag_val = ValidationState::probe();
        poll(&mut w, Moment(2), &mut steady_rrdp, &mut steady_val);
        poll(&mut w, Moment(3), &mut lag_rrdp, &mut lag_val);

        let mut engine = ChurnEngine::new(seed, ChurnConfig::steady());
        for step in 0..24u64 {
            let at = Moment(10 + step * 60);
            w.run_churn(&mut engine, at);
            if step == 12 {
                // RFC 8182's restart case, mid-churn: every point's
                // session resets, so both clients must re-snapshot.
                w.repos
                    .by_host_mut("rpki.bench.example")
                    .expect("bench host")
                    .rrdp_reset_sessions();
            }
            let measure = Moment(at.0 + 30);
            let run = poll(&mut w, measure, &mut steady_rrdp, &mut steady_val);
            if step % 7 == 6 {
                poll(&mut w, measure, &mut lag_rrdp, &mut lag_val);
            }
            let cold = w.validate_cold(Moment(measure.0 + 1));
            assert_eq!(
                run, cold,
                "seed {seed}: steady client diverged from the cold walk at step {step}"
            );
        }

        for stats in [steady_rrdp.stats(), lag_rrdp.stats()] {
            assert_eq!(stats.failures, 0, "seed {seed}: {stats:?}");
            assert_causes_partition(&stats);
        }
        assert!(
            steady_rrdp.stats().fallback_session_reset > 0,
            "seed {seed}: the mid-run reset must register as a session-reset fallback"
        );
    }
}
