//! Degenerate-schedule byte-identity and slow-serve soak.
//!
//! The fetch scheduler's correctness anchor is
//! [`SchedulePlan::degenerate`]: with zero cadence, unlimited budgets,
//! no jitter, and no backoff, the scheduled stack must be
//! byte-identical to the unscheduled walk — same [`ValidationRun`],
//! same JSONL trace, same VRP set, same wire traffic — whatever the
//! world did in between. Everything the real schedule saves must come
//! from policy, never from silently changing what a delegated fetch
//! returns. These properties drive the `tests/incremental.rs` mutation
//! vocabulary through the cold, incremental, and sharded validation
//! tiers.
//!
//! The ignored soak replays the schedule-gaming campaign — an
//! authority that answers everything, slowly, to burn the per-run time
//! budget — across 32 seeds, pinning its shape: starvation stays
//! inside the slow-serve window, costs freshness rather than
//! availability, and never trips a breaker.

use std::collections::BTreeSet;

use ipres::Asn;
use proptest::prelude::*;
use rpki_objects::{Moment, RoaPrefix};
use rpki_obs::Recorder;
use rpki_risk::{
    gaming_schedule_plan, run_schedule_gaming, schedule_gaming_campaign, SyntheticRpki,
};
use rpki_rp::{
    NetworkSource, SchedulePlan, ScheduledSource, SchedulerState, ShardPlan, ValidationConfig,
    ValidationRun, ValidationState, Validator, Vrp,
};

const HOST: &str = "rpki.bench.example";

/// One authority- or repository-side mutation against the synthetic
/// world (the `tests/incremental.rs` vocabulary).
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Renew the CA's first ROA (churn without semantic change).
    Renew(usize),
    /// Issue a new ROA in the CA's own /24 (a real announce).
    Add(usize, u8),
    /// Withdraw the CA's most recently issued extra ROA, if any.
    Withdraw(usize),
    /// Delete one file at rest without republishing (a whack).
    Takedown(usize),
    /// Flip a byte of one stored file at rest (filesystem rot).
    Corrupt(usize),
}

fn arb_op(cas: usize) -> impl Strategy<Value = Op> {
    (0u8..5, 0usize..cas, 0u8..8).prop_map(|(kind, ca, slot)| match kind {
        0 => Op::Renew(ca),
        1 => Op::Add(ca, slot),
        2 => Op::Withdraw(ca),
        3 => Op::Takedown(ca),
        _ => Op::Corrupt(ca),
    })
}

/// Republishes CA `idx`'s complete snapshot (fresh manifest and CRL).
fn republish(w: &mut SyntheticRpki, idx: usize, now: Moment) {
    let sia = w.cas[idx].sia().clone();
    let snap = w.cas[idx].publication_snapshot(now);
    w.repos.by_host_mut(HOST).expect("exists").publish_snapshot(&sia, &snap);
}

fn apply(w: &mut SyntheticRpki, op: Op, now: Moment) {
    match op {
        Op::Renew(ca) => {
            let file =
                w.cas[ca].issued_roas().next().expect("every CA keeps its first ROA").file_name();
            w.cas[ca].renew_roa(&file, now).expect("renewable");
            republish(w, ca, now);
        }
        Op::Add(ca, slot) => {
            let prefix = format!("10.0.{ca}.{}/32", 100 + usize::from(slot));
            w.cas[ca]
                .issue_roa(
                    Asn(64_000 + ca as u32),
                    vec![RoaPrefix::exact(prefix.parse().expect("literal"))],
                    now,
                )
                .expect("inside the CA's own /24");
            republish(w, ca, now);
        }
        Op::Withdraw(ca) => {
            // Keep the first ROA so Renew always has a target.
            let extra: Option<String> =
                w.cas[ca].issued_roas().skip(1).last().map(|r| r.file_name());
            if let Some(file) = extra {
                w.cas[ca].withdraw(&file).expect("present");
                republish(w, ca, now);
            }
        }
        Op::Takedown(ca) => {
            let dir = w.cas[ca].sia().clone();
            let repo = w.repos.by_host_mut(HOST).expect("exists");
            if let Some((name, _)) = repo.list(&dir).first().cloned() {
                repo.delete(&dir, &name);
            }
        }
        Op::Corrupt(ca) => {
            let dir = w.cas[ca].sia().clone();
            let repo = w.repos.by_host_mut(HOST).expect("exists");
            if let Some((name, _)) = repo.list(&dir).last().cloned() {
                repo.corrupt_at_rest(&dir, &name);
            }
        }
    }
}

/// The run's canonical byte form: its JSONL trace emitted into a
/// fresh recorder at a fixed timestamp.
fn run_jsonl(run: &ValidationRun) -> String {
    let rec = Recorder::new();
    run.emit(&rec, 0);
    rec.trace_jsonl()
}

/// The three relying-party tiers the scheduler composes with.
#[derive(Debug, Clone, Copy)]
enum Tier {
    Cold,
    Incremental,
    Sharded,
}

const TIERS: [Tier; 3] = [Tier::Cold, Tier::Incremental, Tier::Sharded];

/// One walk of `tier` over the network, optionally under a schedule.
/// Returns the run and the wire frames it cost.
fn run_tier(
    w: &mut SyntheticRpki,
    at: Moment,
    tier: Tier,
    inc: Option<&mut ValidationState>,
    sched: Option<&mut SchedulerState>,
) -> (ValidationRun, u64) {
    let sent = w.net.stats().sent;
    let validator = Validator::new(ValidationConfig::at(at));
    let tals = std::slice::from_ref(&w.tal);
    let inner = NetworkSource::new(&mut w.net, &w.repos, w.rp_node);
    let run = match sched {
        Some(state) => {
            let mut source = ScheduledSource::new(inner, state, SchedulePlan::degenerate());
            match tier {
                Tier::Cold => validator.run(&mut source, tals),
                Tier::Incremental => {
                    validator.run_incremental(&mut source, tals, inc.expect("state"))
                }
                Tier::Sharded => validator.run_sharded(&mut source, tals, ShardPlan::new(4)).0,
            }
        }
        None => {
            let mut source = inner;
            match tier {
                Tier::Cold => validator.run(&mut source, tals),
                Tier::Incremental => {
                    validator.run_incremental(&mut source, tals, inc.expect("state"))
                }
                Tier::Sharded => validator.run_sharded(&mut source, tals, ShardPlan::new(4)).0,
            }
        }
    };
    (run, w.net.stats().sent - sent)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// After every mutation, the degenerate schedule reproduces the
    /// unscheduled walk byte for byte on every tier: equal runs, equal
    /// JSONL traces, equal VRP sets, equal wire traffic.
    #[test]
    fn degenerate_schedule_is_byte_identical_on_every_tier(
        ops in proptest::collection::vec(arb_op(13), 1..8),
    ) {
        // depth 2 / branching 3: 13 publication points, 3 ROAs each.
        let mut w = SyntheticRpki::build_seeded(17, 2, 3, 3);
        // Persistent per-tier state: the schedule survives across runs
        // (so does the memo cache), which is exactly the situation the
        // identity must hold in.
        let mut sched: Vec<SchedulerState> =
            TIERS.iter().map(|_| SchedulerState::new()).collect();
        let mut inc_plain = ValidationState::probe();
        let mut inc_sched = ValidationState::probe();
        let mut t = 60u64;
        for op in ops {
            apply(&mut w, op, Moment(t));
            let at = Moment(t + 30);
            for (i, tier) in TIERS.iter().enumerate() {
                let (plain, plain_frames) = run_tier(
                    &mut w,
                    at,
                    *tier,
                    Some(&mut inc_plain).filter(|_| matches!(tier, Tier::Incremental)),
                    None,
                );
                let (scheduled, sched_frames) = run_tier(
                    &mut w,
                    at,
                    *tier,
                    Some(&mut inc_sched).filter(|_| matches!(tier, Tier::Incremental)),
                    Some(&mut sched[i]),
                );
                prop_assert_eq!(
                    &scheduled, &plain,
                    "{:?}: degenerate schedule diverged after {:?}", tier, op
                );
                prop_assert_eq!(
                    &run_jsonl(&scheduled), &run_jsonl(&plain),
                    "{:?}: JSONL trace not byte-identical after {:?}", tier, op
                );
                let a: BTreeSet<Vrp> = scheduled.vrps.iter().copied().collect();
                let b: BTreeSet<Vrp> = plain.vrps.iter().copied().collect();
                prop_assert_eq!(&a, &b);
                prop_assert_eq!(
                    sched_frames, plain_frames,
                    "{:?}: wire traffic diverged after {:?}", tier, op
                );
            }
            t += 60;
        }
    }
}

/// Campaign round cadence (mirrors `rpki_risk::campaign::ROUND_SECS`).
const ROUND_SECS: u64 = 1_800;

/// 32-seed soak of the schedule-gaming campaign: a slow-serving
/// authority must starve only inside its window, cost freshness rather
/// than availability, and never trip a breaker — on every seed.
#[test]
#[ignore = "32-seed soak; run explicitly with --ignored"]
fn slow_serve_starvation_soak_over_seeds() {
    let spec = schedule_gaming_campaign();
    let plan = gaming_schedule_plan();
    let window = &spec.windows[0];
    let window_len = window.to - window.from + 1;
    for seed in 0..32 {
        let out = run_schedule_gaming(&spec, seed, plan, &Recorder::disabled());
        for r in &out.rounds {
            let in_window = window.from <= r.round && r.round <= window.to;
            assert!(
                in_window || r.deferred == 0,
                "seed {seed} round {}: deferral outside the slow-serve window ({r:?})",
                r.round
            );
        }
        assert!(
            out.starved_rounds >= window_len / 2,
            "seed {seed}: starved only {} of {window_len} window rounds: {out:?}",
            out.starved_rounds
        );
        assert_eq!(out.min_vrps, 8, "seed {seed}: availability must hold ({out:?})");
        assert!(
            out.worst_served_age >= ROUND_SECS,
            "seed {seed}: victims must be served stale past a round ({out:?})"
        );
        let last = out.rounds.last().expect("campaign has rounds");
        assert_eq!(last.deferred, 0, "seed {seed}: recovery after the window ({last:?})");
        assert_eq!(last.backoff_skips, 0, "seed {seed}: slow is not down ({last:?})");
    }
}
