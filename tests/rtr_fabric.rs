//! Integration tests for the RTR fan-out fabric and the rtrtr-style
//! relay layer (DESIGN.md "RTR fabric & relay units").
//!
//! Pins the properties the `bench_rtr` experiment and the RTR fault
//! campaign rest on:
//!
//! - **delta-sized fan-out** — after a publish, each attached router
//!   exchanges frames proportional to the *delta*, not the cache size,
//!   and every router converges on the cache's exact set;
//! - **relay correctness** — a relay merging live feeds under any
//!   policy, with SLURM exceptions applied, re-serves exactly the
//!   sequential oracle `slurm.apply(reference_merge(...))`,
//!   byte-for-byte;
//! - **policy placement of divergence** — the same campaign under
//!   `Union` parks the divergence at the relay (a tier still vouches
//!   for the whacked VRP) while `All` pushes it to the stalled routers;
//! - **determinism** — the RTR fault campaign serializes to the
//!   byte-identical outcome on every replay, across seeds.

use std::collections::BTreeSet;

use ipres::{Asn, Prefix};
use netsim::Network;
use rpki_obs::Recorder;
use rpki_risk::{rtr_campaign, run_campaign_rtr, RtrConfig};
use rpki_rp::{
    pump_until, reference_merge, MergePolicy, Relay, RtrEndpoint, RtrFabric, RtrRouter, SlurmFile,
    SlurmFilter, Vrp, VrpUpdate,
};

fn v(s: &str, max: u8, asn: u32) -> Vrp {
    Vrp::new(s.parse::<Prefix>().unwrap(), max, Asn(asn))
}

fn universe(n: usize) -> Vec<Vrp> {
    (0..n).map(|i| v(&format!("10.{}.{}.0/24", i / 256, i % 256), 24, 64_496 + i as u32)).collect()
}

fn pump(net: &mut Network, fabric: &mut RtrFabric, routers: &mut [RtrRouter]) {
    let deadline = net.now() + 10_000;
    let mut endpoints: Vec<&mut dyn RtrEndpoint> = Vec::with_capacity(routers.len() + 1);
    endpoints.push(fabric);
    for r in routers.iter_mut() {
        endpoints.push(r);
    }
    pump_until(net, deadline, &mut endpoints);
}

/// Fan-out frames scale with the delta, not the cache: a one-VRP churn
/// against a 64-VRP cache costs each router a six-frame exchange while
/// a cold full sweep costs `vrps + 3`.
#[test]
fn fanout_frames_scale_with_delta_not_cache_size() {
    let mut net = Network::new(9);
    let cache = net.add_node("rp-cache");
    let mut fabric = RtrFabric::new(cache, 1, 8);
    let mut routers: Vec<RtrRouter> = (0..16)
        .map(|i| {
            let node = net.add_node(&format!("router-{i}"));
            fabric.attach(node);
            RtrRouter::new(node, cache)
        })
        .collect();

    let mut vrps = universe(64);
    fabric.publish(&mut net, VrpUpdate::snapshot(vrps.clone()));
    pump(&mut net, &mut fabric, &mut routers);
    // The cold sweep each router just paid: reset + response + 64
    // prefixes + EndOfData, plus the notify that triggered it.
    let cold_per_router = 64 + 4;

    // Renew one origin: the delta is one withdraw + one announce.
    vrps[0] = v("10.0.0.0/24", 24, 65_000);
    let sent = net.stats().sent;
    fabric.publish(&mut net, VrpUpdate::snapshot(vrps.clone()));
    pump(&mut net, &mut fabric, &mut routers);
    let per_router = (net.stats().sent - sent) / 16;
    assert_eq!(per_router, 6, "notify + query + response + 2 prefixes + EndOfData");
    assert!(per_router * 4 < cold_per_router, "fan-out beats the full sweep 4x over");
    for r in &routers {
        assert!(r.vrps().iter().eq(fabric.server().vrps().iter()), "router diverged");
    }
}

/// A relay over three live feeds with SLURM exceptions re-serves the
/// sequential oracle exactly, under every merge policy.
#[test]
fn relay_output_matches_sequential_reference_merge() {
    let feeds: [BTreeSet<Vrp>; 3] = [
        universe(12).into_iter().collect(),
        universe(16).into_iter().skip(2).collect(),
        universe(20).into_iter().skip(4).collect(),
    ];
    let slurm = SlurmFile {
        filters: vec![
            SlurmFilter::prefix("10.0.1.0/24".parse().unwrap()),
            SlurmFilter::asn(Asn(64_499)),
        ],
        assertions: vec![v("192.0.2.0/24", 24, 65_551)],
    };

    for policy in [MergePolicy::Union, MergePolicy::Any, MergePolicy::All] {
        let mut net = Network::new(17);
        let relay_node = net.add_node("relay");
        let mut relay = Relay::new(relay_node, policy, slurm.clone(), 900, 8);
        let mut fabrics: Vec<RtrFabric> = feeds
            .iter()
            .enumerate()
            .map(|(i, feed)| {
                let node = net.add_node(&format!("rp-{i}"));
                let mut fabric = RtrFabric::new(node, (i + 1) as u16, 8);
                fabric.attach(relay_node);
                relay.add_feed(node);
                fabric.publish(&mut net, VrpUpdate::snapshot(feed.iter().copied()));
                fabric
            })
            .collect();
        let router_node = net.add_node("router");
        relay.attach(router_node);
        let mut router = RtrRouter::new(router_node, relay_node);

        relay.poll_feeds(&mut net);
        let deadline = net.now() + 10_000;
        let mut endpoints: Vec<&mut dyn RtrEndpoint> = vec![&mut relay, &mut router];
        for f in fabrics.iter_mut() {
            endpoints.push(f);
        }
        pump_until(&mut net, deadline, &mut endpoints);
        relay.republish(&mut net);
        router.poll(&mut net);
        let deadline = net.now() + 10_000;
        let mut endpoints: Vec<&mut dyn RtrEndpoint> = vec![&mut relay, &mut router];
        for f in fabrics.iter_mut() {
            endpoints.push(f);
        }
        pump_until(&mut net, deadline, &mut endpoints);

        let oracle = slurm.apply(&reference_merge(policy, &feeds));
        let relayed: Vec<Vrp> = router.vrps().iter().copied().collect();
        let expected: Vec<Vrp> = oracle.iter().copied().collect();
        assert_eq!(relayed, expected, "policy {policy:?} diverged from the oracle");
    }
}

/// The same fault campaign, two merge policies: `Union` keeps routers
/// synced but parks the whacked VRP at the relay (a tier still vouches
/// for it); `All` drops it at the relay and the stalled routers are the
/// ones left holding it.
#[test]
fn merge_policy_chooses_where_divergence_lives() {
    let spec = rtr_campaign();
    let union_cfg = RtrConfig { routers: 4, policy: MergePolicy::Union, ..RtrConfig::default() };
    let all_cfg = RtrConfig { routers: 4, policy: MergePolicy::All, ..RtrConfig::default() };
    let union =
        run_campaign_rtr(&spec, 2013, union_cfg, &SlurmFile::empty(), &Recorder::disabled());
    let all = run_campaign_rtr(&spec, 2013, all_cfg, &SlurmFile::empty(), &Recorder::disabled());

    // Round 4: the withdraw lands while the relay→router path stalls.
    let u4 = &union.rtr[3];
    let a4 = &all.rtr[3];
    // Union: Suspenders still vouches for the whacked VRP, so the merge
    // never shrinks — nothing new to push, routers stay synced, and the
    // divergence is the relay's own.
    assert_eq!(u4.synced_routers, 4, "{u4:?}");
    assert_eq!(u4.relay_truth_distance, 1, "{u4:?}");
    // All: the intersection drops the VRP instantly, the stall keeps
    // the routers from hearing it — divergence lives at the routers.
    assert_eq!(a4.stale_routers, 4, "{a4:?}");
    assert_eq!(a4.relay_truth_distance, 0, "{a4:?}");
    assert_eq!(a4.truth_distance_sum, 4, "{a4:?}");

    // Both worlds converge whole once the stall lifts and the ROA is
    // reissued.
    for out in [&union, &all] {
        let last = out.rtr.last().unwrap();
        assert_eq!(last.synced_routers, 4, "{last:?}");
        assert_eq!(last.truth_distance_sum, 0, "{last:?}");
        assert_eq!(last.relay_truth_distance, 0, "{last:?}");
    }
}

/// The RTR fault campaign is deterministic: byte-identical serialized
/// outcomes on replay.
#[test]
fn rtr_campaign_replays_byte_identical() {
    let cfg = RtrConfig { routers: 4, policy: MergePolicy::All, ..RtrConfig::default() };
    let run = |seed| {
        serde_json::to_string(&run_campaign_rtr(
            &rtr_campaign(),
            seed,
            cfg,
            &SlurmFile::empty(),
            &Recorder::disabled(),
        ))
        .expect("serializes")
    };
    for seed in [2013u64, 6810] {
        assert_eq!(run(seed), run(seed), "seed {seed} replay diverged");
    }
}

/// RTR stale-router soak: the fault campaign across many seeds, replay
/// identity and recovery invariants everywhere (run explicitly or from
/// the scheduled CI job: `cargo test --release -- --ignored`).
#[test]
#[ignore = "long-running RTR campaign soak; exercised by scheduled CI"]
fn rtr_campaign_soak_across_seeds() {
    let cfg = RtrConfig { routers: 6, policy: MergePolicy::All, ..RtrConfig::default() };
    for seed in 0..32u64 {
        let out = run_campaign_rtr(
            &rtr_campaign(),
            seed,
            cfg,
            &SlurmFile::empty(),
            &Recorder::disabled(),
        );
        let again = run_campaign_rtr(
            &rtr_campaign(),
            seed,
            cfg,
            &SlurmFile::empty(),
            &Recorder::disabled(),
        );
        assert_eq!(
            serde_json::to_string(&out).unwrap(),
            serde_json::to_string(&again).unwrap(),
            "seed {seed}: replay diverged"
        );
        // Healthy opening round: every router synced and truthful.
        let r1 = &out.rtr[0];
        assert_eq!(r1.synced_routers, 6, "seed {seed}: {r1:?}");
        assert_eq!(r1.truth_distance_sum, 0, "seed {seed}: {r1:?}");
        // The stalled withdraw round: every router still holds the
        // whacked VRP (the stall outlasts the pump budget at every
        // seed — it is a fixed +3600s against a 600s window).
        let r4 = &out.rtr[3];
        assert_eq!(r4.stale_routers, 6, "seed {seed}: {r4:?}");
        assert_eq!(r4.truth_distance_sum, 6, "seed {seed}: {r4:?}");
        // Fully recovered by the final round.
        let last = out.rtr.last().unwrap();
        assert_eq!(last.synced_routers, 6, "seed {seed}: {last:?}");
        assert_eq!(last.stale_routers, 0, "seed {seed}: {last:?}");
        assert_eq!(last.truth_distance_sum, 0, "seed {seed}: {last:?}");
        assert_eq!(last.relay_truth_distance, 0, "seed {seed}: {last:?}");
    }
}
