//! Shard-count invariance of the sharded validation walk.
//!
//! The scheduler's whole contract is: for any [`ShardPlan`], the
//! sharded walk's output is byte-identical to the sequential walk of
//! the same world — same `ValidationRun`, same JSONL trace, same VRP
//! set — and the plan changes only how the CPU work was distributed.
//! These properties drive random seeded mutation sequences (the same
//! op vocabulary as `tests/incremental.rs`) and compare 1, 2, 4, and
//! 8 shards against the sequential walk after every step, cold and
//! incremental.

use std::collections::BTreeSet;

use ipres::Asn;
use proptest::prelude::*;
use rpki_objects::{Moment, RoaPrefix};
use rpki_obs::Recorder;
use rpki_risk::SyntheticRpki;
use rpki_rp::{ShardPlan, ValidationRun, ValidationState, Vrp};

const HOST: &str = "rpki.bench.example";
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One authority- or repository-side mutation against the synthetic
/// world (the `tests/incremental.rs` vocabulary).
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Renew the CA's first ROA (churn without semantic change).
    Renew(usize),
    /// Issue a new ROA in the CA's own /24 (a real announce).
    Add(usize, u8),
    /// Withdraw the CA's most recently issued extra ROA, if any.
    Withdraw(usize),
    /// Delete one file at rest without republishing (a whack).
    Takedown(usize),
    /// Flip a byte of one stored file at rest (filesystem rot).
    Corrupt(usize),
}

fn arb_op(cas: usize) -> impl Strategy<Value = Op> {
    (0u8..5, 0usize..cas, 0u8..8).prop_map(|(kind, ca, slot)| match kind {
        0 => Op::Renew(ca),
        1 => Op::Add(ca, slot),
        2 => Op::Withdraw(ca),
        3 => Op::Takedown(ca),
        _ => Op::Corrupt(ca),
    })
}

/// Republishes CA `idx`'s complete snapshot (fresh manifest and CRL).
fn republish(w: &mut SyntheticRpki, idx: usize, now: Moment) {
    let sia = w.cas[idx].sia().clone();
    let snap = w.cas[idx].publication_snapshot(now);
    w.repos.by_host_mut(HOST).expect("exists").publish_snapshot(&sia, &snap);
}

fn apply(w: &mut SyntheticRpki, op: Op, now: Moment) {
    match op {
        Op::Renew(ca) => {
            let file =
                w.cas[ca].issued_roas().next().expect("every CA keeps its first ROA").file_name();
            w.cas[ca].renew_roa(&file, now).expect("renewable");
            republish(w, ca, now);
        }
        Op::Add(ca, slot) => {
            let prefix = format!("10.0.{ca}.{}/32", 100 + usize::from(slot));
            w.cas[ca]
                .issue_roa(
                    Asn(64_000 + ca as u32),
                    vec![RoaPrefix::exact(prefix.parse().expect("literal"))],
                    now,
                )
                .expect("inside the CA's own /24");
            republish(w, ca, now);
        }
        Op::Withdraw(ca) => {
            // Keep the first ROA so Renew always has a target.
            let extra: Option<String> =
                w.cas[ca].issued_roas().skip(1).last().map(|r| r.file_name());
            if let Some(file) = extra {
                w.cas[ca].withdraw(&file).expect("present");
                republish(w, ca, now);
            }
        }
        Op::Takedown(ca) => {
            let dir = w.cas[ca].sia().clone();
            let repo = w.repos.by_host_mut(HOST).expect("exists");
            if let Some((name, _)) = repo.list(&dir).first().cloned() {
                repo.delete(&dir, &name);
            }
        }
        Op::Corrupt(ca) => {
            let dir = w.cas[ca].sia().clone();
            let repo = w.repos.by_host_mut(HOST).expect("exists");
            if let Some((name, _)) = repo.list(&dir).last().cloned() {
                repo.corrupt_at_rest(&dir, &name);
            }
        }
    }
}

/// The run's canonical byte form: its JSONL trace emitted into a
/// fresh recorder at a fixed timestamp.
fn run_jsonl(run: &ValidationRun) -> String {
    let rec = Recorder::new();
    run.emit(&rec, 0);
    rec.trace_jsonl()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// After every mutation, every shard count reproduces the
    /// sequential cold walk byte for byte: equal runs, equal JSONL
    /// traces, equal VRP sets, and a plan-determined item count.
    #[test]
    fn cold_sharded_walk_is_shard_count_invariant(
        ops in proptest::collection::vec(arb_op(13), 1..8),
    ) {
        // depth 2 / branching 3: 13 publication points, 3 ROAs each.
        let mut w = SyntheticRpki::build_seeded(11, 2, 3, 3);
        let mut t = 60u64;
        for op in ops {
            apply(&mut w, op, Moment(t));
            let at = Moment(t + 30);
            let seq = w.validate_cold(at);
            let seq_trace = run_jsonl(&seq);
            let seq_vrps: BTreeSet<Vrp> = seq.vrps.iter().copied().collect();
            for shards in SHARD_COUNTS {
                let (run, stats) = w.validate_cold_sharded(at, ShardPlan::new(shards));
                prop_assert_eq!(
                    &run, &seq,
                    "{} shards diverged from the sequential walk after {:?}", shards, op
                );
                prop_assert_eq!(
                    &run_jsonl(&run), &seq_trace,
                    "{} shards: JSONL trace not byte-identical after {:?}", shards, op
                );
                let vrps: BTreeSet<Vrp> = run.vrps.iter().copied().collect();
                prop_assert_eq!(&vrps, &seq_vrps);
                prop_assert_eq!(stats.shards, shards.max(1));
                prop_assert_eq!(stats.items, stats.assigned.iter().sum::<u64>());
            }
            t += 60;
        }
    }

    /// The memo cache composes with sharding: persistent per-plan
    /// incremental states track the sequential cold walk byte for
    /// byte through random mutation sequences.
    #[test]
    fn incremental_sharded_walk_matches_cold(
        ops in proptest::collection::vec(arb_op(13), 1..6),
    ) {
        let mut w = SyntheticRpki::build_seeded(13, 2, 3, 3);
        let mut states: Vec<ValidationState> =
            SHARD_COUNTS.iter().map(|_| ValidationState::probe()).collect();
        for (i, shards) in SHARD_COUNTS.iter().enumerate() {
            w.validate_incremental_sharded(Moment(2), ShardPlan::new(*shards), &mut states[i]);
        }
        let mut t = 60u64;
        for op in ops {
            apply(&mut w, op, Moment(t));
            let at = Moment(t + 30);
            let cold = w.validate_cold(at);
            let cold_trace = run_jsonl(&cold);
            for (i, shards) in SHARD_COUNTS.iter().enumerate() {
                let (run, _) = w.validate_incremental_sharded(
                    at,
                    ShardPlan::new(*shards),
                    &mut states[i],
                );
                prop_assert_eq!(
                    &run, &cold,
                    "{} shards incremental diverged from cold after {:?}", shards, op
                );
                prop_assert_eq!(&run_jsonl(&run), &cold_trace);
            }
            t += 60;
        }
    }
}

/// The assignment seed changes the schedule, never the output; and a
/// degenerate zero-shard plan clamps to one shard.
#[test]
fn seed_and_degenerate_plans_do_not_change_output() {
    let mut w = SyntheticRpki::build_seeded(3, 2, 4, 2);
    let seq = w.validate_cold(Moment(5));
    for plan in [ShardPlan::new(0), ShardPlan::seeded(4, 1), ShardPlan::seeded(4, u64::MAX)] {
        let (run, stats) = w.validate_cold_sharded(Moment(5), plan);
        assert_eq!(run, seq, "{plan:?}");
        assert_eq!(run_jsonl(&run), run_jsonl(&seq), "{plan:?}");
        assert!(stats.shards >= 1);
    }
}
