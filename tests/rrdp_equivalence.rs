//! RRDP equivalence: the delta protocol must be invisible in output.
//!
//! The RRDP subsystem's contract has three layers, each pinned here
//! under random seeded mutation sequences (the
//! `tests/incremental.rs` pattern, one level down the stack):
//!
//! - **transport** — whatever a repository did, a client applying the
//!   delta chain holds byte-identical directory content to a client
//!   fetching the latest snapshot, and both equal a complete rsync
//!   sync of the same directory (including at-rest corruption: the
//!   snapshot-equals-current-files invariant means rot travels
//!   through deltas too);
//! - **validation** — an RRDP-sourced validation run is byte-identical
//!   to an rsync cold walk of the same world, diagnostics and all;
//! - **campaigns** — across every standard fault campaign, the rrdp
//!   tier's per-round VRP counts equal the retrying-stale tier's: the
//!   transports differ, the relying party's view must not.
//!
//! The RTR test closes the session pipeline: an authority-side RRDP
//! session reset surfaces to routers as a `CacheReset`, never as a
//! silent serial bump over changed data.

use netsim::Network;
use proptest::prelude::*;
use rpki_objects::{Moment, RepoUri, RoaPrefix};
use rpki_repo::{rrdp_sync_dir, sync_dir, RepoRegistry, RrdpClientState, SyncPolicy};
use rpki_risk::{run_campaign, standard_campaigns, ModelRpki, RpTier, SyntheticRpki};
use rpki_rp::{
    ClientAction, RrdpSource, RtrClient, RtrServer, ValidationConfig, ValidationRun, Validator,
    VrpUpdate,
};

/// One direct-call RTR sync (query → answer → apply, retrying on
/// reset); this test exercises the session/serial semantics, not the
/// framed transport.
fn rtr_sync(client: &mut RtrClient, server: &RtrServer) {
    for _ in 0..3 {
        let query = client.poll();
        let mut reset = false;
        for pdu in server.handle(&query) {
            if client.handle(&pdu) == ClientAction::Reset {
                reset = true;
            }
        }
        if !reset {
            break;
        }
    }
}

/// One repository-side mutation against a single publication point.
#[derive(Debug, Clone, Copy)]
enum RepoOp {
    /// Publish (or overwrite) file `slot` with `byte`-filled content.
    Publish(u8, u8),
    /// Delete file `slot` if present.
    Delete(u8),
    /// Flip a byte of file `slot` at rest if present.
    Corrupt(u8),
}

fn arb_repo_op() -> impl Strategy<Value = RepoOp> {
    (0u8..3, 0u8..6, 0u8..=255).prop_map(|(kind, slot, byte)| match kind {
        0 => RepoOp::Publish(slot, byte),
        1 => RepoOp::Delete(slot),
        _ => RepoOp::Corrupt(slot),
    })
}

fn apply_repo_op(repos: &mut RepoRegistry, dir: &RepoUri, op: RepoOp) {
    let repo = repos.by_host_mut("pp.example").expect("exists");
    match op {
        RepoOp::Publish(slot, byte) => {
            repo.publish_raw(dir, &format!("file{slot}"), vec![byte, slot]);
        }
        RepoOp::Delete(slot) => {
            repo.delete(dir, &format!("file{slot}"));
        }
        RepoOp::Corrupt(slot) => {
            repo.corrupt_at_rest(dir, &format!("file{slot}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Transport equivalence, synced after every mutation: the
    /// persistent client advances by delta chains (or the occasional
    /// forced snapshot) and must match both a from-scratch snapshot
    /// client and a complete rsync sync at every step.
    #[test]
    fn delta_chain_equals_snapshot_equals_rsync_stepwise(
        ops in proptest::collection::vec(arb_repo_op(), 1..25),
    ) {
        let mut net = Network::new(3);
        let client = net.add_node("rp");
        let mut repos = RepoRegistry::new();
        repos.create(&mut net, "pp.example");
        let dir = RepoUri::new("pp.example", &["repo"]);
        repos.by_host_mut("pp.example").unwrap().publish_raw(&dir, "file0", vec![0, 0]);

        let mut chained = RrdpClientState::new();
        rrdp_sync_dir(&mut net, &repos, client, &dir, &mut chained, None).expect("first sync");

        for op in ops {
            apply_repo_op(&mut repos, &dir, op);
            let (via_chain, _) = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut chained, None)
                .expect("chained sync");
            let mut fresh = RrdpClientState::new();
            let (via_snapshot, _) = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut fresh, None)
                .expect("snapshot sync");
            let via_rsync = sync_dir(&mut net, &repos, client, &dir);
            prop_assert_eq!(&via_chain, &via_snapshot, "chain vs snapshot after {:?}", op);
            prop_assert_eq!(&via_chain, &via_rsync, "chain vs rsync after {:?}", op);
        }
        // The persistent client never needed a downgrade or failed,
        // and every snapshot sync it did take has exactly one cause.
        let stats = chained.stats();
        prop_assert_eq!(stats.failures, 0);
        prop_assert_eq!(stats.downgrades, 0);
        prop_assert_eq!(
            stats.fallback_initial + stats.fallback_evicted
                + stats.fallback_session_reset + stats.fallback_chain_gap,
            stats.snapshot_syncs,
            "fallback causes must partition the snapshot syncs"
        );
    }

    /// Transport equivalence, synced once at the end: long sequences
    /// overflow the bounded delta history, so this drives both the
    /// deep-chain path and the gap-forced snapshot fallback.
    #[test]
    fn delta_chain_equals_snapshot_after_a_batch(
        ops in proptest::collection::vec(arb_repo_op(), 1..40),
    ) {
        let mut net = Network::new(4);
        let client = net.add_node("rp");
        let mut repos = RepoRegistry::new();
        repos.create(&mut net, "pp.example");
        let dir = RepoUri::new("pp.example", &["repo"]);
        repos.by_host_mut("pp.example").unwrap().publish_raw(&dir, "file0", vec![0, 0]);

        let mut chained = RrdpClientState::new();
        rrdp_sync_dir(&mut net, &repos, client, &dir, &mut chained, None).expect("first sync");
        for op in &ops {
            apply_repo_op(&mut repos, &dir, *op);
        }
        let (via_chain, _) = rrdp_sync_dir(&mut net, &repos, client, &dir, &mut chained, None)
            .expect("catch-up sync");
        let via_rsync = sync_dir(&mut net, &repos, client, &dir);
        prop_assert_eq!(&via_chain, &via_rsync, "catch-up diverged after {} ops", ops.len());
    }
}

/// One verified RRDP validation run over the synthetic world.
fn validate_rrdp(w: &mut SyntheticRpki, now: Moment, rrdp: &mut RrdpClientState) -> ValidationRun {
    let mut source = RrdpSource::new(&mut w.net, &w.repos, w.rp_node, rrdp, SyncPolicy::default());
    Validator::new(ValidationConfig::at(now)).run(&mut source, std::slice::from_ref(&w.tal))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Validation equivalence: after every authority-side mutation, an
    /// RRDP-sourced run (persistent client state, verified mode)
    /// reproduces the rsync cold walk byte for byte.
    #[test]
    fn rrdp_validation_matches_cold_after_random_mutations(
        steps in proptest::collection::vec((0u8..4, 0usize..13), 1..8),
    ) {
        // depth 2 / branching 3: 13 publication points, 2 ROAs each.
        let mut w = SyntheticRpki::build_seeded(6, 2, 3, 2);
        let mut rrdp = RrdpClientState::new();
        validate_rrdp(&mut w, Moment(2), &mut rrdp);

        let mut t = 60u64;
        for (kind, ca) in steps {
            let now = Moment(t);
            match kind {
                0 => {
                    let file = w.cas[ca].issued_roas().next().expect("has ROAs").file_name();
                    w.cas[ca].renew_roa(&file, now).expect("renewable");
                }
                1 => {
                    w.cas[ca]
                        .issue_roa(
                            ipres::Asn(64_000 + ca as u32),
                            vec![RoaPrefix::exact(
                                format!("10.0.{ca}.{}/32", 100 + (t / 60) % 100)
                                    .parse()
                                    .expect("literal"),
                            )],
                            now,
                        )
                        .expect("inside the CA's /24");
                }
                2 => {
                    if let Some(file) =
                        w.cas[ca].issued_roas().skip(1).last().map(|r| r.file_name())
                    {
                        w.cas[ca].withdraw(&file).expect("present");
                    }
                }
                _ => {
                    let serial = w.cas[ca].issued_certs().next().map(|c| c.data().serial);
                    if let Some(serial) = serial {
                        w.cas[ca].revoke_serial(serial);
                    }
                }
            }
            let sia = w.cas[ca].sia().clone();
            let snap = w.cas[ca].publication_snapshot(now);
            w.repos.by_host_mut("rpki.bench.example").expect("exists").publish_snapshot(&sia, &snap);

            let at = Moment(t + 30);
            let over_rrdp = validate_rrdp(&mut w, at, &mut rrdp);
            let cold = w.validate_cold(at);
            prop_assert_eq!(
                &over_rrdp, &cold,
                "RRDP-sourced run diverged from the cold walk at step ({}, {})", kind, ca
            );
            t += 60;
        }
        // An honest world never trips the freshness cross-check, and
        // its only snapshot fallbacks are the initial cold syncs.
        let stats = rrdp.stats();
        prop_assert_eq!(stats.pinned_detected, 0);
        prop_assert_eq!(stats.downgrades, 0);
        prop_assert_eq!(
            stats.fallback_initial + stats.fallback_evicted
                + stats.fallback_session_reset + stats.fallback_chain_gap,
            stats.snapshot_syncs,
            "fallback causes must partition the snapshot syncs"
        );
        prop_assert_eq!(stats.fallback_session_reset, 0);
    }
}

/// Campaign equivalence: under every standard campaign, the rrdp tier
/// and the retrying-stale tier run the same resilient stack over
/// different transports — their per-round VRP counts must agree, fault
/// windows and all (the verified RRDP client sees through pins and
/// downgrades around outages, so transport choice never shows in the
/// relying party's view).
#[test]
fn rrdp_tier_matches_rsync_tier_on_every_standard_campaign() {
    for spec in standard_campaigns() {
        let out = run_campaign(&spec, 2013);
        let rrdp: Vec<usize> = out.tier(RpTier::Rrdp).rounds.iter().map(|m| m.vrps).collect();
        let stale: Vec<usize> =
            out.tier(RpTier::RetryingStale).rounds.iter().map(|m| m.vrps).collect();
        assert_eq!(rrdp, stale, "campaign {}: transports disagreed on VRP counts", spec.name);
    }
}

/// The session pipeline end to end: an authority resetting its RRDP
/// session bumps the client's epoch; wiring that epoch into the RTR
/// server must surface as a `CacheReset` to routers, which then
/// reconverge on the same data — not as a serial bump.
#[test]
fn rrdp_session_reset_propagates_as_rtr_cache_reset() {
    use rpki_risk::ValidationOptions;

    let mut w = ModelRpki::build_seeded(13);
    let mut rrdp = RrdpClientState::new();
    let run = w.validate_with(ValidationOptions::at(Moment(2)).rrdp(&mut rrdp));

    let session = 1 + rrdp.epoch() as u16;
    let mut server = RtrServer::new(session, 8);
    server.publish(VrpUpdate::snapshot(run.vrps.iter().copied()));
    let mut router = RtrClient::new();
    rtr_sync(&mut router, &server);
    assert_eq!(router.len(), 8);
    let converged_serial = router.serial();

    // Every publication point resets its RRDP session (key rollover,
    // database loss — RFC 8182's restart case).
    for host in
        ["rpki.arin.example", "rpki.sprint.example", "rpki.etb.example", "rpki.continental.example"]
    {
        w.repos.by_host_mut(host).expect("exists").rrdp_reset_sessions();
    }
    let epoch_before = rrdp.epoch();
    let run = w.validate_with(ValidationOptions::at(Moment(3)).rrdp(&mut rrdp));
    assert!(rrdp.epoch() > epoch_before, "session resets must bump the client epoch");

    // The relying party translates the epoch change into a fresh RTR
    // session instead of silently reusing the serial space.
    server.reset_session(1 + rrdp.epoch() as u16);
    server.publish(VrpUpdate::snapshot(run.vrps.iter().copied()));

    // A router polling with its old session/serial gets a CacheReset,
    // never a delta…
    let stale_poll = server.handle(&router.poll());
    assert_eq!(stale_poll.len(), 1);
    assert!(
        matches!(stale_poll[0], rpki_rp::RtrPdu::CacheReset),
        "stale-session poll must be answered with CacheReset, got {:?}",
        stale_poll[0]
    );
    // …and a full cycle reconverges on the post-reset data set.
    rtr_sync(&mut router, &server);
    assert_eq!(router.cache().len(), run.vrps.len());
    assert!(router.serial() <= converged_serial, "the new session restarts the serial space");
}
