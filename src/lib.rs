//! Umbrella crate for the `rpki-risk` workspace.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`). The actual library
//! surface lives in the member crates; the most convenient entry point
//! for downstream users is the [`rpki_risk`] facade crate.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use bgp_sim;
pub use ipres;
pub use netsim;
pub use rpki_attacks;
pub use rpki_ca;
pub use rpki_objects;
pub use rpki_repo;
pub use rpki_risk;
pub use rpki_rp;
pub use rpkisim_crypto;
pub use topogen;
